//! End-to-end integration: workload generation → profiling → selection
//! → plan execution → accuracy, across all three methods.

use mlpa::prelude::*;
use mlpa::sim::MachineConfig;
use mlpa::workloads::{suite, CompiledBenchmark};

/// A small but real suite benchmark (compact script, reduced size).
fn small(name: &str) -> CompiledBenchmark {
    let spec = suite::benchmark_with_iters(name, 2)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .scaled(0.15);
    CompiledBenchmark::compile(&spec).expect("compiles")
}

#[test]
fn three_methods_agree_with_ground_truth() {
    let cb = small("gap");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();

    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");

    for (label, plan) in [("simpoint", &fine.plan), ("coasts", &co.plan), ("multilevel", &ml.plan)]
    {
        let est = execute_plan(&cb, &config, plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        assert!(dev.cpi < 0.15, "{label} CPI deviation {:.3}", dev.cpi);
        assert!(dev.l1_hit_rate < 0.10, "{label} L1 deviation {:.3}", dev.l1_hit_rate);
        assert!(dev.l2_hit_rate < 0.15, "{label} L2 deviation {:.3}", dev.l2_hit_rate);
    }
}

#[test]
fn method_cost_structure_matches_paper() {
    let cb = small("vortex");
    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");

    // The paper's structural claims:
    // 1. Fine-grained SimPoint functionally simulates almost everything.
    assert!(
        fine.plan.functional_fraction() > 0.80,
        "SimPoint functional {:.2}",
        fine.plan.functional_fraction()
    );
    // 2. COASTS collapses functional time (early earliest-instances).
    assert!(
        co.plan.functional_fraction() < fine.plan.functional_fraction() / 2.0,
        "COASTS functional {:.2} vs SimPoint {:.2}",
        co.plan.functional_fraction(),
        fine.plan.functional_fraction()
    );
    // 3. COASTS pays more detailed simulation than SimPoint.
    assert!(co.plan.detailed_insts() > fine.plan.detailed_insts());
    // 4. Multi-level keeps COASTS's functional profile but cuts detail.
    assert!(ml.plan.detailed_insts() <= co.plan.detailed_insts());
    assert!(ml.plan.last_end() <= co.plan.last_end() + 200);
    // 5. Point counts: COASTS <= 3 (Kmax), SimPoint has many more.
    assert!(co.plan.len() <= 3);
    assert!(fine.plan.len() > co.plan.len());
}

#[test]
fn speedup_ordering_under_both_cost_models() {
    let cb = small("twolf");
    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");
    let co = &ml.coasts;

    for ratio in [10.0, 32.5, 100.0] {
        let model = CostModel::from_ratio(ratio);
        let s_co = model.speedup(&fine.plan, &co.plan);
        let s_ml = model.speedup(&fine.plan, &ml.plan);
        assert!(
            s_ml >= s_co,
            "multi-level ({s_ml:.2}x) must not lose to COASTS ({s_co:.2}x) at r={ratio}"
        );
        assert!(s_ml > 1.0, "multi-level must beat SimPoint at r={ratio}, got {s_ml:.2}x");
    }
}

#[test]
fn sensitivity_config_changes_truth_but_not_plan() {
    // galgel streams multi-megabyte sets; at very small scales the init
    // section cannot pre-touch them and first-instance ramps distort
    // the estimate, so this test runs at a moderate size.
    let spec = suite::benchmark_with_iters("galgel", 2).expect("galgel").scaled(0.4);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");
    let a = MachineConfig::table1_base();
    let b = MachineConfig::table1_sensitivity();
    let truth_a = ground_truth(&cb, &a).estimate();
    let truth_b = ground_truth(&cb, &b).estimate();
    // Config B genuinely behaves differently...
    assert!(
        (truth_a.cpi - truth_b.cpi).abs() / truth_a.cpi > 0.02,
        "configs A/B should differ: {:.3} vs {:.3}",
        truth_a.cpi,
        truth_b.cpi
    );
    // ...while the plan (BBV-based) is config-independent, and the
    // estimates track each config's own truth.
    for (config, truth) in [(a, truth_a), (b, truth_b)] {
        let est = execute_plan(&cb, &config, &ml.plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        assert!(dev.cpi < 0.15, "CPI deviation {:.3} under {config}", dev.cpi);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let cb = small("apsi");
        let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");
        let est = execute_plan(&cb, &MachineConfig::table1_base(), &ml.plan, WarmupMode::Warmed);
        (ml.plan, est.estimate)
    };
    let (plan1, est1) = run();
    let (plan2, est2) = run();
    assert_eq!(plan1, plan2, "plans must be bit-identical across runs");
    assert_eq!(est1, est2, "estimates must be bit-identical across runs");
}
