//! Calibration integration tests: the synthetic suite must reproduce
//! the per-benchmark facts the paper states, *through the actual
//! pipeline* (not just at the spec level — the spec-level checks live
//! in `mlpa-workloads`).

use mlpa::prelude::*;
use mlpa::workloads::{suite, CompiledBenchmark};

/// Run COASTS on a benchmark at reduced size, returning the outcome.
fn coasts_on(name: &str, iters: usize, scale: f64) -> mlpa::core::CoastsOutcome {
    let spec = suite::benchmark_with_iters(name, iters)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .scaled(scale);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    coasts(&cb, &CoastsConfig::default()).expect("coasts runs")
}

#[test]
fn art_last_coarse_point_near_47_percent() {
    let out = coasts_on("art", 2, 0.2);
    let pos = out.plan.last_position();
    assert!((0.40..0.58).contains(&pos), "art last point at {pos:.2}, paper says ~47 %");
}

#[test]
fn bzip2_last_coarse_point_near_36_percent() {
    let out = coasts_on("bzip2", 2, 0.2);
    let pos = out.plan.last_position();
    assert!((0.30..0.45).contains(&pos), "bzip2 last point at {pos:.2}, paper says ~36 %");
}

#[test]
fn gcc_coasts_pays_huge_detail() {
    // gcc: one iteration covers ~60 % of the run and is the earliest
    // instance of its phase, so COASTS must simulate it in detail —
    // the paper's motivating failure case for pure coarse sampling.
    let out = coasts_on("gcc", 1, 0.1);
    assert!(
        out.plan.detail_fraction() > 0.45,
        "gcc COASTS detail {:.2} should be dominated by the mega-iteration",
        out.plan.detail_fraction()
    );
    let pos = out.plan.last_position();
    assert!((0.78..0.92).contains(&pos), "gcc last point at {pos:.2}, paper says ~86 %");
}

#[test]
fn gcc_multilevel_recovers() {
    // Multi-level re-samples the mega point, collapsing gcc's detailed
    // volume back to SimPoint levels (paper: 97 % of SimPoint's
    // performance).
    let spec = suite::benchmark_with_iters("gcc", 1).expect("gcc").scaled(0.1);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");
    assert!(
        ml.plan.detail_fraction() < 0.05,
        "multi-level gcc detail {:.3} must collapse",
        ml.plan.detail_fraction()
    );
    // Speedup over SimPoint near parity (paper: 0.97x).
    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let s = CostModel::paper_implied().speedup(&fine.plan, &ml.plan);
    assert!((0.5..2.5).contains(&s), "gcc multi-level speedup {s:.2} should be near parity");
}

#[test]
fn early_benchmarks_have_early_last_points() {
    // Most of the suite classifies its last coarse phase very early
    // (paper average ~17 %, most below 10 %).
    for name in ["gzip", "eon", "swim", "lucas", "wupwise"] {
        let out = coasts_on(name, 2, 0.15);
        let pos = out.plan.last_position();
        assert!(pos < 0.30, "{name} last coarse point at {pos:.2}");
    }
}

#[test]
fn coarse_phase_counts_recovered_by_clustering() {
    // With Kmax lifted to 8, the BIC sweep should recover the designed
    // coarse-phase counts (gzip 4, fma3d 5, equake 6) from the BBVs
    // alone — the §III-B observation.
    for (name, expected) in [("gzip", 4usize), ("fma3d", 5), ("equake", 6)] {
        let spec = suite::benchmark_with_iters(name, 2).expect("known").scaled(0.2);
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        let mut cfg = CoastsConfig::default();
        cfg.selection.k_max = 8;
        let out = coasts(&cb, &cfg).expect("coasts runs");
        assert!(
            (expected.saturating_sub(1)..=expected + 1).contains(&out.simpoints.k),
            "{name}: clustering found {} coarse phases, designed {expected}",
            out.simpoints.k
        );
    }
}

#[test]
fn mean_coarse_interval_size_in_paper_range() {
    // Geometric mean of COASTS interval sizes across a sample of the
    // suite, at full iteration factor, should sit near the paper's
    // 444 M (scaled: 444 k).
    let mut logs = Vec::new();
    for name in ["gzip", "mcf", "swim", "vortex"] {
        let spec = suite::benchmark(name).expect("known");
        let mean_iter =
            spec.script.iter().map(|e| e.insts).sum::<u64>() as f64 / spec.script.len() as f64;
        logs.push(mean_iter.ln());
    }
    let geo = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
    assert!(
        (250_000.0..900_000.0).contains(&geo),
        "geomean iteration size {geo:.0} out of the calibrated range"
    );
}
