//! Property-based integration tests: randomly generated benchmark
//! specifications must uphold the pipeline's invariants end to end.
//!
//! The generators are driven by the workspace's own [`SplitMix64`]
//! (the external `proptest` crate is unavailable in the offline build
//! environment), so every case is reproducible from the case index —
//! a failure message names the case seed to rerun.

use mlpa::isa::rng::SplitMix64;
use mlpa::isa::stream::InstructionStream;
use mlpa::phase::interval::validate_intervals;
use mlpa::prelude::*;
use mlpa::workloads::behavior::{BranchPattern, InstMix, MemoryPattern};
use mlpa::workloads::{
    BenchmarkSpec, BlockSpec, CompiledBenchmark, PhaseSpec, ScriptEntry, WorkloadStream,
};

/// Number of random cases per property (matches the old proptest config).
const CASES: u64 = 12;

/// Generate a small but structurally varied benchmark spec from `rng`.
fn arb_spec(rng: &mut SplitMix64) -> BenchmarkSpec {
    let arb_block = |rng: &mut SplitMix64| {
        let mem = match rng.range_u64(3) {
            0 => MemoryPattern::Strided {
                stride: 1 << (3 + rng.range_u64(5)),
                working_set: 16 * 1024,
            },
            1 => MemoryPattern::RandomInSet { working_set: 1 << (10 + rng.range_u64(12)) },
            _ => MemoryPattern::PointerChase { working_set: 1 << (14 + rng.range_u64(8)) },
        };
        let branch = if rng.chance(0.5) {
            BranchPattern::Biased { p_taken: rng.range_f64(0.0, 1.0) }
        } else {
            BranchPattern::Periodic {
                taken: 1 + rng.range_u64(5) as u16,
                not_taken: 1 + rng.range_u64(3) as u16,
            }
        };
        BlockSpec {
            len: 6 + rng.range_u64(34) as u32,
            weight: rng.range_f64(0.2, 2.0),
            drift_dir: rng.range_f64(-1.0, 1.0),
            mix: InstMix { load: rng.range_f64(0.05, 0.45), store: 0.08, ..InstMix::default() },
            mem,
            branch,
            dep_density: rng.range_f64(0.0, 0.9),
        }
    };

    let arb_phase = |rng: &mut SplitMix64| PhaseSpec {
        name: "p".into(),
        blocks: (0..1 + rng.range_usize(4)).map(|_| arb_block(rng)).collect(),
        inner_iter_insts: 200 + rng.range_u64(1_800),
        drift: rng.range_f64(0.0, 0.6),
        noise: rng.range_f64(0.0, 0.8),
        perf_drift: 0.05,
    };

    let phases: Vec<PhaseSpec> = (0..1 + rng.range_usize(3)).map(|_| arb_phase(rng)).collect();
    let iters = 2 + rng.range_usize(10);
    let iter_insts = 20_000 + rng.range_u64(60_000);
    let nphases = phases.len();
    BenchmarkSpec {
        name: "prop".into(),
        seed: rng.next_u64(),
        init_insts: 2_000,
        tail_insts: 500,
        script: (0..iters).map(|i| ScriptEntry::new(i % nphases, iter_insts)).collect(),
        phases,
    }
}

/// Run `property` against `CASES` generated specs, reporting the failing
/// case seed on panic.
fn check(property: impl Fn(&BenchmarkSpec)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5052_4F50).fork(case);
        let spec = arb_spec(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&spec)));
        if let Err(e) = result {
            eprintln!("property failed for generated case {case} (spec seed {:#x})", spec.seed);
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn generated_traces_are_wellformed() {
    check(|spec| {
        assert!(spec.validate().is_ok());
        let cb = CompiledBenchmark::compile(spec).expect("compiles");
        let mut stream = WorkloadStream::new(&cb);
        let mut buf = Vec::new();
        let mut total = 0u64;
        let mut prev_target: Option<mlpa::isa::BlockId> = None;
        while let Some(id) = stream.next_block(&mut buf) {
            // Successor chaining: previous terminator points here.
            if let Some(t) = prev_target {
                assert_eq!(t, id);
            }
            // Block id valid, instruction count matches the template.
            assert!(id.index() < cb.program().num_blocks());
            assert_eq!(buf.len() as u32, cb.program().block(id).len);
            // Terminator resolved.
            let last = buf.last().expect("non-empty block");
            assert!(last.is_branch());
            prev_target = Some(last.branch.expect("terminator info").target);
            total += buf.len() as u64;
        }
        // Trace length lands near nominal.
        let nominal = spec.nominal_insts() as f64;
        assert!((total as f64) > nominal * 0.4, "trace {} vs nominal {}", total, nominal);
        assert!((total as f64) < nominal * 2.5, "trace {} vs nominal {}", total, nominal);
    });
}

#[test]
fn plans_partition_and_weights_normalise() {
    check(|spec| {
        let cb = CompiledBenchmark::compile(spec).expect("compiles");
        let fine = simpoint_baseline(
            &cb,
            5_000,
            &SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .expect("baseline");
        let ml = multilevel(
            &cb,
            &MultilevelConfig {
                threshold: 20_000,
                fine_interval: 5_000,
                ..MultilevelConfig::default()
            },
        )
        .expect("multilevel");
        for plan in [&fine.plan, &ml.plan, &ml.coasts.plan] {
            // Accounting partitions the trace.
            assert_eq!(
                plan.detailed_insts() + plan.functional_insts() + plan.skipped_insts(),
                plan.total_insts()
            );
            // Weights normalised.
            let w: f64 = plan.points().iter().map(|p| p.weight).sum();
            assert!((w - 1.0).abs() < 1e-6, "weights sum {}", w);
            // Points sorted and disjoint.
            for pair in plan.points().windows(2) {
                assert!(pair[0].end() <= pair[1].start);
            }
        }
    });
}

#[test]
fn parallel_execution_is_bit_identical() {
    use mlpa::core::{execute_plan_jobs, WarmupMode};
    use mlpa::sim::MachineConfig;
    check(|spec| {
        let cb = CompiledBenchmark::compile(spec).expect("compiles");
        let ml = multilevel(
            &cb,
            &MultilevelConfig {
                threshold: 20_000,
                fine_interval: 5_000,
                ..MultilevelConfig::default()
            },
        )
        .expect("multilevel");
        let config = MachineConfig::table1_base();
        for mode in [WarmupMode::Cold, WarmupMode::Warmed] {
            let serial = execute_plan_jobs(&cb, &config, &ml.plan, mode, 1);
            let parallel = execute_plan_jobs(&cb, &config, &ml.plan, mode, 4);
            assert_eq!(serial, parallel, "mode {mode:?}");
        }
    });
}

#[test]
fn coarse_intervals_tile_the_trace() {
    check(|spec| {
        let cb = CompiledBenchmark::compile(spec).expect("compiles");
        let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
        assert!(validate_intervals(&co.intervals).is_ok());
        let sum: u64 = co.intervals.iter().map(|iv| iv.len).sum();
        assert_eq!(sum, co.plan.total_insts());
        // Selected points are whole intervals.
        for p in co.plan.points() {
            assert!(
                co.intervals.iter().any(|iv| iv.start == p.start && iv.len == p.len),
                "point at {} is not an interval",
                p.start
            );
        }
    });
}
