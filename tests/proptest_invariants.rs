//! Property-based integration tests: randomly generated benchmark
//! specifications must uphold the pipeline's invariants end to end.

use mlpa::isa::stream::InstructionStream;
use mlpa::phase::interval::validate_intervals;
use mlpa::prelude::*;
use mlpa::workloads::behavior::{BranchPattern, InstMix, MemoryPattern};
use mlpa::workloads::{
    BenchmarkSpec, BlockSpec, CompiledBenchmark, PhaseSpec, ScriptEntry, WorkloadStream,
};
use proptest::prelude::*;

/// Strategy: a small but structurally varied benchmark spec.
fn arb_spec() -> impl Strategy<Value = BenchmarkSpec> {
    let arb_block = (
        6u32..40,
        0.2f64..2.0,
        -1.0f64..1.0,
        0.05f64..0.45,
        prop_oneof![
            (3u64..8).prop_map(|s| MemoryPattern::Strided {
                stride: 1 << s,
                working_set: 16 * 1024
            }),
            (10u64..22).prop_map(|w| MemoryPattern::RandomInSet { working_set: 1 << w }),
            (14u64..22).prop_map(|w| MemoryPattern::PointerChase { working_set: 1 << w }),
        ],
        prop_oneof![
            (0.0f64..1.0).prop_map(|p| BranchPattern::Biased { p_taken: p }),
            (1u16..6, 1u16..4)
                .prop_map(|(t, n)| BranchPattern::Periodic { taken: t, not_taken: n }),
        ],
        0.0f64..0.9,
    )
        .prop_map(|(len, weight, drift_dir, load, mem, branch, dep)| BlockSpec {
            len,
            weight,
            drift_dir,
            mix: InstMix { load, store: 0.08, ..InstMix::default() },
            mem,
            branch,
            dep_density: dep,
        });

    let arb_phase = (prop::collection::vec(arb_block, 1..5), 200u64..2_000, 0.0f64..0.6, 0.0f64..0.8)
        .prop_map(|(blocks, inner, drift, noise)| PhaseSpec {
            name: "p".into(),
            blocks,
            inner_iter_insts: inner,
            drift,
            noise,
            perf_drift: 0.05,
        });

    (
        prop::collection::vec(arb_phase, 1..4),
        2usize..12,
        20_000u64..80_000,
        0u64..u64::MAX,
    )
        .prop_map(|(phases, iters, iter_insts, seed)| {
            let nphases = phases.len();
            BenchmarkSpec {
                name: "prop".into(),
                seed,
                init_insts: 2_000,
                tail_insts: 500,
                script: (0..iters)
                    .map(|i| ScriptEntry::new(i % nphases, iter_insts))
                    .collect(),
                phases,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn generated_traces_are_wellformed(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok());
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        let mut stream = WorkloadStream::new(&cb);
        let mut buf = Vec::new();
        let mut total = 0u64;
        let mut prev_target: Option<mlpa::isa::BlockId> = None;
        while let Some(id) = stream.next_block(&mut buf) {
            // Successor chaining: previous terminator points here.
            if let Some(t) = prev_target {
                prop_assert_eq!(t, id);
            }
            // Block id valid, instruction count matches the template.
            prop_assert!(id.index() < cb.program().num_blocks());
            prop_assert_eq!(buf.len() as u32, cb.program().block(id).len);
            // Terminator resolved.
            let last = buf.last().expect("non-empty block");
            prop_assert!(last.is_branch());
            prev_target = Some(last.branch.expect("terminator info").target);
            total += buf.len() as u64;
        }
        // Trace length lands near nominal.
        let nominal = spec.nominal_insts() as f64;
        prop_assert!((total as f64) > nominal * 0.4, "trace {} vs nominal {}", total, nominal);
        prop_assert!((total as f64) < nominal * 2.5, "trace {} vs nominal {}", total, nominal);
    }

    #[test]
    fn plans_partition_and_weights_normalise(spec in arb_spec()) {
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        let fine = simpoint_baseline(
            &cb, 5_000, &SimPointConfig::fine_10m(), &ProjectionSettings::default(),
        ).expect("baseline");
        let ml = multilevel(&cb, &MultilevelConfig {
            threshold: 20_000, fine_interval: 5_000, ..MultilevelConfig::default()
        }).expect("multilevel");
        for plan in [&fine.plan, &ml.plan, &ml.coasts.plan] {
            // Accounting partitions the trace.
            prop_assert_eq!(
                plan.detailed_insts() + plan.functional_insts() + plan.skipped_insts(),
                plan.total_insts()
            );
            // Weights normalised.
            let w: f64 = plan.points().iter().map(|p| p.weight).sum();
            prop_assert!((w - 1.0).abs() < 1e-6, "weights sum {}", w);
            // Points sorted and disjoint.
            for pair in plan.points().windows(2) {
                prop_assert!(pair[0].end() <= pair[1].start);
            }
        }
    }

    #[test]
    fn coarse_intervals_tile_the_trace(spec in arb_spec()) {
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
        prop_assert!(validate_intervals(&co.intervals).is_ok());
        let sum: u64 = co.intervals.iter().map(|iv| iv.len).sum();
        prop_assert_eq!(sum, co.plan.total_insts());
        // Selected points are whole intervals.
        for p in co.plan.points() {
            prop_assert!(
                co.intervals.iter().any(|iv| iv.start == p.start && iv.len == p.len),
                "point at {} is not an interval", p.start
            );
        }
    }
}
