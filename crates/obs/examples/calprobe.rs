//! Calibration stability diagnostic: run the machine probe a few times
//! back-to-back and print the per-run statistics. Use it before
//! recording a committed perf baseline — if `probe` drifts more than a
//! few percent between runs, or `disp` exceeds ~5%, the host is too
//! loaded for a baseline worth gating against (see EXPERIMENTS.md,
//! "Calibrated perf baselines").
//!
//!     cargo run --release -p mlpa-obs --example calprobe

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5);
    for i in 0..runs {
        let c = mlpa_obs::calibrate::calibrate();
        println!(
            "run {i}: probe {:.2} ns/unit  min {:.2}  disp {:.3}  units {}  ({})",
            c.probe_ns, c.min_ns, c.dispersion, c.units, c.fingerprint
        );
    }
}
