//! Integration tests for the live obs implementation (the crate
//! dev-depends on itself with `enabled`, so these always exercise the
//! real machinery regardless of workspace features).
//!
//! The obs registry is process-global, so every test takes `GLOBAL` and
//! resets state on entry.

use mlpa_obs::json::{self, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    mlpa_obs::reset_for_tests();
    guard
}

/// A collision-free scratch path (no temp-file crate available).
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mlpa-obs-test-{}-{seq}-{name}", std::process::id()))
}

fn parse_lines(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("sink file readable");
    text.lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}")))
        .collect()
}

#[test]
fn spans_nest_across_thread_scope_workers() {
    let _g = lock();
    let sink = scratch("nesting.jsonl");
    mlpa_obs::init(&mlpa_obs::ObsConfig {
        enabled: true,
        sink: Some(sink.clone()),
        sample_ms: None,
    })
    .expect("init");

    const WORKERS: usize = 4;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            scope.spawn(move || {
                let outer = mlpa_obs::span_labeled("test.outer", &format!("w{w}"));
                assert_ne!(outer.id(), 0, "span ids start at 1 while enabled");
                for _ in 0..3 {
                    let _inner = mlpa_obs::span_labeled("test.inner", &format!("w{w}"));
                }
            });
        }
    });
    mlpa_obs::finish();

    // Rebuild the hierarchy from the sink: each worker's inner spans
    // must point at that same worker's outer span, and each outer span
    // must be a root (parent null) — worker threads do not inherit the
    // spawning thread's stack.
    let events = parse_lines(&sink);
    let mut outer_id_by_label = std::collections::BTreeMap::new();
    for ev in &events {
        if ev.get("ev").and_then(Value::as_str) == Some("span")
            && ev.get("name").and_then(Value::as_str) == Some("test.outer")
        {
            let label = ev.get("label").and_then(Value::as_str).expect("label").to_string();
            assert_eq!(ev.get("parent"), Some(&Value::Null), "outer span must be a root");
            outer_id_by_label.insert(label, ev.get("id").and_then(Value::as_f64).expect("id"));
        }
    }
    assert_eq!(outer_id_by_label.len(), WORKERS);

    let mut inner_count = 0;
    for ev in &events {
        if ev.get("ev").and_then(Value::as_str) == Some("span")
            && ev.get("name").and_then(Value::as_str) == Some("test.inner")
        {
            let label = ev.get("label").and_then(Value::as_str).expect("label");
            let parent = ev.get("parent").and_then(Value::as_f64).expect("inner has a parent");
            assert_eq!(
                outer_id_by_label.get(label),
                Some(&parent),
                "inner span of {label} nests under its own thread's outer span"
            );
            inner_count += 1;
        }
    }
    assert_eq!(inner_count, WORKERS * 3);

    // Aggregated totals match, and the report carries them.
    let report = mlpa_obs::report();
    let outer = report.phases.iter().find(|p| p.name == "test.outer").expect("outer phase");
    let inner = report.phases.iter().find(|p| p.name == "test.inner").expect("inner phase");
    assert_eq!(outer.count, WORKERS as u64);
    assert_eq!(inner.count, (WORKERS * 3) as u64);
    assert!(outer.total_s.is_finite() && outer.total_s >= 0.0);
    std::fs::remove_file(&sink).ok();
}

#[test]
fn counters_are_atomic_under_contention() {
    let _g = lock();
    mlpa_obs::set_enabled(true);

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 100_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Mix first-touch registration races with plain
                    // increments and a non-unit delta.
                    mlpa_obs::add("test.contended", 1);
                    if i == 0 {
                        mlpa_obs::add("test.late", t + 1);
                    }
                }
            });
        }
    });

    assert_eq!(mlpa_obs::counter_value("test.contended"), THREADS * PER_THREAD);
    assert_eq!(mlpa_obs::counter_value("test.late"), THREADS * (THREADS + 1) / 2);
    assert_eq!(mlpa_obs::counter_value("test.never_touched"), 0);

    let snapshot = mlpa_obs::counters_snapshot();
    assert!(snapshot.iter().any(|(n, v)| n == "test.contended" && *v == THREADS * PER_THREAD));
}

#[test]
fn sink_is_line_buffered_one_object_per_line() {
    let _g = lock();
    let sink = scratch("lines.jsonl");
    mlpa_obs::init(&mlpa_obs::ObsConfig {
        enabled: true,
        sink: Some(sink.clone()),
        sample_ms: None,
    })
    .expect("init");

    // Interleave event kinds from several threads; every line must
    // still be one complete JSON object (writes are mutex-serialised
    // and flushed per line).
    std::thread::scope(|scope| {
        for w in 0..4 {
            scope.spawn(move || {
                let mut worker = mlpa_obs::worker("test-pool", w);
                for i in 0..50 {
                    worker.busy(|| {
                        let _s = mlpa_obs::span_labeled("test.job", &format!("w{w}.j{i}"));
                        mlpa_obs::add("test.jobs", 1);
                    });
                }
            });
        }
    });
    mlpa_obs::info!("test", "message with \"quotes\", a \\ backslash and a\nnewline");
    mlpa_obs::finish();

    let text = std::fs::read_to_string(&sink).expect("sink file readable");
    assert!(text.ends_with('\n'), "sink ends with a complete line");
    let mut kinds = std::collections::BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let v = json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: not a single JSON object: {e}", i + 1));
        let kind = v.get("ev").and_then(Value::as_str).expect("ev tag").to_string();
        *kinds.entry(kind).or_insert(0u32) += 1;
    }
    assert_eq!(kinds.get("run_start"), Some(&1));
    assert_eq!(kinds.get("run_end"), Some(&1));
    assert_eq!(kinds.get("span"), Some(&200));
    assert_eq!(kinds.get("worker"), Some(&4));
    assert_eq!(kinds.get("log"), Some(&1));

    // The escaped log line survived the round trip intact.
    let report = mlpa_obs::report();
    assert!(report.workers.len() == 4);
    for w in &report.workers {
        assert_eq!(w.pool, "test-pool");
        assert_eq!(w.jobs, 50);
        assert!(w.busy_fraction >= 0.0 && w.busy_fraction <= 1.0 + 1e-6);
    }
    std::fs::remove_file(&sink).ok();
}

/// The log2 bucket map and its inverse, pinned at every power-of-two
/// boundary (the off-by-one surface of the whole instrument).
#[test]
fn hist_bucket_boundaries() {
    assert_eq!(mlpa_obs::hist_bucket(0), 0);
    assert_eq!(mlpa_obs::hist_bucket(1), 1);
    assert_eq!(mlpa_obs::hist_bucket(2), 2);
    assert_eq!(mlpa_obs::hist_bucket(3), 2);
    assert_eq!(mlpa_obs::hist_bucket(4), 3);
    assert_eq!(mlpa_obs::hist_bucket(u64::MAX), 64);
    for k in 1..64u32 {
        // 2^k opens bucket k+1; 2^k - 1 closes bucket k.
        assert_eq!(mlpa_obs::hist_bucket(1u64 << k), k as usize + 1, "2^{k}");
        assert_eq!(mlpa_obs::hist_bucket((1u64 << k) - 1), k as usize, "2^{k}-1");
    }
    assert_eq!(mlpa_obs::hist_bucket_max(0), 0);
    assert_eq!(mlpa_obs::hist_bucket_max(1), 1);
    assert_eq!(mlpa_obs::hist_bucket_max(64), u64::MAX);
    assert_eq!(mlpa_obs::hist_bucket_max(65), u64::MAX);
    // Round trip: every value lands in a bucket whose range covers it.
    for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
        let b = mlpa_obs::hist_bucket(v);
        assert!(v <= mlpa_obs::hist_bucket_max(b), "{v} above its bucket's max");
        if b > 0 {
            assert!(v > mlpa_obs::hist_bucket_max(b - 1), "{v} fits the previous bucket");
        }
        assert!(b < mlpa_obs::HIST_BUCKETS);
    }
}

/// Concurrent `hist_record` and tally merges must lose no values: the
/// final snapshot's count/sum/min/max and bucket-derived quantiles
/// equal a single-threaded reference over the same multiset.
#[test]
fn histograms_merge_exactly_under_contention() {
    let _g = lock();
    mlpa_obs::set_enabled(true);

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                let mut tally = mlpa_obs::HistTally::default();
                for i in 0..PER_THREAD {
                    let v = t * PER_THREAD + i;
                    if i % 2 == 0 {
                        // Direct global records race with tally merges.
                        mlpa_obs::hist_record("test.contended_hist", "n", v);
                    } else {
                        tally.record(v);
                    }
                }
                mlpa_obs::hist_merge("test.contended_hist", "n", &tally);
            });
        }
    });

    let stat = mlpa_obs::histograms_snapshot()
        .into_iter()
        .find(|h| h.name == "test.contended_hist")
        .expect("histogram registered");
    let n = THREADS * PER_THREAD;
    assert_eq!(stat.unit, "n");
    assert_eq!(stat.count, n);
    assert_eq!(stat.sum, n * (n - 1) / 2);
    assert_eq!(stat.min, 0);
    assert_eq!(stat.max, n - 1);

    // Reference quantiles from a single-threaded bucket fill of the
    // same values 0..n.
    let mut buckets = [0u64; mlpa_obs::HIST_BUCKETS];
    for v in 0..n {
        buckets[mlpa_obs::hist_bucket(v)] += 1;
    }
    for (q, got) in [(0.5, stat.p50), (0.9, stat.p90), (0.99, stat.p99)] {
        let want = mlpa_obs::hist_quantile(&buckets, n, q, 0, n - 1);
        assert_eq!(got, want, "q={q}");
        assert!((stat.min..=stat.max).contains(&got), "q={q} outside [min,max]");
    }
}

/// Span durations land in the separate `span.`-prefixed registry, and
/// `finish()` emits one `hist` summary event per histogram.
#[test]
fn span_histograms_and_hist_events() {
    let _g = lock();
    let sink = scratch("hist.jsonl");
    mlpa_obs::init(&mlpa_obs::ObsConfig {
        enabled: true,
        sink: Some(sink.clone()),
        sample_ms: None,
    })
    .expect("init");

    for _ in 0..5 {
        let _s = mlpa_obs::span("test.hist_span");
    }
    mlpa_obs::hist_record("test.plain", "n", 3);
    mlpa_obs::finish();

    let hists = mlpa_obs::histograms_snapshot();
    let span_hist = hists.iter().find(|h| h.name == "span.test.hist_span").expect("span hist");
    assert_eq!(span_hist.unit, "us");
    assert_eq!(span_hist.count, 5);
    assert!(hists.iter().any(|h| h.name == "test.plain" && h.count == 1));

    let events = parse_lines(&sink);
    let hist_events: Vec<&Value> =
        events.iter().filter(|e| e.get("ev").and_then(Value::as_str) == Some("hist")).collect();
    assert_eq!(hist_events.len(), hists.len(), "one hist event per histogram");
    for he in hist_events {
        let name = he.get("name").and_then(Value::as_str).expect("name");
        let h = hists.iter().find(|h| h.name == name).expect("snapshot entry");
        assert_eq!(he.get("count").and_then(Value::as_f64), Some(h.count as f64));
        assert_eq!(he.get("p99").and_then(Value::as_f64), Some(h.p99 as f64));
    }
    std::fs::remove_file(&sink).ok();
}

/// Runtime-disabled, the histogram sites record nothing — same
/// contract as counters and spans.
#[test]
fn disabled_histograms_record_nothing() {
    let _g = lock();
    mlpa_obs::set_enabled(false);
    mlpa_obs::hist_record("test.disabled_hist", "n", 1);
    let mut t = mlpa_obs::HistTally::default();
    t.record(7);
    mlpa_obs::hist_merge("test.disabled_hist", "n", &t);
    assert!(mlpa_obs::histograms_snapshot().iter().all(|h| h.name != "test.disabled_hist"));
}

#[test]
fn runtime_disabled_is_inert() {
    let _g = lock();
    mlpa_obs::set_enabled(false);

    let span = mlpa_obs::span("test.disabled");
    assert_eq!(span.id(), 0);
    drop(span);
    mlpa_obs::add("test.disabled.counter", 7);
    assert_eq!(mlpa_obs::counter_value("test.disabled.counter"), 0);
    let mut worker = mlpa_obs::worker("test-pool", 0);
    assert_eq!(worker.busy(|| 41 + 1), 42);
    drop(worker);

    let report = mlpa_obs::report();
    assert!(report.phases.iter().all(|p| p.name != "test.disabled"));
    assert!(report.workers.is_empty());
}

/// The peak-RSS probe reads the kernel's high-water mark directly, so
/// it works regardless of the obs enable state and only ever grows.
#[test]
fn peak_rss_probe_reports_growing_high_water_mark() {
    let Some(before) = mlpa_obs::peak_rss_bytes() else {
        return; // not Linux / procfs unavailable: probe is allowed to opt out
    };
    assert!(before > 0, "a running process has resident pages");
    // Touch ~32 MiB so the high-water mark provably moves.
    let v = vec![1u8; 32 << 20];
    std::hint::black_box(&v);
    let after = mlpa_obs::peak_rss_bytes().unwrap();
    assert!(after >= before + (16 << 20), "VmHWM must register the allocation");
}

/// `parse_vm_hwm` degrades to `None` — never a fake 0 — on every
/// malformed shape a host without a real procfs can serve.
#[test]
fn vm_hwm_parse_degrades_to_none() {
    assert_eq!(mlpa_obs::parse_vm_hwm("VmHWM:\t  123456 kB\n"), Some(123456 * 1024));
    // Missing line, empty file, wrong field name.
    assert_eq!(mlpa_obs::parse_vm_hwm(""), None);
    assert_eq!(mlpa_obs::parse_vm_hwm("VmRSS:\t 4 kB\n"), None);
    // Malformed value, missing value.
    assert_eq!(mlpa_obs::parse_vm_hwm("VmHWM:\t lots kB\n"), None);
    assert_eq!(mlpa_obs::parse_vm_hwm("VmHWM:\n"), None);
    // A zero high-water mark is a stub, not a measurement.
    assert_eq!(mlpa_obs::parse_vm_hwm("VmHWM:\t 0 kB\n"), None);
}

/// The host probe never fails: every field is populated (degrading to
/// `"unknown"` for the kernel string) and the fingerprint is the
/// timestamp-free `arch-os-cN` the calibration layer stamps.
#[test]
fn host_meta_is_populated_and_fingerprint_is_stable() {
    let host = mlpa_obs::host_meta();
    assert!(host.cpus >= 1);
    assert!(!host.arch.is_empty() && !host.os.is_empty() && !host.kernel.is_empty());
    assert_eq!(host.fingerprint(), format!("{}-{}-c{}", host.arch, host.os, host.cpus));
    assert_eq!(host.fingerprint(), mlpa_obs::host_meta().fingerprint());
    // The JSON block parses back with all four keys.
    let v = mlpa_obs::json::parse(&host.to_value().to_string()).expect("host block parses");
    for key in ["cpus", "arch", "os", "kernel"] {
        assert!(v.get(key).is_some(), "missing host key `{key}`");
    }
}
