//! Integration tests for the live telemetry subsystem: the background
//! sampler interleaving with instrumented worker threads, the final
//! sample emitted by `finish`, and the std-only status server.
//!
//! The obs registry is process-global, so every test takes `GLOBAL` and
//! resets state on entry.

use mlpa_obs::json::{self, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    mlpa_obs::reset_for_tests();
    guard
}

/// A collision-free scratch path (no temp-file crate available).
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mlpa-obs-telem-{}-{seq}-{name}", std::process::id()))
}

/// Parse the sink as JSONL, panicking on any torn or malformed line.
fn parse_lines(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("sink file readable");
    text.lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}")))
        .collect()
}

fn samples(events: &[Value]) -> Vec<&Value> {
    events.iter().filter(|e| e.get("ev").and_then(Value::as_str) == Some("sample")).collect()
}

#[test]
fn sampler_interleaves_cleanly_with_concurrent_instruments() {
    let _g = lock();
    let sink = scratch("stress.jsonl");
    mlpa_obs::init(&mlpa_obs::ObsConfig {
        enabled: true,
        sink: Some(sink.clone()),
        // Aggressive interval so samples land *between* (and race with)
        // the worker writes below.
        sample_ms: Some(1),
    })
    .expect("init");

    const WORKERS: usize = 4;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            scope.spawn(move || {
                let mut guard = mlpa_obs::worker("stress", w);
                for i in 0..200u64 {
                    guard.busy(|| {
                        let _s = mlpa_obs::span_labeled("test.stress", &format!("w{w}"));
                        mlpa_obs::add("test.stress.ops", 1);
                        mlpa_obs::gauge_set("test.stress.last", i);
                        mlpa_obs::hist_record("test.stress.size", "n", i % 17);
                    });
                    if i % 50 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            });
        }
    });
    mlpa_obs::finish();

    // Every line parses (parse_lines panics on a torn line) and the
    // stream passes the same contracts obs-check enforces.
    let events = parse_lines(&sink);
    let samples = samples(&events);
    assert!(samples.len() >= 2, "expected several samples, got {}", samples.len());

    let mut last_tick = -1.0;
    let mut last_ops = -1.0;
    for s in &samples {
        assert_eq!(
            s.get("schema").and_then(Value::as_str),
            Some("mlpa-sample-v1"),
            "sample schema tag"
        );
        let tick = s.get("tick").and_then(Value::as_f64).expect("tick");
        assert!(tick > last_tick, "ticks must strictly increase ({last_tick} -> {tick})");
        last_tick = tick;
        let counters = s.get("counters").expect("counters object");
        if let Some(ops) = counters.get("test.stress.ops").and_then(Value::as_f64) {
            assert!(ops >= last_ops, "counter went backwards ({last_ops} -> {ops})");
            last_ops = ops;
        }
    }
    // The final sample (emitted by finish) sees the completed run.
    let last = samples.last().expect("final sample");
    assert_eq!(
        last.get("counters").and_then(|c| c.get("test.stress.ops")).and_then(Value::as_f64),
        Some((WORKERS * 200) as f64),
    );
    assert!(
        last.get("gauges").and_then(|g| g.get("test.stress.last")).and_then(Value::as_f64)
            == Some(199.0),
        "final sample carries the last-written gauge"
    );
    let pools = last.get("pools").and_then(Value::as_arr).expect("pools array");
    assert!(
        pools.iter().any(|p| p.get("pool").and_then(Value::as_str) == Some("stress")
            && p.get("jobs").and_then(Value::as_f64) == Some((WORKERS * 200) as f64)),
        "final sample aggregates pool jobs: {pools:?}"
    );
    std::fs::remove_file(&sink).ok();
}

#[test]
fn finish_always_emits_a_final_sample_even_for_instant_runs() {
    let _g = lock();
    let sink = scratch("final.jsonl");
    mlpa_obs::init(&mlpa_obs::ObsConfig {
        enabled: true,
        sink: Some(sink.clone()),
        // An interval far longer than the run: only the immediate
        // t=0 sample and the final flush sample can exist.
        sample_ms: Some(60_000),
    })
    .expect("init");
    mlpa_obs::add("test.final.ops", 7);
    mlpa_obs::finish();

    let events = parse_lines(&sink);
    let samples = samples(&events);
    // A run shorter than the interval still produces a sample; whether
    // the startup tick also lands depends on thread scheduling.
    assert!(!samples.is_empty(), "no sample for an instant run");
    let last = samples.last().unwrap();
    assert_eq!(
        last.get("counters").and_then(|c| c.get("test.final.ops")).and_then(Value::as_f64),
        Some(7.0),
        "the final sample must flush state written after the last tick"
    );
    // The final sample lands before run_end closes the stream.
    let kinds: Vec<&str> =
        events.iter().filter_map(|e| e.get("ev").and_then(Value::as_str)).collect();
    let last_sample_at = kinds.iter().rposition(|k| *k == "sample").unwrap();
    let run_end_at = kinds.iter().rposition(|k| *k == "run_end").unwrap();
    assert!(last_sample_at < run_end_at, "sample after run_end: {kinds:?}");
    std::fs::remove_file(&sink).ok();
}

#[test]
fn status_server_round_trips_metrics_and_status() {
    let _g = lock();
    let sink = scratch("server.jsonl");
    mlpa_obs::init(&mlpa_obs::ObsConfig {
        enabled: true,
        sink: Some(sink.clone()),
        sample_ms: Some(5),
    })
    .expect("init");
    mlpa_obs::telemetry::set_run_phase("benchmarks");
    mlpa_obs::add("test.server.ops", 10);
    mlpa_obs::gauge_set("bench.done", 1);
    mlpa_obs::gauge_set("bench.total", 3);
    mlpa_obs::hist_record("test.server.size", "n", 12);

    // Port 0: the OS picks an ephemeral port, the bound address comes
    // back, and a second bind is idempotent.
    let addr = mlpa_obs::telemetry::serve_status(0).expect("bind status server");
    assert_eq!(mlpa_obs::telemetry::serve_status(0).expect("rebind"), addr);

    // /metrics parses under the strict Prometheus checker and carries
    // all three instrument kinds.
    let (code, scrape1) = mlpa_obs::telemetry::http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    let exp = mlpa_obs::promtext::check(&scrape1)
        .unwrap_or_else(|e| panic!("scrape failed strict check: {e}\n{scrape1}"));
    assert_eq!(exp.samples.get("mlpa_counter_test_server_ops_total"), Some(&10.0));
    assert_eq!(exp.samples.get("mlpa_gauge_bench_done"), Some(&1.0));
    assert_eq!(
        exp.types.get("mlpa_hist_test_server_size_n").map(String::as_str),
        Some("histogram")
    );

    // Metrics are live: a counter bump shows up on the next scrape and
    // the exposition stays monotone.
    mlpa_obs::add("test.server.ops", 5);
    let (code, scrape2) = mlpa_obs::telemetry::http_get(addr, "/metrics").expect("second GET");
    assert_eq!(code, 200);
    let exp2 = mlpa_obs::promtext::check(&scrape2).expect("second scrape");
    assert_eq!(exp2.samples.get("mlpa_counter_test_server_ops_total"), Some(&15.0));
    for (name, v1) in exp.counter_values() {
        let v2 = exp2.counter_values().get(name).copied().expect("counter persists");
        assert!(v2 >= v1, "counter `{name}` went backwards ({v1} -> {v2})");
    }

    // /status reports the run phase and progress gauges as JSON.
    let (code, status) = mlpa_obs::telemetry::http_get(addr, "/status").expect("GET /status");
    assert_eq!(code, 200);
    let v = json::parse(&status).expect("status JSON");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("mlpa-status-v1"));
    assert_eq!(v.get("phase").and_then(Value::as_str), Some("benchmarks"));
    assert_eq!(v.get("benchmarks_done").and_then(Value::as_f64), Some(1.0));
    assert_eq!(v.get("benchmarks_total").and_then(Value::as_f64), Some(3.0));
    assert!(v.get("uptime_ticks").and_then(Value::as_f64).is_some());
    assert!(v.get("rss_bytes").and_then(Value::as_f64).is_some());

    // Unknown paths 404 rather than crashing the serve loop, and the
    // server still answers afterwards.
    let (code, _) = mlpa_obs::telemetry::http_get(addr, "/nope").expect("GET /nope");
    assert_eq!(code, 404);
    let (code, _) = mlpa_obs::telemetry::http_get(addr, "/status").expect("GET after 404");
    assert_eq!(code, 200);

    mlpa_obs::telemetry::stop_status_server();
    mlpa_obs::finish();
    // The sink is still a valid stream after server traffic.
    parse_lines(&sink);
    std::fs::remove_file(&sink).ok();
}

/// Regression test for the single-threaded accept loop: a slow-loris
/// client (connects, never sends a request line) used to occupy the
/// accept thread for the full read timeout, stalling every later
/// `/metrics` scrape behind it. With per-connection threads the
/// concurrent scrape must complete promptly.
#[test]
fn stalled_connection_does_not_delay_a_concurrent_scrape() {
    let _g = lock();
    mlpa_obs::init(&mlpa_obs::ObsConfig { enabled: true, sink: None, sample_ms: None })
        .expect("init");
    mlpa_obs::add("test.loris.ops", 3);
    let addr = mlpa_obs::telemetry::serve_status(0).expect("bind status server");

    // Stalled clients: one silent, one that sends a partial request
    // line and goes quiet. Both stay open across the scrape.
    let silent = std::net::TcpStream::connect(addr).expect("connect silent");
    let mut partial = std::net::TcpStream::connect(addr).expect("connect partial");
    std::io::Write::write_all(&mut partial, b"GET /met").expect("partial write");

    let t0 = std::time::Instant::now();
    let (code, scrape) = mlpa_obs::telemetry::http_get(addr, "/metrics").expect("GET /metrics");
    let elapsed = t0.elapsed();
    assert_eq!(code, 200);
    assert!(scrape.contains("mlpa_counter_test_loris_ops_total 3"), "scrape content: {scrape}");
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "scrape stalled behind a slow-loris connection: {elapsed:?}"
    );

    drop(silent);
    drop(partial);
    mlpa_obs::telemetry::stop_status_server();
    mlpa_obs::finish();
}
