//! Property tests for the calibrated perf gate: synthetic
//! baseline/candidate snapshot pairs drawn from a seeded RNG must
//! behave like the CI `perf-gate` job expects — measurement noise
//! within the adaptive band never fails, a planted slowdown beyond two
//! bands always does, and the verdict is one-sided (faster never
//! regresses). Mirrors the SplitMix64-based property-test idiom the
//! rest of the workspace uses in place of proptest (offline build).

use mlpa_obs::calibrate::{
    calibrate_with, gate, BenchPoint, CalibrationConfig, GateConfig, MachineCalibration,
    ProbeTimer, Snapshot, Verdict,
};
use std::collections::BTreeMap;

/// SplitMix64 (the workspace's offline stand-in for a property RNG).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

fn calibration(probe_ns: f64, dispersion: f64) -> MachineCalibration {
    MachineCalibration {
        probe_ns,
        min_ns: probe_ns * (1.0 - dispersion),
        dispersion,
        repeats: 9,
        units: 1 << 17,
        cpus: 4,
        fingerprint: "prop-test".into(),
    }
}

/// A random bench set: 3–8 benches across 2–4 groups, means between
/// 0.5 ms and 50 ms (all above the gate's duration floor), each with a
/// small (≤ ±1%) min–max spread — the scale a multi-sample bench on a
/// usable perf host actually shows. Wider spreads widen the adaptive
/// band, by design: a host too noisy for the band to stay under half
/// the planted factor cannot honestly gate a 1.5× plant at all.
fn random_benches(rng: &mut SplitMix64) -> Vec<BenchPoint> {
    let groups = 2 + (rng.next() % 3) as usize;
    let n = 3 + (rng.next() % 6) as usize;
    (0..n)
        .map(|i| {
            let mean = rng.range(5e5, 5e7);
            let spread = rng.range(0.0, 0.01);
            BenchPoint {
                group: format!("g{}", i % groups),
                id: format!("b{i}"),
                mean_ns: mean,
                min_ns: Some(mean * (1.0 - spread)),
                max_ns: Some(mean * (1.0 + spread)),
                samples: 10,
                normalized: None,
            }
        })
        .collect()
}

/// Wrap benches into a calibrated snapshot; `normalized` is left to be
/// derived from the calibration block (`Snapshot::normalized`), exactly
/// like a freshly parsed v2 snapshot with only a calibration stamp.
fn snapshot(label: &str, benches: Vec<BenchPoint>, cal: MachineCalibration) -> Snapshot {
    Snapshot { label: label.into(), benches, speedups: BTreeMap::new(), calibration: Some(cal) }
}

/// A candidate on a (possibly different-speed) host: every bench
/// re-timed with multiplicative noise `noise`, on a machine `machine`×
/// the baseline's speed. The machine factor moves raw nanoseconds AND
/// the probe, so normalized costs only see `noise`.
fn derive_candidate(
    base: &Snapshot,
    machine: f64,
    noise: impl Fn(&mut SplitMix64) -> f64,
    rng: &mut SplitMix64,
    dispersion: f64,
) -> Snapshot {
    let base_cal = base.calibration.as_ref().expect("calibrated");
    let benches = base
        .benches
        .iter()
        .map(|b| {
            let f = machine * noise(rng);
            BenchPoint {
                mean_ns: b.mean_ns * f,
                min_ns: b.min_ns.map(|v| v * f),
                max_ns: b.max_ns.map(|v| v * f),
                normalized: None,
                ..b.clone()
            }
        })
        .collect();
    snapshot("cand", benches, calibration(base_cal.probe_ns * machine, dispersion))
}

/// Noise inside the adaptive band — across 200 random pairs spanning
/// 100× machine-speed differences — never fails the gate, and a
/// uniformly faster candidate is always clean.
#[test]
fn noise_within_dispersion_is_tolerated() {
    let cfg = GateConfig::default();
    let mut rng = SplitMix64(0x0b5e_c0de);
    for case in 0..200 {
        let disp_b = rng.range(0.005, 0.05);
        let disp_c = rng.range(0.005, 0.05);
        let base = snapshot("base", random_benches(&mut rng), calibration(100.0, disp_b));
        // The candidate host is up to 10x faster or slower; per-bench
        // noise stays inside the minimum band (spreads only widen it).
        let machine = rng.range(0.1, 10.0);
        let band = cfg.min_band + disp_b + disp_c;
        let cand = derive_candidate(
            &base,
            machine,
            |r| 1.0 + r.range(-band, band) * 0.9,
            &mut rng,
            disp_c,
        );
        let report = gate(&base, &cand, &cfg).unwrap();
        assert_ne!(
            report.worst(),
            Verdict::Fail,
            "case {case} (machine {machine:.2}x): clean noise failed\n{}",
            report.table()
        );

        // One-sided: a candidate that is strictly faster (normalized)
        // is Ok regardless of how big the improvement is.
        let faster = derive_candidate(&base, machine, |r| r.range(0.2, 0.95), &mut rng, disp_c);
        let report = gate(&base, &faster, &cfg).unwrap();
        assert_eq!(report.worst(), Verdict::Ok, "case {case}: speedup flagged");
    }
}

/// A planted 1.5× slowdown of one bench group always fails the gate —
/// on the same host and across machine-speed changes — while the same
/// run without the plant passes. This is the executable form of the CI
/// planted-regression check.
#[test]
fn planted_regression_is_caught_where_unmodified_run_passes() {
    let cfg = GateConfig::default();
    let mut rng = SplitMix64(0x5eed_cafe);
    for case in 0..200 {
        // Dispersions ≤ 2.5% a side: worst-case band is then
        // 0.1 + 0.05 (dispersion) + 0.04 (spreads) = 0.19, so the fail
        // threshold tops out at 1.38 — comfortably under the plant's
        // minimum observable ratio of 1.5 × 0.98.
        let disp_b = rng.range(0.005, 0.025);
        let disp_c = rng.range(0.005, 0.025);
        let base = snapshot("base", random_benches(&mut rng), calibration(100.0, disp_b));
        let machine = rng.range(0.25, 4.0);
        // Honest re-measurement: ±2% noise.
        let cand =
            derive_candidate(&base, machine, |r| 1.0 + r.range(-0.02, 0.02), &mut rng, disp_c);
        assert_ne!(
            gate(&base, &cand, &cfg).unwrap().worst(),
            Verdict::Fail,
            "case {case}: unmodified run failed"
        );

        // Same run with one group slowed 1.5x: must FAIL, and the
        // failing rows must all belong to the planted group.
        let planted_group =
            base.benches[(rng.next() % base.benches.len() as u64) as usize].group.clone();
        let mut planted = cand.clone();
        for b in &mut planted.benches {
            if b.group == planted_group {
                b.mean_ns *= 1.5;
                b.min_ns = b.min_ns.map(|v| v * 1.5);
                b.max_ns = b.max_ns.map(|v| v * 1.5);
            }
        }
        let report = gate(&base, &planted, &cfg).unwrap();
        assert_eq!(
            report.worst(),
            Verdict::Fail,
            "case {case} (machine {machine:.2}x, group {planted_group}): plant survived\n{}",
            report.table()
        );
        for row in report.rows.iter().filter(|r| r.verdict == Verdict::Fail) {
            assert!(
                row.name.starts_with(&format!("{planted_group}/")),
                "case {case}: innocent metric `{}` failed\n{}",
                row.name,
                report.table()
            );
        }
    }
}

/// Derived within-run speedups gate downward: shrinking a speedup past
/// two bands fails even when every bench timing is clean.
#[test]
fn speedup_collapse_fails_even_with_clean_timings() {
    let cfg = GateConfig::default();
    let mut rng = SplitMix64(0xdead_10cc);
    for _ in 0..50 {
        let mut base = snapshot("base", random_benches(&mut rng), calibration(100.0, 0.02));
        base.speedups.insert("detailed_sim".into(), 2.2);
        let mut cand = derive_candidate(&base, 1.0, |_| 1.0, &mut rng, 0.02);
        // Within a band: tolerated.
        cand.speedups.insert("detailed_sim".into(), 2.2 / 1.05);
        assert_ne!(gate(&base, &cand, &cfg).unwrap().worst(), Verdict::Fail);
        // Collapsed to 1.0 (the optimization is gone): fails.
        cand.speedups.insert("detailed_sim".into(), 1.0);
        let report = gate(&base, &cand, &cfg).unwrap();
        assert_eq!(report.worst(), Verdict::Fail, "{}", report.table());
        assert!(report
            .rows
            .iter()
            .any(|r| r.name == "speedup:detailed_sim" && r.verdict == Verdict::Fail));
    }
}

/// End-to-end sanity on the real probe: two back-to-back calibrated
/// snapshots of the same synthetic benches on this host gate clean.
#[test]
fn back_to_back_real_calibrations_gate_clean() {
    // Small probe config so the test stays quick on a loaded host.
    let cfg = CalibrationConfig {
        min_probe_ns: 2_000_000,
        start_units: 256,
        repeats: 7,
        trim: 2,
        ..CalibrationConfig::default()
    };
    let mut rng = SplitMix64(0x2b);
    let benches = random_benches(&mut rng);
    let c1 = calibrate_with(&mut mlpa_obs::calibrate::RealProbe::new(), &cfg);
    let c2 = calibrate_with(&mut mlpa_obs::calibrate::RealProbe::new(), &cfg);
    assert_eq!(c1.fingerprint, c2.fingerprint);
    let base = snapshot("run1", benches.clone(), c1);
    let cand = snapshot("run2", benches, c2);
    // Identical raw timings, probes measured seconds apart: normalized
    // ratios must stay inside the fail band (warn is acceptable on a
    // pathologically noisy host, a fail would mean the probe itself is
    // unstable enough to poison every future gate).
    let report = gate(&base, &cand, &GateConfig::default()).unwrap();
    assert_ne!(report.worst(), Verdict::Fail, "{}", report.table());
}

/// A timer that returns a scripted sequence of ns-per-unit rates for
/// every call (scale-up and repeats alike), for pinning the scale-up
/// call count from the outside.
struct ScriptTimer {
    rates: Vec<f64>,
    calls: usize,
}

impl ProbeTimer for ScriptTimer {
    fn time_units(&mut self, units: u64) -> u64 {
        let rate = self.rates[self.calls.min(self.rates.len() - 1)];
        self.calls += 1;
        (rate * units as f64) as u64
    }
}

/// Random timer rates over five orders of magnitude: the scale-up
/// always terminates within the configured step budget and always ends
/// with a repeat long enough to satisfy the minimum probe duration
/// (or pinned at the unit cap).
#[test]
fn scale_up_terminates_for_arbitrary_timer_rates() {
    let mut rng = SplitMix64(0x7e57);
    for case in 0..100 {
        let cfg = CalibrationConfig {
            min_probe_ns: 1_000_000,
            start_units: 1 + rng.next() % 1024,
            max_units: 1 << 30,
            max_scale_steps: 24,
            repeats: 5,
            trim: 1,
        };
        // Rate per call drawn from [0.01, 1000) ns/unit; occasionally a
        // zero-elapsed lying timer.
        let rates: Vec<f64> = (0..64)
            .map(|_| if rng.next().is_multiple_of(8) { 0.0 } else { rng.range(0.01, 1e3) })
            .collect();
        let mut timer = ScriptTimer { rates, calls: 0 };
        let cal = calibrate_with(&mut timer, &cfg);
        assert!(
            timer.calls <= cfg.max_scale_steps + cfg.repeats,
            "case {case}: {} calls exceeds the step budget",
            timer.calls
        );
        assert!(cal.units >= 1 && cal.units <= cfg.max_units, "case {case}: units {}", cal.units);
        assert_eq!(cal.repeats, cfg.repeats);
    }
}
