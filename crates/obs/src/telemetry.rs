//! Live telemetry: a background sampler thread and a std-only HTTP
//! status server.
//!
//! The **sampler** is started by [`crate::init`] when [`crate::ObsConfig`]
//! carries both a JSONL sink and a `sample_ms` interval. Each tick it
//! snapshots every counter, gauge, and live worker pool plus the
//! process peak RSS, and appends one `sample` event (schema
//! [`crate::SAMPLE_SCHEMA`]) to the sink. Ticks are a monotonic index —
//! downstream contracts check tick order and counter monotonicity,
//! never wall-clock. [`crate::finish`] stops the thread and always
//! emits one final sample, so even a run shorter than the interval
//! produces a complete time-series.
//!
//! The **status server** ([`serve_status`]) answers HTTP/1.1 (via the
//! shared [`crate::http`] server, which handles each connection on its
//! own thread with bounded request reads, so a stalled client never
//! blocks a scrape) on two paths: `GET /metrics` with the Prometheus
//! text exposition of the current registries (see [`crate::promtext`])
//! and `GET /status` with a small JSON summary (schema
//! [`crate::STATUS_SCHEMA`]: run phase, benchmark progress, current
//! segment, uptime ticks, RSS). Port 0 requests an ephemeral port; the
//! bound address is returned so callers can print it.
//!
//! Without the `enabled` feature everything here is a no-op
//! ([`serve_status`] reports `Unsupported`), matching the rest of the
//! crate.

/// Minimal HTTP/1.1 GET client for tests and smoke scripts — a
/// re-export of [`crate::http::get`], kept here because the status
/// server's callers historically found it in this module.
pub use crate::http::get as http_get;

#[cfg(feature = "enabled")]
mod live {
    use crate::http::{self, Response};
    use crate::json;
    use std::io;
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    static TICK: AtomicU64 = AtomicU64::new(0);
    static RUN_PHASE: Mutex<String> = Mutex::new(String::new());
    static SAMPLER: Mutex<Option<Sampler>> = Mutex::new(None);
    static SERVER: Mutex<Option<http::Server>> = Mutex::new(None);
    /// Cumulative per-pool busy nanoseconds at the previous tick, plus
    /// its instant, for busy-fraction deltas. Only the sampler thread
    /// and `reset_for_tests` touch this.
    static PREV_BUSY: Mutex<Option<(Instant, std::collections::BTreeMap<String, u64>)>> =
        Mutex::new(None);

    struct Sampler {
        stop: Arc<(Mutex<bool>, Condvar)>,
        handle: JoinHandle<()>,
    }

    /// Set the coarse run phase shown by `GET /status` (e.g.
    /// `warmup`, `benchmarks`, `report`).
    pub fn set_run_phase(phase: &str) {
        *RUN_PHASE.lock().expect("obs run phase poisoned") = phase.to_string();
    }

    /// The current coarse run phase (empty until first set).
    pub fn run_phase() -> String {
        RUN_PHASE.lock().expect("obs run phase poisoned").clone()
    }

    /// Number of sampler ticks emitted so far (0 when the sampler never
    /// ran).
    pub fn uptime_ticks() -> u64 {
        TICK.load(Ordering::Relaxed)
    }

    /// Emit one `sample` event to the JSONL sink. Runs on the sampler
    /// thread; the per-line sink mutex in `imp::emit` is what keeps
    /// samples from tearing lines written by instrumented threads.
    fn emit_sample() {
        if !crate::imp::sink_open() {
            return;
        }
        let tick = TICK.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let pools = crate::pool_live_snapshot();
        let mut prev = PREV_BUSY.lock().expect("obs prev busy poisoned");
        let (wall_ns, prev_map) = match prev.as_ref() {
            Some((at, map)) => (now.duration_since(*at).as_nanos() as u64, map.clone()),
            None => (0, std::collections::BTreeMap::new()),
        };
        *prev = Some((now, pools.iter().map(|p| (p.pool.clone(), p.busy_ns)).collect()));
        drop(prev);

        let counters = crate::counters_snapshot()
            .iter()
            .map(|(name, v)| format!("\"{}\":{v}", json::escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = crate::gauges_snapshot()
            .iter()
            .map(|(name, v)| format!("\"{}\":{v}", json::escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        let pools = pools
            .iter()
            .map(|p| {
                let prev_busy = prev_map.get(&p.pool).copied().unwrap_or(0);
                let delta_busy = p.busy_ns.saturating_sub(prev_busy);
                // Worker-seconds of busy time per wall second since the
                // last tick; can exceed 1.0 with multiple workers.
                let busy_frac = if wall_ns > 0 { delta_busy as f64 / wall_ns as f64 } else { 0.0 };
                format!(
                    "{{\"pool\":\"{}\",\"live\":{},\"jobs\":{},\"busy_ms\":{},\
                     \"busy_frac\":{busy_frac:.4}}}",
                    json::escape(&p.pool),
                    p.live,
                    p.jobs,
                    p.busy_ns / 1_000_000,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let rss = crate::peak_rss_bytes().unwrap_or(0);
        crate::imp::emit(&format!(
            "{{\"ev\":\"sample\",\"schema\":\"{}\",\"tick\":{tick},\"t_us\":{},\
             \"rss_bytes\":{rss},\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"pools\":[{pools}]}}",
            crate::SAMPLE_SCHEMA,
            crate::imp::t_us(),
        ));
    }

    /// Start the background sampler (idempotent). Called by
    /// [`crate::init`]; emits one sample immediately, then one per
    /// interval, then one final sample when stopped.
    pub(crate) fn start_sampler(interval_ms: u64) {
        let mut guard = SAMPLER.lock().expect("obs sampler poisoned");
        if guard.is_some() {
            return;
        }
        TICK.store(0, Ordering::Relaxed);
        *PREV_BUSY.lock().expect("obs prev busy poisoned") = None;
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let interval = Duration::from_millis(interval_ms.max(1));
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                loop {
                    let stopping = *lock.lock().expect("obs sampler stop poisoned");
                    emit_sample();
                    if stopping {
                        return;
                    }
                    let guard = lock.lock().expect("obs sampler stop poisoned");
                    if *guard {
                        // Stop raced in while we were emitting: loop
                        // once more for the final sample.
                        continue;
                    }
                    let _unused =
                        cv.wait_timeout(guard, interval).expect("obs sampler stop poisoned");
                }
            })
            .expect("spawn obs-sampler thread");
        *guard = Some(Sampler { stop, handle });
    }

    /// Stop the sampler and wait for its final sample (idempotent, and
    /// a no-op when no sampler is running). Called by [`crate::finish`].
    pub(crate) fn stop_sampler() {
        let sampler = SAMPLER.lock().expect("obs sampler poisoned").take();
        if let Some(s) = sampler {
            *s.stop.0.lock().expect("obs sampler stop poisoned") = true;
            s.stop.1.notify_all();
            let _ = s.handle.join();
        }
    }

    /// The `GET /status` body: run phase, benchmark progress, current
    /// segment, uptime ticks, RSS — plus the full gauge map, since the
    /// named fields are just conventional gauges.
    fn status_json() -> String {
        let gauges = crate::gauges_snapshot();
        let gauge = |name: &str| gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
        let body = gauges
            .iter()
            .map(|(name, v)| format!("\"{}\":{v}", json::escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"{}\",\"phase\":\"{}\",\"benchmarks_done\":{},\
             \"benchmarks_total\":{},\"segment\":{},\"uptime_ticks\":{},\
             \"rss_bytes\":{},\"gauges\":{{{body}}}}}",
            crate::STATUS_SCHEMA,
            json::escape(&run_phase()),
            gauge("bench.done"),
            gauge("bench.total"),
            gauge("core.shard.segment"),
            uptime_ticks(),
            crate::peak_rss_bytes().unwrap_or(0),
        )
    }

    /// Bind the status server on `127.0.0.1:port` (0 = ephemeral) and
    /// serve `/metrics` and `/status` from background threads until
    /// [`stop_status_server`]. Each connection is handled on its own
    /// thread with bounded reads (see [`crate::http::serve`]), so a
    /// slow-loris client cannot delay a concurrent scrape. Idempotent:
    /// a second call returns the already-bound address.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_status(port: u16) -> io::Result<SocketAddr> {
        let mut guard = SERVER.lock().expect("obs server poisoned");
        if let Some(s) = guard.as_ref() {
            return Ok(s.addr());
        }
        let server = http::serve(port, "obs-status", |req| {
            if req.method != "GET" {
                return Response::new("405 Method Not Allowed", "text/plain", "GET only\n");
            }
            match req.path.as_str() {
                "/metrics" => Response::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    crate::promtext::render_current(),
                ),
                "/status" => Response::json(status_json()),
                _ => Response::new("404 Not Found", "text/plain", "unknown path\n"),
            }
        })?;
        let addr = server.addr();
        *guard = Some(server);
        Ok(addr)
    }

    /// Stop the status server and join its accept thread (no-op when
    /// not running).
    pub fn stop_status_server() {
        let server = SERVER.lock().expect("obs server poisoned").take();
        if let Some(s) = server {
            s.stop();
        }
    }

    /// Reset telemetry state between tests: stop threads, zero the
    /// tick, clear the phase.
    #[doc(hidden)]
    pub(crate) fn reset_for_tests() {
        stop_sampler();
        stop_status_server();
        TICK.store(0, Ordering::Relaxed);
        *PREV_BUSY.lock().expect("obs prev busy poisoned") = None;
        RUN_PHASE.lock().expect("obs run phase poisoned").clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod live {
    use std::io;
    use std::net::SocketAddr;

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn set_run_phase(_phase: &str) {}

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn run_phase() -> String {
        String::new()
    }

    /// Always 0: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn uptime_ticks() -> u64 {
        0
    }

    /// Always `Unsupported`: the `enabled` feature is compiled out.
    pub fn serve_status(_port: u16) -> io::Result<SocketAddr> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "status server requires the mlpa-obs `enabled` feature",
        ))
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn stop_status_server() {}
}

pub use live::{run_phase, serve_status, set_run_phase, stop_status_server, uptime_ticks};

#[cfg(feature = "enabled")]
pub(crate) use live::{reset_for_tests, start_sampler, stop_sampler};
