//! Machine calibration and normalized perf gating.
//!
//! Raw bench nanoseconds do not transfer across machines — and barely
//! transfer across runs on the *same* machine when the host is shared.
//! The perf trajectory in `BENCH.json` showed exactly that failure
//! mode: the `detailed_sim` within-run speedup drifted 2.17× → 1.78×
//! between snapshots of identical code, purely from host noise, and
//! nothing failed CI when a hot path genuinely regressed.
//!
//! This module makes perf claims machine-independent and enforceable:
//!
//! * [`calibrate`] runs a small fixed CPU+memory **probe kernel** in
//!   the current process, exponentially scaling the unit count until a
//!   single timed repeat exceeds a minimum duration (no hard-coded
//!   iteration counts that overshoot on slow hosts), then reduces
//!   repeated runs with trimmed-mean/min/dispersion statistics into a
//!   [`MachineCalibration`]. The result has a deterministic schema and
//!   a timestamp-free fingerprint, so it can be committed in baselines.
//! * Bench snapshots stamped with a calibration block also record
//!   `normalized = mean_ns / probe_ns` per bench — a dimensionless
//!   "probe units per iteration" figure comparable across hosts.
//! * [`gate`] compares a candidate [`Snapshot`] against a baseline on
//!   those normalized ratios, with **adaptive thresholds** widened by
//!   the measured dispersion of both calibrations (and by each bench's
//!   own min/max spread): one dispersion band warns, two fail. The
//!   `bench-gate` binary wraps this as the CI `perf-gate` job.
//!
//! The probe timer is a trait ([`ProbeTimer`]) so the scale-up and the
//! statistics are testable against an injected fake timer with no real
//! clock involved.

use crate::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Probe kernel and timer
// ---------------------------------------------------------------------------

/// Words in the probe's pointer-chase table: 32 Ki × 8 B = 256 KiB,
/// deliberately larger than a typical L1D and a slice of L2, so the
/// probe prices both ALU throughput and cache/memory latency — the two
/// resources the simulator kernels spend.
const PROBE_TABLE_WORDS: usize = 1 << 15;

/// Dependent mix+load steps per probe unit. The chain is serial
/// (each load address depends on the previous load's value), so the
/// probe measures latency the way the simulator's hot loops feel it,
/// not peak superscalar throughput.
const STEPS_PER_UNIT: usize = 16;

/// SplitMix64 finalizer: the probe's ALU work and its address stream.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Times the probe workload. The production implementation
/// ([`RealProbe`]) runs the fixed kernel under `Instant`; tests inject
/// deterministic fakes so the scale-up loop and the statistics are
/// pinned without touching a clock.
pub trait ProbeTimer {
    /// Run the probe workload for `units` units and return the elapsed
    /// wall-clock nanoseconds.
    fn time_units(&mut self, units: u64) -> u64;
}

/// The real probe: a pre-built pointer-chase table (built once, outside
/// every timed region) plus the fixed CPU+memory kernel.
pub struct RealProbe {
    table: Vec<u64>,
}

impl RealProbe {
    /// Build the probe table (deterministic contents).
    pub fn new() -> RealProbe {
        RealProbe { table: (0..PROBE_TABLE_WORDS as u64).map(mix).collect() }
    }

    /// One untimed pass of `units` probe units; returns a checksum so
    /// the work cannot be optimized away.
    fn run(&self, units: u64) -> u64 {
        let mask = (self.table.len() - 1) as u64;
        let mut acc = 0x0b5e_c0de_0b5e_c0deu64;
        for _ in 0..units {
            for _ in 0..STEPS_PER_UNIT {
                acc = mix(acc);
                acc ^= self.table[(acc & mask) as usize];
            }
        }
        acc
    }
}

impl Default for RealProbe {
    fn default() -> RealProbe {
        RealProbe::new()
    }
}

impl ProbeTimer for RealProbe {
    fn time_units(&mut self, units: u64) -> u64 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(self.run(units));
        t0.elapsed().as_nanos() as u64
    }
}

// ---------------------------------------------------------------------------
// Calibration configuration and statistics
// ---------------------------------------------------------------------------

/// Knobs for [`calibrate_with`]. The defaults aim for ≈0.4 s of total
/// probing — cheap enough to run inside every bench invocation, long
/// enough per repeat (20 ms) that scheduler jitter averages out, and
/// trimmed hard (keep the middle 5 of 15 repeats) because shared hosts
/// show intermittent load episodes that a light trim lets through: at
/// 9 repeats/trim 2 the measured dispersion on a busy 1-cpu container
/// swung 0.8%–18% between runs; at 15/5 it stays under ~3%.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// A timed repeat must last at least this long (ns) before the
    /// scale-up stops.
    pub min_probe_ns: u64,
    /// Unit count of the first scale-up attempt.
    pub start_units: u64,
    /// Hard cap on the unit count (terminates the scale-up even if the
    /// timer never reports the minimum duration).
    pub max_units: u64,
    /// Hard cap on scale-up steps (belt to `max_units`' braces).
    pub max_scale_steps: usize,
    /// Timed repeats at the final unit count.
    pub repeats: usize,
    /// Samples trimmed from *each* end before the mean (clamped so at
    /// least one sample is kept).
    pub trim: usize,
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig {
            min_probe_ns: 20_000_000,
            start_units: 1 << 10,
            max_units: 1 << 32,
            max_scale_steps: 32,
            repeats: 15,
            trim: 5,
        }
    }
}

/// Reduction of repeated probe samples (ns per unit).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStats {
    /// Mean of the samples that survive trimming.
    pub trimmed_mean: f64,
    /// Fastest sample overall (untrimmed).
    pub min: f64,
    /// Slowest sample overall (untrimmed).
    pub max: f64,
    /// Relative spread of the kept samples:
    /// `(kept_max - kept_min) / trimmed_mean` (0 for a zero mean).
    pub dispersion: f64,
}

/// Trimmed-mean reduction: sort, drop `trim` samples from each end
/// (clamped so at least one survives), mean the rest, and report the
/// kept spread relative to that mean. Deterministic for deterministic
/// inputs — no randomness, no incremental-float order dependence.
pub fn reduce(samples: &[f64], trim: usize) -> ProbeStats {
    assert!(!samples.is_empty(), "cannot reduce zero probe samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("probe samples are finite"));
    let trim = trim.min((sorted.len() - 1) / 2);
    let kept = &sorted[trim..sorted.len() - trim];
    let trimmed_mean = kept.iter().sum::<f64>() / kept.len() as f64;
    let spread = kept[kept.len() - 1] - kept[0];
    ProbeStats {
        trimmed_mean,
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        dispersion: if trimmed_mean > 0.0 { spread / trimmed_mean } else { 0.0 },
    }
}

// ---------------------------------------------------------------------------
// MachineCalibration
// ---------------------------------------------------------------------------

/// The calibrated speed of this machine, as stamped into bench
/// snapshots. Every field is a pure function of the probe run and the
/// host — **no timestamps**, so re-running on an identical machine
/// state produces a comparable (not byte-identical — timing is timing)
/// block, and nothing in it churns version control diffs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCalibration {
    /// Trimmed-mean nanoseconds per probe unit — the machine's "price"
    /// for one unit of mixed CPU+memory work. Bench normalization
    /// divides by this.
    pub probe_ns: f64,
    /// Fastest repeat (ns per unit); the floor the machine can hit.
    pub min_ns: f64,
    /// Relative spread of the kept repeats — the measured noisiness of
    /// this host *right now*. Gate thresholds widen with it.
    pub dispersion: f64,
    /// Timed repeats behind the statistics.
    pub repeats: usize,
    /// Probe units per timed repeat after scale-up.
    pub units: u64,
    /// Logical CPUs on the host.
    pub cpus: usize,
    /// Timestamp-free host fingerprint (`arch-os-cN`).
    pub fingerprint: String,
}

impl MachineCalibration {
    /// Serialize to a stable-key-order JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// The calibration as a [`Value`] (keys sorted by the object map).
    pub fn to_value(&self) -> Value {
        Value::Obj(BTreeMap::from([
            ("probe_ns".to_string(), Value::Num(self.probe_ns)),
            ("min_ns".to_string(), Value::Num(self.min_ns)),
            ("dispersion".to_string(), Value::Num(self.dispersion)),
            ("repeats".to_string(), Value::Num(self.repeats as f64)),
            ("units".to_string(), Value::Num(self.units as f64)),
            ("cpus".to_string(), Value::Num(self.cpus as f64)),
            ("fingerprint".to_string(), Value::Str(self.fingerprint.clone())),
        ]))
    }

    /// Parse a calibration block out of a snapshot.
    pub fn from_value(v: &Value) -> Result<MachineCalibration, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("calibration: missing numeric field `{key}`"))
        };
        Ok(MachineCalibration {
            probe_ns: num("probe_ns")?,
            min_ns: num("min_ns")?,
            dispersion: num("dispersion")?,
            repeats: num("repeats")? as usize,
            units: num("units")? as u64,
            cpus: num("cpus")? as usize,
            fingerprint: v
                .get("fingerprint")
                .and_then(Value::as_str)
                .ok_or("calibration: missing string field `fingerprint`")?
                .to_string(),
        })
    }
}

/// Calibrate with an injected timer and explicit configuration: the
/// exponential scale-up followed by the trimmed-mean reduction. Pure
/// with respect to the timer — tests drive it with scripted fakes.
pub fn calibrate_with<T: ProbeTimer>(timer: &mut T, cfg: &CalibrationConfig) -> MachineCalibration {
    // Exponential scale-up: grow the unit count until one repeat lasts
    // at least `min_probe_ns`. The growth factor aims 1.5× past the
    // target (the poc-selector idiom) but is clamped to [2, 8] so a
    // lying timer can neither stall the loop nor overshoot to absurd
    // unit counts in one hop; `max_units`/`max_scale_steps` bound
    // termination unconditionally.
    let mut units = cfg.start_units.max(1);
    for _ in 0..cfg.max_scale_steps {
        let elapsed = timer.time_units(units);
        if elapsed >= cfg.min_probe_ns || units >= cfg.max_units {
            break;
        }
        let factor = if elapsed == 0 {
            8.0
        } else {
            (cfg.min_probe_ns as f64 / elapsed as f64 * 1.5).clamp(2.0, 8.0)
        };
        units = (((units as f64) * factor) as u64).clamp(units + 1, cfg.max_units);
    }

    // Timed repeats at the final unit count, reduced to ns-per-unit.
    let repeats = cfg.repeats.max(1);
    let samples: Vec<f64> =
        (0..repeats).map(|_| timer.time_units(units) as f64 / units as f64).collect();
    let stats = reduce(&samples, cfg.trim);

    let host = crate::host_meta();
    MachineCalibration {
        probe_ns: stats.trimmed_mean,
        min_ns: stats.min,
        dispersion: stats.dispersion,
        repeats,
        units,
        cpus: host.cpus,
        fingerprint: host.fingerprint(),
    }
}

/// Calibrate this machine with the real probe kernel and default
/// configuration (≈0.4 s). Run it in the same process as the benches it
/// normalizes, so probe and benches see the same load.
pub fn calibrate() -> MachineCalibration {
    calibrate_with(&mut RealProbe::new(), &CalibrationConfig::default())
}

// ---------------------------------------------------------------------------
// Snapshots (the BENCH.json bench-suite schema)
// ---------------------------------------------------------------------------

/// Current schema of the `BENCH.json` perf trajectory. v2 adds the
/// `calibration` and `host` blocks plus per-bench `normalized` values;
/// v1 snapshots (raw ns only) still parse and are preserved verbatim
/// when new snapshots are appended.
pub const BENCH_SUITE_SCHEMA: &str = "mlpa-bench-suite-v2";

/// Previous trajectory schema (raw nanoseconds only).
pub const BENCH_SUITE_SCHEMA_V1: &str = "mlpa-bench-suite-v1";

/// One bench's measurements inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Benchmark group (e.g. `substrate`).
    pub group: String,
    /// Benchmark id within the group (e.g. `detailed_sim`).
    pub id: String,
    /// Mean wall-clock per iteration, ns.
    pub mean_ns: f64,
    /// Fastest sample, ns (absent in v1 trajectory snapshots).
    pub min_ns: Option<f64>,
    /// Slowest sample, ns (absent in v1 trajectory snapshots).
    pub max_ns: Option<f64>,
    /// Timed samples behind the mean.
    pub samples: u64,
    /// `mean_ns / probe_ns` — machine-normalized cost (v2 only).
    pub normalized: Option<f64>,
}

impl BenchPoint {
    /// `group/id`, the key benches match on across snapshots.
    pub fn key(&self) -> String {
        format!("{}/{}", self.group, self.id)
    }

    /// Relative min–max spread of this bench's own samples (0 when the
    /// snapshot lacks min/max or has a single sample).
    pub fn spread(&self) -> f64 {
        match (self.min_ns, self.max_ns) {
            (Some(min), Some(max)) if self.samples > 1 && self.mean_ns > 0.0 => {
                (max - min) / self.mean_ns
            }
            _ => 0.0,
        }
    }
}

/// One snapshot of the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot label (e.g. `pr8-calibrated`).
    pub label: String,
    /// Per-bench measurements.
    pub benches: Vec<BenchPoint>,
    /// Within-snapshot derived speedups (`naive / current` mean
    /// ratios; never computed across snapshots).
    pub speedups: BTreeMap<String, f64>,
    /// The machine calibration stamped on this snapshot (v2 only).
    pub calibration: Option<MachineCalibration>,
}

impl Snapshot {
    /// Machine-normalized cost of a bench: the stored `normalized`
    /// value, or `mean_ns / probe_ns` when only the calibration block
    /// is present.
    pub fn normalized(&self, b: &BenchPoint) -> Option<f64> {
        b.normalized.or_else(|| {
            self.calibration.as_ref().map(|c| b.mean_ns / c.probe_ns.max(f64::MIN_POSITIVE))
        })
    }
}

/// Parse one snapshot object.
pub fn parse_snapshot(v: &Value) -> Result<Snapshot, String> {
    let label = v.get("label").and_then(Value::as_str).unwrap_or("(unlabeled)").to_string();
    let arr = v
        .get("benches")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("snapshot `{label}`: missing `benches` array"))?;
    let mut benches = Vec::with_capacity(arr.len());
    for b in arr {
        let num = |key: &str| {
            b.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("snapshot `{label}`: bench missing numeric `{key}`"))
        };
        let s = |key: &str| {
            b.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("snapshot `{label}`: bench missing string `{key}`"))
        };
        benches.push(BenchPoint {
            group: s("group")?,
            id: s("id")?,
            mean_ns: num("mean_ns")?,
            min_ns: b.get("min_ns").and_then(Value::as_f64),
            max_ns: b.get("max_ns").and_then(Value::as_f64),
            samples: num("samples")? as u64,
            normalized: b.get("normalized").and_then(Value::as_f64),
        });
    }
    let mut speedups = BTreeMap::new();
    if let Some(obj) = v.get("speedups").and_then(Value::as_obj) {
        for (name, val) in obj {
            if let Some(x) = val.as_f64() {
                speedups.insert(name.clone(), x);
            }
        }
    }
    let calibration = match v.get("calibration") {
        Some(c) => Some(
            MachineCalibration::from_value(c).map_err(|e| format!("snapshot `{label}`: {e}"))?,
        ),
        None => None,
    };
    Ok(Snapshot { label, benches, speedups, calibration })
}

/// Parse a whole trajectory document (`BENCH.json`), accepting both the
/// v1 and v2 suite schemas.
pub fn parse_trajectory(v: &Value) -> Result<Vec<Snapshot>, String> {
    match v.get("schema").and_then(Value::as_str) {
        Some(BENCH_SUITE_SCHEMA) | Some(BENCH_SUITE_SCHEMA_V1) => {}
        Some(other) => return Err(format!("unsupported trajectory schema `{other}`")),
        None => return Err("missing `schema` field".into()),
    }
    let arr = v.get("snapshots").and_then(Value::as_arr).ok_or("missing `snapshots` array")?;
    arr.iter().map(parse_snapshot).collect()
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// Gate thresholds. The *band* for a bench is
/// `min_band + base.dispersion + cand.dispersion + base_spread +
/// cand_spread` — adaptive: noisier calibrations and noisier benches
/// widen it. A normalized ratio more than `warn_bands` bands above 1
/// warns; more than `fail_bands` bands fails. With the defaults
/// (`min_band` 0.1, warn at 1 band, fail at 2) a planted 1.5× slowdown
/// fails on any host whose calibration dispersion is under ~7% a side,
/// while same-host noise stays inside the first band.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Noise floor added to every band: even a perfectly quiet probe
    /// cannot shrink the tolerance below this (single-sample smoke
    /// benches carry noise the probe never sees).
    pub min_band: f64,
    /// Bands above 1.0 where WARN begins.
    pub warn_bands: f64,
    /// Bands above 1.0 where FAIL begins (the CI hard gate).
    pub fail_bands: f64,
    /// Benches whose *baseline* mean is below this many raw nanoseconds
    /// are noted but never gated: sub-100µs single-sample timings are
    /// dominated by clock granularity and scheduler jitter, and no band
    /// arithmetic makes them honest.
    pub min_gate_ns: f64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig { min_band: 0.1, warn_bands: 1.0, fail_bands: 2.0, min_gate_ns: 100_000.0 }
    }
}

/// Per-metric gate outcome, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within one band of baseline.
    Ok,
    /// Slower than one band, within two: reported, does not fail.
    Warn,
    /// Slower than two bands (or the metric vanished): fails the gate.
    Fail,
}

impl Verdict {
    /// Fixed-width display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One gated metric.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Metric name (`group/id` for benches, `speedup:<name>` for
    /// derived speedups).
    pub name: String,
    /// Baseline normalized value (or speedup).
    pub base: f64,
    /// Candidate normalized value (or speedup).
    pub cand: f64,
    /// Regression ratio (>1 = candidate worse).
    pub ratio: f64,
    /// The adaptive band this metric was judged against.
    pub band: f64,
    /// The outcome.
    pub verdict: Verdict,
}

/// The result of gating one candidate snapshot against one baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Per-metric outcomes, in baseline order (benches, then speedups).
    pub rows: Vec<GateRow>,
    /// Informational notes (new benches, skipped metrics).
    pub notes: Vec<String>,
}

impl GateReport {
    /// The most severe verdict across all rows (Ok when empty).
    pub fn worst(&self) -> Verdict {
        self.rows.iter().map(|r| r.verdict).max().unwrap_or(Verdict::Ok)
    }

    /// Render the per-metric table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>12} {:>12} {:>7} {:>7}  verdict",
            "metric", "base(norm)", "cand(norm)", "ratio", "band"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<40} {:>12.3} {:>12.3} {:>7.3} {:>7.3}  {}",
                r.name,
                r.base,
                r.cand,
                r.ratio,
                r.band,
                r.verdict.tag()
            );
        }
        out
    }
}

/// Gate `cand` against `base` on machine-normalized ratios. Both
/// snapshots must carry a calibration block — gating raw nanoseconds
/// across machines is exactly the lie this module exists to retire.
pub fn gate(base: &Snapshot, cand: &Snapshot, cfg: &GateConfig) -> Result<GateReport, String> {
    let base_cal = base
        .calibration
        .as_ref()
        .ok_or_else(|| format!("baseline snapshot `{}` has no calibration block", base.label))?;
    let cand_cal = cand
        .calibration
        .as_ref()
        .ok_or_else(|| format!("candidate snapshot `{}` has no calibration block", cand.label))?;
    let cal_band = cfg.min_band + base_cal.dispersion + cand_cal.dispersion;

    let mut report = GateReport::default();
    let cand_by_key: BTreeMap<String, &BenchPoint> =
        cand.benches.iter().map(|b| (b.key(), b)).collect();

    for b in &base.benches {
        let key = b.key();
        let Some(base_norm) = base.normalized(b) else { continue };
        if b.mean_ns < cfg.min_gate_ns {
            report.notes.push(format!(
                "bench `{key}` is below the {:.0}µs gate floor (mean {:.0} ns): not gated",
                cfg.min_gate_ns / 1e3,
                b.mean_ns
            ));
            continue;
        }
        match cand_by_key.get(&key) {
            None => {
                // A bench that vanished is lost coverage, not noise.
                report.rows.push(GateRow {
                    name: key,
                    base: base_norm,
                    cand: f64::NAN,
                    ratio: f64::INFINITY,
                    band: cal_band,
                    verdict: Verdict::Fail,
                });
            }
            Some(c) => {
                let Some(cand_norm) = cand.normalized(c) else { continue };
                let band = cal_band + b.spread() + c.spread();
                let ratio = cand_norm / base_norm.max(f64::MIN_POSITIVE);
                report.rows.push(GateRow {
                    name: key,
                    base: base_norm,
                    cand: cand_norm,
                    ratio,
                    band,
                    verdict: verdict_for(ratio, band, cfg),
                });
            }
        }
    }
    let base_keys: std::collections::BTreeSet<String> =
        base.benches.iter().map(|b| b.key()).collect();
    for c in &cand.benches {
        if !base_keys.contains(&c.key()) {
            report.notes.push(format!("bench `{}` is new in the candidate", c.key()));
        }
    }

    // Within-snapshot derived speedups: already host-independent (both
    // sides of the ratio ran in the same process), so they gate with
    // the calibration band alone. Regression direction is downward.
    for (name, &base_speedup) in &base.speedups {
        match cand.speedups.get(name) {
            None => report.notes.push(format!(
                "speedup `{name}` is absent from the candidate (bench pair not run)"
            )),
            Some(&cand_speedup) => {
                let ratio = base_speedup / cand_speedup.max(f64::MIN_POSITIVE);
                report.rows.push(GateRow {
                    name: format!("speedup:{name}"),
                    base: base_speedup,
                    cand: cand_speedup,
                    ratio,
                    band: cal_band,
                    verdict: verdict_for(ratio, cal_band, cfg),
                });
            }
        }
    }
    Ok(report)
}

fn verdict_for(ratio: f64, band: f64, cfg: &GateConfig) -> Verdict {
    if ratio > 1.0 + cfg.fail_bands * band {
        Verdict::Fail
    } else if ratio > 1.0 + cfg.warn_bands * band {
        Verdict::Warn
    } else {
        Verdict::Ok
    }
}

// ---------------------------------------------------------------------------
// Trajectory table
// ---------------------------------------------------------------------------

/// Render the per-group trajectory across snapshots: one row per bench
/// group, one column per snapshot, each cell the geometric mean of the
/// group's normalized bench costs (`-` when the snapshot predates
/// calibration). Geometric mean, because normalized costs are ratios.
pub fn trajectory_table(snapshots: &[Snapshot]) -> String {
    let mut groups: Vec<String> = Vec::new();
    for s in snapshots {
        for b in &s.benches {
            if !groups.contains(&b.group) {
                groups.push(b.group.clone());
            }
        }
    }
    let mut out = String::new();
    let _ = write!(out, "{:<16}", "group");
    for s in snapshots {
        let _ = write!(out, " {:>20}", s.label);
    }
    out.push('\n');
    for g in &groups {
        let _ = write!(out, "{g:<16}");
        for s in snapshots {
            let norms: Vec<f64> = s
                .benches
                .iter()
                .filter(|b| &b.group == g)
                .filter_map(|b| s.normalized(b))
                .filter(|&n| n > 0.0)
                .collect();
            if norms.is_empty() {
                let _ = write!(out, " {:>20}", "-");
            } else {
                let geo = (norms.iter().map(|n| n.ln()).sum::<f64>() / norms.len() as f64).exp();
                let _ = write!(out, " {geo:>20.3}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// A scripted fake timer: a fixed ns-per-unit rate, plus an
    /// optional queue of per-repeat rate overrides consumed after the
    /// scale-up converges.
    struct FakeTimer {
        ns_per_unit: f64,
        scripted: Vec<f64>,
        calls: usize,
        min_probe_ns: u64,
        converged: bool,
    }

    impl FakeTimer {
        fn constant(ns_per_unit: f64) -> FakeTimer {
            FakeTimer {
                ns_per_unit,
                scripted: Vec::new(),
                calls: 0,
                min_probe_ns: 0,
                converged: false,
            }
        }
    }

    impl ProbeTimer for FakeTimer {
        fn time_units(&mut self, units: u64) -> u64 {
            self.calls += 1;
            // Scripted rates kick in during the repeat phase: the first
            // call satisfying the minimum probe duration is still the
            // scale-up's convergence probe, every later one a repeat.
            let satisfies = self.ns_per_unit * units as f64 >= self.min_probe_ns as f64;
            let rate = if satisfies && self.converged && !self.scripted.is_empty() {
                self.scripted.remove(0)
            } else {
                self.converged |= satisfies;
                self.ns_per_unit
            };
            (rate * units as f64) as u64
        }
    }

    #[test]
    fn reduce_is_pinned() {
        // 9 samples, trim 2: keep [3, 4, 5, 6, 7] -> mean 5, spread 4.
        let samples = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 6.0, 8.0, 4.0];
        let s = reduce(&samples, 2);
        assert_eq!(s.trimmed_mean, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.dispersion, 4.0 / 5.0);
    }

    #[test]
    fn reduce_clamps_overlarge_trim() {
        // trim 5 of 3 samples would keep nothing; the clamp keeps the
        // median.
        let s = reduce(&[1.0, 10.0, 100.0], 5);
        assert_eq!(s.trimmed_mean, 10.0);
        assert_eq!(s.dispersion, 0.0);
    }

    #[test]
    fn reduce_zero_mean_has_zero_dispersion() {
        let s = reduce(&[0.0, 0.0, 0.0], 0);
        assert_eq!(s.trimmed_mean, 0.0);
        assert_eq!(s.dispersion, 0.0);
    }

    fn test_cfg() -> CalibrationConfig {
        CalibrationConfig {
            min_probe_ns: 1_000_000,
            start_units: 16,
            max_units: 1 << 40,
            max_scale_steps: 32,
            repeats: 9,
            trim: 2,
        }
    }

    #[test]
    fn calibration_is_deterministic_against_a_fake_timer() {
        // 100 ns/unit constant, with scripted repeat rates. The kept
        // middle five of the sorted repeats pin the statistics exactly.
        let cfg = test_cfg();
        let mut t = FakeTimer {
            ns_per_unit: 100.0,
            scripted: vec![104.0, 96.0, 100.0, 130.0, 98.0, 102.0, 70.0, 101.0, 99.0],
            calls: 0,
            min_probe_ns: cfg.min_probe_ns,
            converged: false,
        };
        let cal = calibrate_with(&mut t, &cfg);
        // Sorted: 70 96 98 99 100 101 102 104 130; keep 98..=102.
        assert_eq!(cal.probe_ns, 100.0);
        assert_eq!(cal.min_ns, 70.0);
        assert_eq!(cal.dispersion, 4.0 / 100.0);
        assert_eq!(cal.repeats, 9);
        // Scale-up from 16 units at 100 ns/unit needs >= 10_000 units.
        assert!(cal.units >= 10_000, "units {} below the probe target", cal.units);
        // And a second identical run reproduces it bit-for-bit.
        let mut t2 = FakeTimer {
            ns_per_unit: 100.0,
            scripted: vec![104.0, 96.0, 100.0, 130.0, 98.0, 102.0, 70.0, 101.0, 99.0],
            calls: 0,
            min_probe_ns: cfg.min_probe_ns,
            converged: false,
        };
        assert_eq!(calibrate_with(&mut t2, &cfg), cal);
    }

    #[test]
    fn scale_up_terminates_within_bounds_on_a_constant_timer() {
        let cfg = test_cfg();
        let mut t = FakeTimer::constant(50.0);
        t.min_probe_ns = cfg.min_probe_ns;
        let cal = calibrate_with(&mut t, &cfg);
        // Needs 20_000 units for 1 ms at 50 ns/unit; the 1.5x-target
        // growth may overshoot by at most the 8x clamp.
        assert!(cal.units >= 20_000 && cal.units <= 20_000 * 8, "units {}", cal.units);
        // Scale-up calls + 9 repeats, all bounded.
        assert!(t.calls <= cfg.max_scale_steps + cfg.repeats, "calls {}", t.calls);
    }

    #[test]
    fn scale_up_terminates_even_when_the_timer_reports_zero() {
        // A zero-elapsed timer can never satisfy the minimum duration;
        // the unit cap and step cap still terminate the loop.
        let cfg = CalibrationConfig { max_units: 1 << 20, ..test_cfg() };
        let mut t = FakeTimer::constant(0.0);
        let cal = calibrate_with(&mut t, &cfg);
        assert_eq!(cal.units, 1 << 20);
        assert!(t.calls <= cfg.max_scale_steps + cfg.repeats);
        assert_eq!(cal.probe_ns, 0.0);
    }

    #[test]
    fn scale_up_growth_is_clamped_per_step() {
        // An almost-converged probe must still grow by at least 2x, so
        // a factor fractionally above 1 cannot produce a long crawl.
        let cfg = test_cfg();
        let mut t = FakeTimer::constant(100.0);
        t.min_probe_ns = cfg.min_probe_ns;
        let cal = calibrate_with(&mut t, &cfg);
        // 16 -> >= 10_000 at clamp [2, 8]: between ceil(log8) = 4 and
        // log2 = 10 scale steps, plus the repeats.
        assert!(t.calls - cfg.repeats <= 10, "scale-up took {} steps", t.calls - cfg.repeats);
        assert!(cal.units >= 10_000);
    }

    #[test]
    fn calibration_json_round_trips() {
        let cal = MachineCalibration {
            probe_ns: 83.25,
            min_ns: 80.0,
            dispersion: 0.04,
            repeats: 9,
            units: 262144,
            cpus: 4,
            fingerprint: "x86_64-linux-c4".into(),
        };
        let parsed = MachineCalibration::from_value(&json::parse(&cal.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, cal);
    }

    #[test]
    fn real_probe_produces_a_sane_calibration() {
        // Tiny configuration so the test stays fast even on a loaded
        // host; only sanity bounds are asserted (it is a real clock).
        let cfg = CalibrationConfig {
            min_probe_ns: 200_000,
            start_units: 64,
            repeats: 5,
            trim: 1,
            ..CalibrationConfig::default()
        };
        let cal = calibrate_with(&mut RealProbe::new(), &cfg);
        assert!(cal.probe_ns > 0.0, "probe_ns {}", cal.probe_ns);
        assert!(cal.probe_ns < 1e6, "probe_ns {} absurdly slow", cal.probe_ns);
        assert!(cal.min_ns <= cal.probe_ns);
        assert!(cal.dispersion >= 0.0);
        assert!(cal.cpus >= 1);
        assert!(!cal.fingerprint.is_empty());
    }

    fn snap(label: &str, benches: &[(&str, &str, f64)], dispersion: f64) -> Snapshot {
        let cal = MachineCalibration {
            probe_ns: 100.0,
            min_ns: 95.0,
            dispersion,
            repeats: 9,
            units: 1 << 17,
            cpus: 1,
            fingerprint: "test".into(),
        };
        Snapshot {
            label: label.into(),
            benches: benches
                .iter()
                .map(|(g, i, mean)| BenchPoint {
                    group: g.to_string(),
                    id: i.to_string(),
                    mean_ns: *mean,
                    min_ns: Some(*mean),
                    max_ns: Some(*mean),
                    samples: 10,
                    normalized: Some(*mean / 100.0),
                })
                .collect(),
            speedups: BTreeMap::new(),
            calibration: Some(cal),
        }
    }

    #[test]
    fn gate_passes_identical_snapshots_and_fails_missing_benches() {
        let cfg = GateConfig::default();
        let base = snap("base", &[("g", "a", 1e7), ("g", "b", 2e7)], 0.02);
        let report = gate(&base, &base, &cfg).unwrap();
        assert_eq!(report.worst(), Verdict::Ok);

        let cand = snap("cand", &[("g", "a", 1e7)], 0.02);
        let report = gate(&base, &cand, &cfg).unwrap();
        assert_eq!(report.worst(), Verdict::Fail);
        assert!(report.rows.iter().any(|r| r.name == "g/b" && r.verdict == Verdict::Fail));
    }

    #[test]
    fn gate_warns_between_one_and_two_bands_and_fails_beyond() {
        // dispersion 0.02 on both sides, min_band 0.1: band = 0.14.
        let cfg = GateConfig { min_band: 0.1, ..GateConfig::default() };
        let base = snap("base", &[("g", "a", 1e7)], 0.02);
        for (factor, expected) in [(1.05, Verdict::Ok), (1.2, Verdict::Warn), (1.30, Verdict::Fail)]
        {
            let cand = snap("cand", &[("g", "a", 1e7 * factor)], 0.02);
            let report = gate(&base, &cand, &cfg).unwrap();
            assert_eq!(report.worst(), expected, "factor {factor}: {}", report.table());
        }
        // Faster is never a regression (one-sided).
        let cand = snap("cand", &[("g", "a", 1e5)], 0.02);
        assert_eq!(gate(&base, &cand, &cfg).unwrap().worst(), Verdict::Ok);
    }

    #[test]
    fn gate_skips_benches_below_the_duration_floor() {
        // An 80µs bench 10x slower: clock-granularity territory — the
        // gate must refuse to judge it (note, no row) while still
        // gating the slower sibling in the same snapshot.
        let cfg = GateConfig::default();
        let base = snap("base", &[("g", "tiny", 8e4), ("g", "big", 1e7)], 0.02);
        let cand = snap("cand", &[("g", "tiny", 8e5), ("g", "big", 1e7)], 0.02);
        let report = gate(&base, &cand, &cfg).unwrap();
        assert_eq!(report.worst(), Verdict::Ok, "{}", report.table());
        assert!(!report.rows.iter().any(|r| r.name == "g/tiny"));
        assert!(report.notes.iter().any(|n| n.contains("g/tiny") && n.contains("floor")));
        assert!(report.rows.iter().any(|r| r.name == "g/big"));
    }

    #[test]
    fn gate_requires_calibration_blocks() {
        let base = snap("base", &[("g", "a", 1e7)], 0.02);
        let mut uncal = base.clone();
        uncal.calibration = None;
        uncal.benches[0].normalized = None;
        let err = gate(&uncal, &base, &GateConfig::default()).unwrap_err();
        assert!(err.contains("no calibration"), "{err}");
        let err = gate(&base, &uncal, &GateConfig::default()).unwrap_err();
        assert!(err.contains("no calibration"), "{err}");
    }

    #[test]
    fn gate_speedup_regression_is_caught() {
        let cfg = GateConfig { min_band: 0.1, ..GateConfig::default() };
        let mut base = snap("base", &[("g", "a", 1e7)], 0.02);
        base.speedups.insert("detailed_sim".into(), 2.2);
        let mut cand = snap("cand", &[("g", "a", 1e7)], 0.02);
        cand.speedups.insert("detailed_sim".into(), 1.5);
        let report = gate(&base, &cand, &cfg).unwrap();
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.name == "speedup:detailed_sim" && r.verdict == Verdict::Fail),
            "{}",
            report.table()
        );
        // A missing speedup (pair not run) is a note, not a failure.
        cand.speedups.clear();
        let report = gate(&base, &cand, &cfg).unwrap();
        assert_eq!(report.worst(), Verdict::Ok);
        assert!(report.notes.iter().any(|n| n.contains("detailed_sim")));
    }

    #[test]
    fn trajectory_parses_v1_and_v2_and_renders_a_table() {
        let doc = r#"{
          "schema": "mlpa-bench-suite-v1",
          "snapshots": [
            {"label": "old", "benches": [
              {"group": "g", "id": "a", "mean_ns": 1000, "samples": 10}
            ], "speedups": {"k": 2.0}}
          ]
        }"#;
        let snaps = parse_trajectory(&json::parse(doc).unwrap()).unwrap();
        assert_eq!(snaps.len(), 1);
        assert!(snaps[0].calibration.is_none());
        assert_eq!(snaps[0].speedups["k"], 2.0);

        let v2 = snap("new", &[("g", "a", 800.0)], 0.02);
        let table = trajectory_table(&[snaps[0].clone(), v2]);
        // v1 column has no normalized value; v2 column shows 8.0.
        assert!(table.contains("g "), "{table}");
        assert!(table.contains('-'), "{table}");
        assert!(table.contains("8.000"), "{table}");
        assert!(parse_trajectory(
            &json::parse("{\"schema\": \"nope\", \"snapshots\": []}").unwrap()
        )
        .is_err());
    }
}
