//! Schema checker for obs output, used by the CI obs-smoke job.
//!
//! Validates (with no external tools) that:
//!
//! * a JSONL event stream holds exactly one well-formed JSON object per
//!   line, each with a known `ev` tag and that tag's required fields.
//!   Both stream generations are understood: v1 (no `schema` marker on
//!   `run_start`, no `tid` fields) and v2 (`mlpa-events-v2`: `tid` on
//!   span/worker/log events, `hist` and `counters` event kinds). A
//!   stream mixing the two is rejected with a line-numbered error;
//! * a `RUN_REPORT.json` matches the `mlpa-run-report-v2` schema —
//!   including the histogram section and, when present, the accuracy
//!   attribution section — and reports the counters the acceptance
//!   criteria name (k-means iterations, cache hits/misses per level,
//!   instructions simulated).
//!
//! Usage: `obs-check --events <events.jsonl> --report <RUN_REPORT.json>`
//! (either argument may be given alone). Exits non-zero with a
//! line-numbered message on the first violation.

use mlpa_obs::json::{self, Value};
use std::process::ExitCode;

/// Counters a complete instrumented run must have recorded.
const REQUIRED_COUNTERS: &[&str] = &[
    "phase.kmeans.iterations",
    "sim.instructions",
    "sim.l1d.hits",
    "sim.l1d.misses",
    "sim.l2.hits",
    "sim.l2.misses",
];

fn main() -> ExitCode {
    let mut events: Option<String> = None;
    let mut report: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => events = args.next(),
            "--report" => report = args.next(),
            other => {
                eprintln!("obs-check: unknown argument `{other}`");
                eprintln!("usage: obs-check [--events <file.jsonl>] [--report <RUN_REPORT.json>]");
                return ExitCode::FAILURE;
            }
        }
    }
    if events.is_none() && report.is_none() {
        eprintln!("obs-check: nothing to do (pass --events and/or --report)");
        return ExitCode::FAILURE;
    }

    if let Some(path) = events {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_events(&s))
        {
            Ok(n) => println!("obs-check: {path}: {n} events OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = report {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_report(&s))
        {
            Ok(()) => println!("obs-check: {path}: report OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?.as_f64().ok_or_else(|| format!("field `{key}` is not a number"))
}

/// Check `tid` presence against the stream schema: required in v2,
/// forbidden (mixed-schema) in v1.
fn check_tid(v: &Value, v2: bool) -> Result<(), String> {
    match (v2, v.get("tid")) {
        (true, None) => Err("missing field `tid` (required in a v2 stream)".into()),
        (true, Some(t)) => {
            t.as_f64().map(drop).ok_or_else(|| "field `tid` is not a number".to_string())
        }
        (false, Some(_)) => Err("v2 field `tid` in a v1 stream (mixed-schema)".into()),
        (false, None) => Ok(()),
    }
}

/// Validate a JSONL event stream; returns the number of events.
///
/// The stream schema is declared by the `schema` field of the leading
/// `run_start` event (absent = v1); every later line is validated
/// against that declaration, so a stream concatenated from different
/// generations fails with the offending line number.
fn check_events(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut saw_start = false;
    let mut saw_end = false;
    let mut v2 = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line in JSONL stream"));
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if v.as_obj().is_none() {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let ev = str_field(&v, "ev").map_err(|e| format!("line {lineno}: {e}"))?;
        if !saw_start && ev != "run_start" {
            return Err(format!("line {lineno}: stream must begin with run_start"));
        }
        let check = match ev.as_str() {
            "run_start" => {
                let schema = match v.get("schema") {
                    None => Ok(false),
                    Some(Value::Str(s)) if s == mlpa_obs::EVENTS_SCHEMA => Ok(true),
                    Some(Value::Str(s)) => Err(format!("unknown events schema `{s}`")),
                    Some(_) => Err("field `schema` is not a string".to_string()),
                };
                schema.and_then(|this_v2| {
                    if saw_start && this_v2 != v2 {
                        return Err(format!(
                            "run_start declares {} but the stream began as {} (mixed-schema)",
                            if this_v2 { "v2" } else { "v1" },
                            if v2 { "v2" } else { "v1" },
                        ));
                    }
                    saw_start = true;
                    v2 = this_v2;
                    num_field(&v, "t_us").map(drop)
                })
            }
            "run_end" => {
                saw_end = true;
                num_field(&v, "t_us").map(drop)
            }
            "span" => ["id", "t_us", "dur_us"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "name").map(drop))
                .and_then(|()| check_tid(&v, v2))
                .and_then(|()| match field(&v, "parent")? {
                    Value::Null | Value::Num(_) => Ok(()),
                    _ => Err("field `parent` is not a number or null".into()),
                }),
            "worker" => ["index", "busy_us", "wall_us", "jobs"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "pool").map(drop))
                .and_then(|()| check_tid(&v, v2)),
            "log" => ["level", "target", "msg"]
                .iter()
                .try_for_each(|k| str_field(&v, k).map(drop))
                .and_then(|()| num_field(&v, "t_us").map(drop))
                .and_then(|()| check_tid(&v, v2)),
            "hist" if !v2 => Err("v2 event kind `hist` in a v1 stream (mixed-schema)".into()),
            "hist" => ["t_us", "count", "sum", "min", "max", "p50", "p90", "p99"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "name").map(drop))
                .and_then(|()| str_field(&v, "unit").map(drop)),
            "counters" if !v2 => {
                Err("v2 event kind `counters` in a v1 stream (mixed-schema)".into())
            }
            "counters" => num_field(&v, "t_us").map(drop).and_then(|()| {
                let obj =
                    field(&v, "counters")?.as_obj().ok_or("field `counters` is not an object")?;
                for (name, value) in obj {
                    if value.as_f64().is_none() {
                        return Err(format!("counter `{name}` is not a number"));
                    }
                }
                Ok(())
            }),
            other => Err(format!("unknown event kind `{other}`")),
        };
        check.map_err(|e| format!("line {lineno}: {e}"))?;
        count += 1;
    }
    if count == 0 {
        return Err("empty event stream".into());
    }
    if !saw_start {
        return Err("no run_start event".into());
    }
    if !saw_end {
        return Err("no run_end event".into());
    }
    Ok(count)
}

/// Validate a `RUN_REPORT.json` document.
fn check_report(text: &str) -> Result<(), String> {
    let v = json::parse(text)?;
    let schema = str_field(&v, "schema")?;
    if schema != mlpa_obs::RUN_REPORT_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{}`", mlpa_obs::RUN_REPORT_SCHEMA));
    }
    let wall_s = num_field(&v, "wall_s")?;
    if wall_s <= 0.0 {
        return Err(format!("wall_s is {wall_s}, expected > 0"));
    }

    let phases = field(&v, "phases")?.as_arr().ok_or("field `phases` is not an array")?;
    if phases.is_empty() {
        return Err("no phases recorded".into());
    }
    for (i, p) in phases.iter().enumerate() {
        str_field(p, "name").map_err(|e| format!("phases[{i}]: {e}"))?;
        for k in ["count", "total_s"] {
            num_field(p, k).map_err(|e| format!("phases[{i}]: {e}"))?;
        }
    }

    let workers = field(&v, "workers")?.as_arr().ok_or("field `workers` is not an array")?;
    if workers.is_empty() {
        return Err("no workers recorded".into());
    }
    for (i, w) in workers.iter().enumerate() {
        str_field(w, "pool").map_err(|e| format!("workers[{i}]: {e}"))?;
        for k in ["index", "busy_s", "wall_s", "jobs", "busy_fraction"] {
            num_field(w, k).map_err(|e| format!("workers[{i}]: {e}"))?;
        }
        let frac = num_field(w, "busy_fraction").expect("checked");
        if !(0.0..=1.0 + 1e-6).contains(&frac) {
            return Err(format!("workers[{i}]: busy_fraction {frac} out of [0, 1]"));
        }
    }

    let counters = field(&v, "counters")?.as_arr().ok_or("field `counters` is not an array")?;
    let mut names = Vec::new();
    for (i, c) in counters.iter().enumerate() {
        names.push(str_field(c, "name").map_err(|e| format!("counters[{i}]: {e}"))?);
        num_field(c, "value").map_err(|e| format!("counters[{i}]: {e}"))?;
    }
    for required in REQUIRED_COUNTERS {
        if !names.iter().any(|n| n == required) {
            return Err(format!("missing required counter `{required}`"));
        }
    }

    let hists = field(&v, "histograms")?.as_arr().ok_or("field `histograms` is not an array")?;
    if hists.is_empty() {
        return Err("no histograms recorded".into());
    }
    for (i, h) in hists.iter().enumerate() {
        str_field(h, "name").map_err(|e| format!("histograms[{i}]: {e}"))?;
        str_field(h, "unit").map_err(|e| format!("histograms[{i}]: {e}"))?;
        for k in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
            num_field(h, k).map_err(|e| format!("histograms[{i}]: {e}"))?;
        }
        let count = num_field(h, "count").expect("checked");
        if count <= 0.0 {
            return Err(format!("histograms[{i}]: count {count}, expected > 0"));
        }
        let (min, max) =
            (num_field(h, "min").expect("checked"), num_field(h, "max").expect("checked"));
        if min > max {
            return Err(format!("histograms[{i}]: min {min} > max {max}"));
        }
        for q in ["p50", "p90", "p99"] {
            let p = num_field(h, q).expect("checked");
            if p < min || p > max {
                return Err(format!("histograms[{i}]: {q} {p} outside [min, max]"));
            }
        }
    }

    // The accuracy attribution section is optional (only emitted by the
    // experiment harness with --attrib) but must be well-formed when
    // present.
    if let Some(attrib) = v.get("attribution") {
        let arr = attrib.as_arr().ok_or("field `attribution` is not an array")?;
        for (i, a) in arr.iter().enumerate() {
            str_field(a, "benchmark").map_err(|e| format!("attribution[{i}]: {e}"))?;
            let phases = field(a, "phases")
                .and_then(|p| {
                    p.as_arr().ok_or_else(|| "field `phases` is not an array".to_string())
                })
                .map_err(|e| format!("attribution[{i}]: {e}"))?;
            for (j, p) in phases.iter().enumerate() {
                for k in ["cluster", "weight", "cpi_err_share"] {
                    num_field(p, k).map_err(|e| format!("attribution[{i}].phases[{j}]: {e}"))?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_event_lines() {
        assert!(check_events("").is_err());
        assert!(check_events("{\"ev\":\"run_start\",\"t_us\":0}\nnot json\n").is_err());
        assert!(check_events("{\"ev\":\"mystery\"}\n").is_err());
        // Missing run_end.
        assert!(check_events("{\"ev\":\"run_start\",\"t_us\":0}\n").is_err());
        // First event must be run_start.
        assert!(check_events("{\"ev\":\"run_end\",\"t_us\":0}\n").is_err());
    }

    #[test]
    fn accepts_a_complete_v1_stream() {
        let stream = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"t_us\":1,\"dur_us\":5}\n",
            "{\"ev\":\"log\",\"t_us\":2,\"level\":\"info\",\"target\":\"t\",\"msg\":\"m\"}\n",
            "{\"ev\":\"worker\",\"pool\":\"p\",\"index\":0,\"busy_us\":3,\"wall_us\":4,\"jobs\":1}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        assert_eq!(check_events(stream).unwrap(), 5);
    }

    #[test]
    fn accepts_a_complete_v2_stream() {
        let stream = concat!(
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"tid\":0,\"t_us\":1,\
             \"dur_us\":5}\n",
            "{\"ev\":\"log\",\"t_us\":2,\"tid\":0,\"level\":\"info\",\"target\":\"t\",\
             \"msg\":\"m\"}\n",
            "{\"ev\":\"worker\",\"pool\":\"p\",\"index\":0,\"tid\":1,\"busy_us\":3,\
             \"wall_us\":4,\"jobs\":1}\n",
            "{\"ev\":\"counters\",\"t_us\":5,\"counters\":{\"sim.instructions\":10}}\n",
            "{\"ev\":\"hist\",\"t_us\":8,\"name\":\"sim.rob.occupancy\",\"unit\":\"n\",\
             \"count\":4,\"sum\":20,\"min\":2,\"max\":8,\"p50\":7,\"p90\":8,\"p99\":8}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        assert_eq!(check_events(stream).unwrap(), 7);
    }

    #[test]
    fn rejects_mixed_schema_streams_with_line_numbers() {
        // v2 event kind in a v1 stream.
        let hist_in_v1 = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"hist\",\"t_us\":1,\"name\":\"h\",\"unit\":\"n\",\"count\":1,\"sum\":1,\
             \"min\":1,\"max\":1,\"p50\":1,\"p90\":1,\"p99\":1}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(hist_in_v1).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("mixed-schema"), "{err}");

        // v2 field on a v1 stream's span.
        let tid_in_v1 = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"tid\":0,\"t_us\":1,\
             \"dur_us\":5}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(tid_in_v1).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("mixed-schema"), "{err}");

        // v1 span (no tid) in a v2 stream.
        let v1_span_in_v2 = concat!(
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"t_us\":1,\"dur_us\":5}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(v1_span_in_v2).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("tid"), "{err}");

        // Two concatenated runs of different generations.
        let concatenated = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"run_end\",\"t_us\":1}\n",
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
            "{\"ev\":\"run_end\",\"t_us\":1}\n",
        );
        let err = check_events(concatenated).unwrap_err();
        assert!(err.starts_with("line 3:") && err.contains("mixed-schema"), "{err}");

        // Unknown future schema.
        let unknown = "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v3\",\"t_us\":0}\n";
        assert!(check_events(unknown).unwrap_err().contains("unknown events schema"));
    }

    fn sample_report() -> mlpa_obs::Report {
        mlpa_obs::Report {
            wall_s: 1.0,
            phases: vec![mlpa_obs::PhaseStat {
                name: "core.profile".into(),
                count: 2,
                total_s: 0.5,
            }],
            workers: vec![mlpa_obs::WorkerStat {
                pool: "plan".into(),
                index: 0,
                busy_s: 0.4,
                wall_s: 0.5,
                jobs: 3,
                busy_fraction: 0.8,
            }],
            counters: REQUIRED_COUNTERS.iter().map(|n| (n.to_string(), 1)).collect(),
            histograms: vec![mlpa_obs::HistogramStat {
                name: "sim.rob.occupancy".into(),
                unit: "n".into(),
                count: 4,
                sum: 20,
                min: 2,
                max: 8,
                p50: 7,
                p90: 8,
                p99: 8,
            }],
        }
    }

    #[test]
    fn report_schema_is_enforced() {
        let mut report = sample_report();
        assert!(check_report(&report.to_json()).is_ok());
        report.counters.remove(0);
        let err = check_report(&report.to_json()).unwrap_err();
        assert!(err.contains("phase.kmeans.iterations"), "{err}");
    }

    #[test]
    fn report_histograms_are_validated() {
        let mut report = sample_report();
        report.histograms.clear();
        assert!(check_report(&report.to_json()).unwrap_err().contains("histograms"));
        let mut report = sample_report();
        report.histograms[0].p99 = 9; // outside [min, max]
        let err = check_report(&report.to_json()).unwrap_err();
        assert!(err.contains("p99"), "{err}");
    }

    #[test]
    fn report_attribution_section_is_validated_when_present() {
        let report = sample_report();
        let good = "[{\"benchmark\": \"eon\", \"phases\": [{\"cluster\": 0, \"weight\": 1.0, \
                    \"cpi_err_share\": -0.01}]}]";
        let doc = report.to_json_with(&[("attribution".to_string(), good.to_string())]);
        assert!(check_report(&doc).is_ok(), "{:?}", check_report(&doc));
        let bad = "[{\"phases\": []}]";
        let doc = report.to_json_with(&[("attribution".to_string(), bad.to_string())]);
        assert!(check_report(&doc).unwrap_err().contains("benchmark"));
    }
}
