//! Schema checker for obs output, used by the CI obs-smoke job.
//!
//! Validates (with no external tools) that:
//!
//! * a JSONL event stream holds exactly one well-formed JSON object per
//!   line, each with a known `ev` tag and that tag's required fields;
//! * a `RUN_REPORT.json` matches the `mlpa-run-report-v1` schema and
//!   reports the counters the acceptance criteria name (k-means
//!   iterations, cache hits/misses per level, instructions simulated).
//!
//! Usage: `obs-check --events <events.jsonl> --report <RUN_REPORT.json>`
//! (either argument may be given alone). Exits non-zero with a
//! line-numbered message on the first violation.

use mlpa_obs::json::{self, Value};
use std::process::ExitCode;

/// Counters a complete instrumented run must have recorded.
const REQUIRED_COUNTERS: &[&str] = &[
    "phase.kmeans.iterations",
    "sim.instructions",
    "sim.l1d.hits",
    "sim.l1d.misses",
    "sim.l2.hits",
    "sim.l2.misses",
];

fn main() -> ExitCode {
    let mut events: Option<String> = None;
    let mut report: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => events = args.next(),
            "--report" => report = args.next(),
            other => {
                eprintln!("obs-check: unknown argument `{other}`");
                eprintln!("usage: obs-check [--events <file.jsonl>] [--report <RUN_REPORT.json>]");
                return ExitCode::FAILURE;
            }
        }
    }
    if events.is_none() && report.is_none() {
        eprintln!("obs-check: nothing to do (pass --events and/or --report)");
        return ExitCode::FAILURE;
    }

    if let Some(path) = events {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_events(&s))
        {
            Ok(n) => println!("obs-check: {path}: {n} events OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = report {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_report(&s))
        {
            Ok(()) => println!("obs-check: {path}: report OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?.as_f64().ok_or_else(|| format!("field `{key}` is not a number"))
}

/// Validate a JSONL event stream; returns the number of events.
fn check_events(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut saw_start = false;
    let mut saw_end = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line in JSONL stream"));
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if v.as_obj().is_none() {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let ev = str_field(&v, "ev").map_err(|e| format!("line {lineno}: {e}"))?;
        let check = match ev.as_str() {
            "run_start" => {
                saw_start = true;
                num_field(&v, "t_us").map(drop)
            }
            "run_end" => {
                saw_end = true;
                num_field(&v, "t_us").map(drop)
            }
            "span" => ["id", "t_us", "dur_us"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "name").map(drop))
                .and_then(|()| match field(&v, "parent")? {
                    Value::Null | Value::Num(_) => Ok(()),
                    _ => Err("field `parent` is not a number or null".into()),
                }),
            "worker" => ["index", "busy_us", "wall_us", "jobs"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "pool").map(drop)),
            "log" => ["level", "target", "msg"]
                .iter()
                .try_for_each(|k| str_field(&v, k).map(drop))
                .and_then(|()| num_field(&v, "t_us").map(drop)),
            other => Err(format!("unknown event kind `{other}`")),
        };
        check.map_err(|e| format!("line {lineno}: {e}"))?;
        count += 1;
    }
    if count == 0 {
        return Err("empty event stream".into());
    }
    if !saw_start {
        return Err("no run_start event".into());
    }
    if !saw_end {
        return Err("no run_end event".into());
    }
    Ok(count)
}

/// Validate a `RUN_REPORT.json` document.
fn check_report(text: &str) -> Result<(), String> {
    let v = json::parse(text)?;
    let schema = str_field(&v, "schema")?;
    if schema != mlpa_obs::RUN_REPORT_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{}`", mlpa_obs::RUN_REPORT_SCHEMA));
    }
    let wall_s = num_field(&v, "wall_s")?;
    if wall_s <= 0.0 {
        return Err(format!("wall_s is {wall_s}, expected > 0"));
    }

    let phases = field(&v, "phases")?.as_arr().ok_or("field `phases` is not an array")?;
    if phases.is_empty() {
        return Err("no phases recorded".into());
    }
    for (i, p) in phases.iter().enumerate() {
        str_field(p, "name").map_err(|e| format!("phases[{i}]: {e}"))?;
        for k in ["count", "total_s"] {
            num_field(p, k).map_err(|e| format!("phases[{i}]: {e}"))?;
        }
    }

    let workers = field(&v, "workers")?.as_arr().ok_or("field `workers` is not an array")?;
    if workers.is_empty() {
        return Err("no workers recorded".into());
    }
    for (i, w) in workers.iter().enumerate() {
        str_field(w, "pool").map_err(|e| format!("workers[{i}]: {e}"))?;
        for k in ["index", "busy_s", "wall_s", "jobs", "busy_fraction"] {
            num_field(w, k).map_err(|e| format!("workers[{i}]: {e}"))?;
        }
        let frac = num_field(w, "busy_fraction").expect("checked");
        if !(0.0..=1.0 + 1e-6).contains(&frac) {
            return Err(format!("workers[{i}]: busy_fraction {frac} out of [0, 1]"));
        }
    }

    let counters = field(&v, "counters")?.as_arr().ok_or("field `counters` is not an array")?;
    let mut names = Vec::new();
    for (i, c) in counters.iter().enumerate() {
        names.push(str_field(c, "name").map_err(|e| format!("counters[{i}]: {e}"))?);
        num_field(c, "value").map_err(|e| format!("counters[{i}]: {e}"))?;
    }
    for required in REQUIRED_COUNTERS {
        if !names.iter().any(|n| n == required) {
            return Err(format!("missing required counter `{required}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_event_lines() {
        assert!(check_events("").is_err());
        assert!(check_events("{\"ev\":\"run_start\",\"t_us\":0}\nnot json\n").is_err());
        assert!(check_events("{\"ev\":\"mystery\"}\n").is_err());
        // Missing run_end.
        assert!(check_events("{\"ev\":\"run_start\",\"t_us\":0}\n").is_err());
    }

    #[test]
    fn accepts_a_complete_stream() {
        let stream = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"t_us\":1,\"dur_us\":5}\n",
            "{\"ev\":\"log\",\"t_us\":2,\"level\":\"info\",\"target\":\"t\",\"msg\":\"m\"}\n",
            "{\"ev\":\"worker\",\"pool\":\"p\",\"index\":0,\"busy_us\":3,\"wall_us\":4,\"jobs\":1}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        assert_eq!(check_events(stream).unwrap(), 5);
    }

    #[test]
    fn report_schema_is_enforced() {
        let mut report = mlpa_obs::Report {
            wall_s: 1.0,
            phases: vec![mlpa_obs::PhaseStat {
                name: "core.profile".into(),
                count: 2,
                total_s: 0.5,
            }],
            workers: vec![mlpa_obs::WorkerStat {
                pool: "plan".into(),
                index: 0,
                busy_s: 0.4,
                wall_s: 0.5,
                jobs: 3,
                busy_fraction: 0.8,
            }],
            counters: REQUIRED_COUNTERS.iter().map(|n| (n.to_string(), 1)).collect(),
        };
        assert!(check_report(&report.to_json()).is_ok());
        report.counters.remove(0);
        let err = check_report(&report.to_json()).unwrap_err();
        assert!(err.contains("phase.kmeans.iterations"), "{err}");
    }
}
