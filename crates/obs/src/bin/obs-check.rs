//! Schema checker for obs output, used by the CI obs-smoke and
//! telemetry-smoke jobs.
//!
//! Validates (with no external tools) that:
//!
//! * a JSONL event stream holds exactly one well-formed JSON object per
//!   line, each with a known `ev` tag and that tag's required fields.
//!   All three stream generations are understood: v1 (no `schema`
//!   marker on `run_start`, no `tid` fields), v2 (`mlpa-events-v2`:
//!   `tid` on span/worker/log events, `hist` and `counters` event
//!   kinds) and v3 (`mlpa-events-v3`: adds the sampler's `sample`
//!   events, whose payload carries its own `mlpa-sample-v1` schema tag,
//!   a strictly increasing `tick`, and per-sample counter totals that
//!   must never decrease). A stream mixing generations — or containing
//!   an event kind or schema string this checker does not know — is
//!   rejected with a line-numbered, named error;
//! * a `RUN_REPORT.json` matches the `mlpa-run-report-v3` schema —
//!   including the gauge section, the optional span-aggregated
//!   self-profile, the histogram section and, when present, the
//!   accuracy attribution section — and reports the counters the
//!   acceptance criteria name (k-means iterations, cache hits/misses
//!   per level, instructions simulated);
//! * a `/metrics` scrape parses under the strict Prometheus text
//!   checker (`--metrics`), with counters monotone non-decreasing
//!   against an earlier scrape of the same run (`--metrics-prev`), and
//!   any `--metrics-counter-min NAME MIN` thresholds met (NAME is the
//!   dotted counter name, e.g. `serve.inflight_dedup` — the CI
//!   serve-smoke job uses this to prove concurrent identical requests
//!   actually deduplicated);
//! * a `/status` body matches the `mlpa-status-v1` schema (`--status`).
//!
//! Usage: `obs-check --events <events.jsonl> --report <RUN_REPORT.json>`
//! (any argument may be given alone). Exits non-zero with a
//! line-numbered message on the first violation.
//!
//! Warm-cache mode (`--min-cache-hit-rate R`, used by the CI cache-smoke
//! job) changes what a valid report looks like: a fully warm resume run
//! performs no simulation at all, so the usual required sim counters and
//! non-empty histogram requirement are waived; instead the report must
//! show `core.cache.hits / (hits + misses) >= R`. Independently,
//! `--require-zero NAME` (repeatable) asserts a counter is absent or
//! zero — e.g. `core.truth.passes` on a resumed run.

use mlpa_obs::json::{self, Value};
use mlpa_obs::promtext;
use std::process::ExitCode;

/// Counters a complete instrumented run must have recorded.
const REQUIRED_COUNTERS: &[&str] = &[
    "phase.kmeans.iterations",
    "sim.instructions",
    "sim.l1d.hits",
    "sim.l1d.misses",
    "sim.l2.hits",
    "sim.l2.misses",
];

/// What `check_report` should enforce beyond the base schema.
#[derive(Default)]
struct ReportChecks {
    /// Counters that must be absent or exactly zero.
    require_zero: Vec<String>,
    /// `--require-nonzero NAME` (repeatable) asserts a counter is
    /// present with a nonzero total — e.g. the CI streaming-smoke job
    /// requires `core.profile.shard_resumes` after a resumed run, to
    /// prove it actually consumed checkpointed shard artifacts.
    require_nonzero: Vec<String>,
    /// Warm-cache mode: waive the required sim counters and the
    /// non-empty-histogram rule (a fully warm run records neither), and
    /// require `core.cache.hits / (hits + misses)` to reach this value.
    min_cache_hit_rate: Option<f64>,
}

fn main() -> ExitCode {
    let mut events: Option<String> = None;
    let mut report: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut metrics_prev: Option<String> = None;
    let mut status: Option<String> = None;
    let mut counter_min: Vec<(String, f64)> = Vec::new();
    let mut checks = ReportChecks::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => events = args.next(),
            "--report" => report = args.next(),
            "--metrics" => metrics = args.next(),
            "--metrics-prev" => metrics_prev = args.next(),
            "--status" => status = args.next(),
            "--require-zero" => match args.next() {
                Some(name) => checks.require_zero.push(name),
                None => {
                    eprintln!("obs-check: --require-zero needs a counter name");
                    return ExitCode::FAILURE;
                }
            },
            "--require-nonzero" => match args.next() {
                Some(name) => checks.require_nonzero.push(name),
                None => {
                    eprintln!("obs-check: --require-nonzero needs a counter name");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-counter-min" => {
                let name = args.next();
                let min = args.next().and_then(|s| s.parse::<f64>().ok());
                match (name, min) {
                    (Some(name), Some(min)) if min >= 0.0 => counter_min.push((name, min)),
                    _ => {
                        eprintln!(
                            "obs-check: --metrics-counter-min needs a counter name \
                             and a non-negative threshold"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--min-cache-hit-rate" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => checks.min_cache_hit_rate = Some(r),
                _ => {
                    eprintln!("obs-check: --min-cache-hit-rate needs a rate in [0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("obs-check: unknown argument `{other}`");
                eprintln!(
                    "usage: obs-check [--events <file.jsonl>] [--report <RUN_REPORT.json>] \
                     [--metrics <scrape.txt> [--metrics-prev <scrape.txt>] \
                     [--metrics-counter-min <counter> <min>]...] \
                     [--status <status.json>] [--require-zero <counter>]... \
                     [--require-nonzero <counter>]... [--min-cache-hit-rate <0..1>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if events.is_none() && report.is_none() && metrics.is_none() && status.is_none() {
        eprintln!("obs-check: nothing to do (pass --events, --report, --metrics, or --status)");
        return ExitCode::FAILURE;
    }
    if (metrics_prev.is_some() || !counter_min.is_empty()) && metrics.is_none() {
        eprintln!("obs-check: --metrics-prev / --metrics-counter-min need --metrics");
        return ExitCode::FAILURE;
    }

    if let Some(path) = events {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_events(&s))
        {
            Ok(n) => println!("obs-check: {path}: {n} events OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = report {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_report(&s, &checks))
        {
            Ok(()) => println!("obs-check: {path}: report OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = metrics {
        let prev = match metrics_prev.as_ref().map(std::fs::read_to_string).transpose() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("obs-check: {}: {e}", metrics_prev.as_deref().unwrap_or(""));
                return ExitCode::FAILURE;
            }
        };
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_metrics(&s, prev.as_deref(), &counter_min))
        {
            Ok(n) => println!("obs-check: {path}: {n} metric samples OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = status {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| check_status(&s))
        {
            Ok(()) => println!("obs-check: {path}: status OK"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?.as_f64().ok_or_else(|| format!("field `{key}` is not a number"))
}

/// Check `tid` presence against the stream generation: required from
/// v2 on, forbidden (mixed-schema) in v1.
fn check_tid(v: &Value, gen: u8) -> Result<(), String> {
    match (gen >= 2, v.get("tid")) {
        (true, None) => Err(format!("missing field `tid` (required in a v{gen} stream)")),
        (true, Some(t)) => {
            t.as_f64().map(drop).ok_or_else(|| "field `tid` is not a number".to_string())
        }
        (false, Some(_)) => Err("v2 field `tid` in a v1 stream (mixed-schema)".into()),
        (false, None) => Ok(()),
    }
}

/// Map a `run_start` schema declaration to a stream generation, or a
/// named error for a schema string this checker does not know.
fn stream_gen(schema: Option<&Value>) -> Result<u8, String> {
    match schema {
        None => Ok(1),
        Some(Value::Str(s)) if s == "mlpa-events-v2" => Ok(2),
        Some(Value::Str(s)) if s == mlpa_obs::EVENTS_SCHEMA => Ok(3),
        Some(Value::Str(s)) => Err(format!("unknown events schema `{s}`")),
        Some(_) => Err("field `schema` is not a string".to_string()),
    }
}

/// Validate one `sample` event against the telemetry contract: the
/// payload schema must be [`mlpa_obs::SAMPLE_SCHEMA`], ticks strictly
/// increase, and no counter total may ever decrease between samples.
fn check_sample(
    v: &Value,
    last_tick: &mut Option<f64>,
    prev_counters: &mut Vec<(String, f64)>,
) -> Result<(), String> {
    match v.get("schema") {
        Some(Value::Str(s)) if s == mlpa_obs::SAMPLE_SCHEMA => {}
        Some(Value::Str(s)) => return Err(format!("unknown sample schema `{s}`")),
        Some(_) => return Err("field `schema` is not a string".into()),
        None => return Err("missing field `schema` on sample event".into()),
    }
    for k in ["t_us", "rss_bytes"] {
        num_field(v, k)?;
    }
    let tick = num_field(v, "tick")?;
    if let Some(prev) = *last_tick {
        if tick <= prev {
            return Err(format!("sample tick {tick} not greater than previous tick {prev}"));
        }
    }
    *last_tick = Some(tick);

    let counters = field(v, "counters")?.as_obj().ok_or("field `counters` is not an object")?;
    let mut current = Vec::with_capacity(counters.len());
    for (name, value) in counters {
        let value = value.as_f64().ok_or_else(|| format!("counter `{name}` is not a number"))?;
        if let Some((_, prev)) = prev_counters.iter().find(|(n, _)| n == name) {
            if value < *prev {
                return Err(format!(
                    "counter `{name}` decreased between samples ({prev} -> {value})"
                ));
            }
        }
        current.push((name.clone(), value));
    }
    *prev_counters = current;

    let gauges = field(v, "gauges")?.as_obj().ok_or("field `gauges` is not an object")?;
    for (name, value) in gauges {
        if value.as_f64().is_none() {
            return Err(format!("gauge `{name}` is not a number"));
        }
    }
    let pools = field(v, "pools")?.as_arr().ok_or("field `pools` is not an array")?;
    for (i, p) in pools.iter().enumerate() {
        str_field(p, "pool").map_err(|e| format!("pools[{i}]: {e}"))?;
        for k in ["live", "jobs", "busy_ms", "busy_frac"] {
            num_field(p, k).map_err(|e| format!("pools[{i}]: {e}"))?;
        }
    }
    Ok(())
}

/// Validate a JSONL event stream; returns the number of events.
///
/// The stream schema is declared by the `schema` field of the leading
/// `run_start` event (absent = v1); every later line is validated
/// against that declaration, so a stream concatenated from different
/// generations fails with the offending line number.
fn check_events(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut saw_start = false;
    let mut saw_end = false;
    let mut gen = 1u8;
    let mut last_tick: Option<f64> = None;
    let mut prev_sample_counters: Vec<(String, f64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line in JSONL stream"));
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if v.as_obj().is_none() {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        let ev = str_field(&v, "ev").map_err(|e| format!("line {lineno}: {e}"))?;
        if !saw_start && ev != "run_start" {
            return Err(format!("line {lineno}: stream must begin with run_start"));
        }
        let check = match ev.as_str() {
            "run_start" => stream_gen(v.get("schema")).and_then(|this_gen| {
                if saw_start && this_gen != gen {
                    return Err(format!(
                        "run_start declares v{this_gen} but the stream began as v{gen} \
                         (mixed-schema)",
                    ));
                }
                saw_start = true;
                gen = this_gen;
                num_field(&v, "t_us").map(drop)
            }),
            "run_end" => {
                saw_end = true;
                num_field(&v, "t_us").map(drop)
            }
            "span" => ["id", "t_us", "dur_us"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "name").map(drop))
                .and_then(|()| check_tid(&v, gen))
                .and_then(|()| match field(&v, "parent")? {
                    Value::Null | Value::Num(_) => Ok(()),
                    _ => Err("field `parent` is not a number or null".into()),
                }),
            "worker" => ["index", "busy_us", "wall_us", "jobs"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "pool").map(drop))
                .and_then(|()| check_tid(&v, gen)),
            "log" => ["level", "target", "msg"]
                .iter()
                .try_for_each(|k| str_field(&v, k).map(drop))
                .and_then(|()| num_field(&v, "t_us").map(drop))
                .and_then(|()| check_tid(&v, gen)),
            "hist" if gen < 2 => Err("v2 event kind `hist` in a v1 stream (mixed-schema)".into()),
            "hist" => ["t_us", "count", "sum", "min", "max", "p50", "p90", "p99"]
                .iter()
                .try_for_each(|k| num_field(&v, k).map(drop))
                .and_then(|()| str_field(&v, "name").map(drop))
                .and_then(|()| str_field(&v, "unit").map(drop)),
            "counters" if gen < 2 => {
                Err("v2 event kind `counters` in a v1 stream (mixed-schema)".into())
            }
            "counters" => num_field(&v, "t_us").map(drop).and_then(|()| {
                let obj =
                    field(&v, "counters")?.as_obj().ok_or("field `counters` is not an object")?;
                for (name, value) in obj {
                    if value.as_f64().is_none() {
                        return Err(format!("counter `{name}` is not a number"));
                    }
                }
                Ok(())
            }),
            "sample" if gen < 3 => {
                Err(format!("v3 event kind `sample` in a v{gen} stream (mixed-schema)"))
            }
            "sample" => check_sample(&v, &mut last_tick, &mut prev_sample_counters),
            other => Err(format!("unknown event kind `{other}`")),
        };
        check.map_err(|e| format!("line {lineno}: {e}"))?;
        count += 1;
    }
    if count == 0 {
        return Err("empty event stream".into());
    }
    if !saw_start {
        return Err("no run_start event".into());
    }
    if !saw_end {
        return Err("no run_end event".into());
    }
    Ok(count)
}

/// Validate the optional span-aggregated self-profile section. Only
/// shape and internal consistency are checked here; which span names
/// and call counts are *expected* is obs-diff's job.
fn check_self_profile(sp: &Value) -> Result<(), String> {
    let spans = field(sp, "spans")?.as_arr().ok_or("field `spans` is not an array")?;
    for (i, s) in spans.iter().enumerate() {
        str_field(s, "name").map_err(|e| format!("self_profile.spans[{i}]: {e}"))?;
        for k in ["calls", "total_s", "self_s", "p50_us", "p99_us"] {
            num_field(s, k).map_err(|e| format!("self_profile.spans[{i}]: {e}"))?;
        }
        let total = num_field(s, "total_s").expect("checked");
        let own = num_field(s, "self_s").expect("checked");
        if own < 0.0 || own > total + 1e-6 {
            return Err(format!(
                "self_profile.spans[{i}]: self_s {own} outside [0, total_s {total}]"
            ));
        }
    }
    let tree = field(sp, "tree")?.as_arr().ok_or("field `tree` is not an array")?;
    for (i, e) in tree.iter().enumerate() {
        str_field(e, "name").map_err(|e| format!("self_profile.tree[{i}]: {e}"))?;
        for k in ["calls", "total_s"] {
            num_field(e, k).map_err(|e| format!("self_profile.tree[{i}]: {e}"))?;
        }
        match field(e, "parent").map_err(|e| format!("self_profile.tree[{i}]: {e}"))? {
            Value::Null | Value::Str(_) => {}
            _ => return Err(format!("self_profile.tree[{i}]: `parent` is not a string or null")),
        }
    }
    let pools = field(sp, "pools")?.as_arr().ok_or("field `pools` is not an array")?;
    for (i, p) in pools.iter().enumerate() {
        str_field(p, "pool").map_err(|e| format!("self_profile.pools[{i}]: {e}"))?;
        for k in ["workers", "jobs", "busy_s", "wall_s", "utilization"] {
            num_field(p, k).map_err(|e| format!("self_profile.pools[{i}]: {e}"))?;
        }
    }
    match field(sp, "critical_path")? {
        Value::Null => {}
        c => {
            str_field(c, "pool").map_err(|e| format!("self_profile.critical_path: {e}"))?;
            for k in
                ["workers", "wall_s", "max_busy_s", "mean_busy_s", "imbalance", "speedup_limit"]
            {
                num_field(c, k).map_err(|e| format!("self_profile.critical_path: {e}"))?;
            }
        }
    }
    Ok(())
}

/// Validate a `RUN_REPORT.json` document against the base schema plus
/// any extra `checks`.
fn check_report(text: &str, checks: &ReportChecks) -> Result<(), String> {
    let v = json::parse(text)?;
    let schema = str_field(&v, "schema")?;
    if schema != mlpa_obs::RUN_REPORT_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{}`", mlpa_obs::RUN_REPORT_SCHEMA));
    }
    let wall_s = num_field(&v, "wall_s")?;
    if wall_s <= 0.0 {
        return Err(format!("wall_s is {wall_s}, expected > 0"));
    }

    let phases = field(&v, "phases")?.as_arr().ok_or("field `phases` is not an array")?;
    if phases.is_empty() {
        return Err("no phases recorded".into());
    }
    for (i, p) in phases.iter().enumerate() {
        str_field(p, "name").map_err(|e| format!("phases[{i}]: {e}"))?;
        for k in ["count", "total_s"] {
            num_field(p, k).map_err(|e| format!("phases[{i}]: {e}"))?;
        }
    }

    let workers = field(&v, "workers")?.as_arr().ok_or("field `workers` is not an array")?;
    if workers.is_empty() {
        return Err("no workers recorded".into());
    }
    for (i, w) in workers.iter().enumerate() {
        str_field(w, "pool").map_err(|e| format!("workers[{i}]: {e}"))?;
        for k in ["index", "busy_s", "wall_s", "jobs", "busy_fraction"] {
            num_field(w, k).map_err(|e| format!("workers[{i}]: {e}"))?;
        }
        let frac = num_field(w, "busy_fraction").expect("checked");
        if !(0.0..=1.0 + 1e-6).contains(&frac) {
            return Err(format!("workers[{i}]: busy_fraction {frac} out of [0, 1]"));
        }
    }

    let counters = field(&v, "counters")?.as_arr().ok_or("field `counters` is not an array")?;
    let mut values = Vec::new();
    for (i, c) in counters.iter().enumerate() {
        let name = str_field(c, "name").map_err(|e| format!("counters[{i}]: {e}"))?;
        let value = num_field(c, "value").map_err(|e| format!("counters[{i}]: {e}"))?;
        values.push((name, value));
    }
    // A fully warm resume run performs no simulation, so the sim counter
    // requirement only applies outside warm-cache mode.
    if checks.min_cache_hit_rate.is_none() {
        for required in REQUIRED_COUNTERS {
            if !values.iter().any(|(n, _)| n == required) {
                return Err(format!("missing required counter `{required}`"));
            }
        }
    }
    let counter = |name: &str| values.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    for name in &checks.require_zero {
        if let Some(value) = counter(name) {
            if value != 0.0 {
                return Err(format!("counter `{name}` is {value}, expected 0 or absent"));
            }
        }
    }
    for name in &checks.require_nonzero {
        let value =
            counter(name).ok_or_else(|| format!("counter `{name}` is absent, expected nonzero"))?;
        if value == 0.0 {
            return Err(format!("counter `{name}` is 0, expected nonzero"));
        }
    }
    if let Some(min_rate) = checks.min_cache_hit_rate {
        let hits = counter("core.cache.hits").unwrap_or(0.0);
        let misses = counter("core.cache.misses").unwrap_or(0.0);
        if hits + misses <= 0.0 {
            return Err("no core.cache.hits/misses recorded; was the run cached at all?".into());
        }
        let rate = hits / (hits + misses);
        if rate < min_rate {
            return Err(format!(
                "cache hit rate {rate:.3} ({hits} hits / {misses} misses) below required \
                 {min_rate:.3}"
            ));
        }
    }

    let gauges = field(&v, "gauges")?.as_arr().ok_or("field `gauges` is not an array")?;
    for (i, g) in gauges.iter().enumerate() {
        str_field(g, "name").map_err(|e| format!("gauges[{i}]: {e}"))?;
        num_field(g, "value").map_err(|e| format!("gauges[{i}]: {e}"))?;
    }

    let hists = field(&v, "histograms")?.as_arr().ok_or("field `histograms` is not an array")?;
    if hists.is_empty() && checks.min_cache_hit_rate.is_none() {
        return Err("no histograms recorded".into());
    }
    for (i, h) in hists.iter().enumerate() {
        str_field(h, "name").map_err(|e| format!("histograms[{i}]: {e}"))?;
        str_field(h, "unit").map_err(|e| format!("histograms[{i}]: {e}"))?;
        for k in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
            num_field(h, k).map_err(|e| format!("histograms[{i}]: {e}"))?;
        }
        let count = num_field(h, "count").expect("checked");
        if count <= 0.0 {
            return Err(format!("histograms[{i}]: count {count}, expected > 0"));
        }
        let (min, max) =
            (num_field(h, "min").expect("checked"), num_field(h, "max").expect("checked"));
        if min > max {
            return Err(format!("histograms[{i}]: min {min} > max {max}"));
        }
        for q in ["p50", "p90", "p99"] {
            let p = num_field(h, q).expect("checked");
            if p < min || p > max {
                return Err(format!("histograms[{i}]: {q} {p} outside [min, max]"));
            }
        }
    }

    // The self-profile section is optional (absent when no spans were
    // collected) but must be well-formed when present.
    match v.get("self_profile") {
        None | Some(Value::Null) => {}
        Some(sp) => check_self_profile(sp)?,
    }

    // The accuracy attribution section is optional (only emitted by the
    // experiment harness with --attrib) but must be well-formed when
    // present.
    if let Some(attrib) = v.get("attribution") {
        let arr = attrib.as_arr().ok_or("field `attribution` is not an array")?;
        for (i, a) in arr.iter().enumerate() {
            str_field(a, "benchmark").map_err(|e| format!("attribution[{i}]: {e}"))?;
            let phases = field(a, "phases")
                .and_then(|p| {
                    p.as_arr().ok_or_else(|| "field `phases` is not an array".to_string())
                })
                .map_err(|e| format!("attribution[{i}]: {e}"))?;
            for (j, p) in phases.iter().enumerate() {
                for k in ["cluster", "weight", "cpi_err_share"] {
                    num_field(p, k).map_err(|e| format!("attribution[{i}].phases[{j}]: {e}"))?;
                }
            }
        }
    }
    Ok(())
}

/// Validate a `/metrics` scrape under the strict Prometheus text
/// checker; with an earlier scrape of the same run, additionally
/// require every counter series to be monotone non-decreasing; with
/// `counter_min` thresholds (dotted counter names), require each named
/// counter to reach its minimum. Returns the number of samples in the
/// current scrape.
fn check_metrics(
    current: &str,
    prev: Option<&str>,
    counter_min: &[(String, f64)],
) -> Result<usize, String> {
    let cur = promtext::check(current)?;
    if let Some(prev_text) = prev {
        let prev = promtext::check(prev_text).map_err(|e| format!("previous scrape: {e}"))?;
        let cur_counters = cur.counter_values();
        for (name, pv) in prev.counter_values() {
            let cv = *cur_counters
                .get(name)
                .ok_or_else(|| format!("counter `{name}` disappeared between scrapes"))?;
            if cv < pv {
                return Err(format!("counter `{name}` decreased between scrapes ({pv} -> {cv})"));
            }
        }
    }
    for (name, min) in counter_min {
        // Accept the dotted registry name and map it to the rendered
        // series name, so CI asserts on the same spelling the code uses.
        let series = format!("mlpa_counter_{}_total", promtext::sanitize(name));
        let value = *cur
            .samples
            .get(series.as_str())
            .ok_or_else(|| format!("counter `{name}` (`{series}`) missing from scrape"))?;
        if value < *min {
            return Err(format!("counter `{name}` is {value}, expected at least {min}"));
        }
    }
    Ok(cur.samples.len())
}

/// Validate a `GET /status` body against the `mlpa-status-v1` schema.
fn check_status(text: &str) -> Result<(), String> {
    let v = json::parse(text)?;
    let schema = str_field(&v, "schema")?;
    if schema != mlpa_obs::STATUS_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{}`", mlpa_obs::STATUS_SCHEMA));
    }
    str_field(&v, "phase")?;
    for k in ["benchmarks_done", "benchmarks_total", "segment", "uptime_ticks", "rss_bytes"] {
        num_field(&v, k)?;
    }
    let gauges = field(&v, "gauges")?.as_obj().ok_or("field `gauges` is not an object")?;
    for (name, value) in gauges {
        if value.as_f64().is_none() {
            return Err(format!("gauge `{name}` is not a number"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_event_lines() {
        assert!(check_events("").is_err());
        assert!(check_events("{\"ev\":\"run_start\",\"t_us\":0}\nnot json\n").is_err());
        assert!(check_events("{\"ev\":\"mystery\"}\n").is_err());
        // Missing run_end.
        assert!(check_events("{\"ev\":\"run_start\",\"t_us\":0}\n").is_err());
        // First event must be run_start.
        assert!(check_events("{\"ev\":\"run_end\",\"t_us\":0}\n").is_err());
    }

    #[test]
    fn unknown_event_kinds_are_named_in_the_error() {
        // A bogus event planted mid-stream must fail with the kind
        // named and the line numbered, not be silently skipped.
        let planted = concat!(
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v3\",\"t_us\":0}\n",
            "{\"ev\":\"telemetry2\",\"t_us\":1}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(planted).unwrap_err();
        assert!(
            err.starts_with("line 2:") && err.contains("unknown event kind `telemetry2`"),
            "{err}"
        );
    }

    #[test]
    fn accepts_a_complete_v1_stream() {
        let stream = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"t_us\":1,\"dur_us\":5}\n",
            "{\"ev\":\"log\",\"t_us\":2,\"level\":\"info\",\"target\":\"t\",\"msg\":\"m\"}\n",
            "{\"ev\":\"worker\",\"pool\":\"p\",\"index\":0,\"busy_us\":3,\"wall_us\":4,\"jobs\":1}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        assert_eq!(check_events(stream).unwrap(), 5);
    }

    #[test]
    fn accepts_a_complete_v2_stream() {
        let stream = concat!(
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"tid\":0,\"t_us\":1,\
             \"dur_us\":5}\n",
            "{\"ev\":\"log\",\"t_us\":2,\"tid\":0,\"level\":\"info\",\"target\":\"t\",\
             \"msg\":\"m\"}\n",
            "{\"ev\":\"worker\",\"pool\":\"p\",\"index\":0,\"tid\":1,\"busy_us\":3,\
             \"wall_us\":4,\"jobs\":1}\n",
            "{\"ev\":\"counters\",\"t_us\":5,\"counters\":{\"sim.instructions\":10}}\n",
            "{\"ev\":\"hist\",\"t_us\":8,\"name\":\"sim.rob.occupancy\",\"unit\":\"n\",\
             \"count\":4,\"sum\":20,\"min\":2,\"max\":8,\"p50\":7,\"p90\":8,\"p99\":8}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        assert_eq!(check_events(stream).unwrap(), 7);
    }

    fn sample_line(tick: u64, insts: u64) -> String {
        format!(
            "{{\"ev\":\"sample\",\"schema\":\"mlpa-sample-v1\",\"tick\":{tick},\"t_us\":{},\
             \"rss_bytes\":1048576,\"counters\":{{\"sim.instructions\":{insts}}},\
             \"gauges\":{{\"sim.rob.occupancy\":12}},\
             \"pools\":[{{\"pool\":\"plan\",\"live\":2,\"jobs\":3,\"busy_ms\":40,\
             \"busy_frac\":1.7321}}]}}\n",
            tick * 250_000,
        )
    }

    #[test]
    fn accepts_a_complete_v3_stream_with_samples() {
        let stream = format!(
            concat!(
                "{{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v3\",\"t_us\":0}}\n",
                "{s0}",
                "{{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"tid\":0,\
                 \"t_us\":1,\"dur_us\":5}}\n",
                "{s1}",
                "{{\"ev\":\"run_end\",\"t_us\":9}}\n",
            ),
            s0 = sample_line(0, 100),
            s1 = sample_line(1, 250),
        );
        assert_eq!(check_events(&stream).unwrap(), 5);
    }

    #[test]
    fn sample_contract_is_enforced() {
        let wrap = |middle: &str| {
            format!(
                "{{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v3\",\"t_us\":0}}\n\
                 {middle}{{\"ev\":\"run_end\",\"t_us\":9}}\n"
            )
        };

        // A sample in a v2 stream is mixed-schema.
        let in_v2 = format!(
            "{{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}}\n{}\
             {{\"ev\":\"run_end\",\"t_us\":9}}\n",
            sample_line(0, 100),
        );
        let err = check_events(&in_v2).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("mixed-schema"), "{err}");

        // The payload must declare the sample schema this checker knows.
        let bad_schema = sample_line(0, 100).replace("mlpa-sample-v1", "mlpa-sample-v9");
        let err = check_events(&wrap(&bad_schema)).unwrap_err();
        assert!(err.contains("unknown sample schema `mlpa-sample-v9`"), "{err}");

        // Ticks must strictly increase.
        let stuck = format!("{}{}", sample_line(3, 100), sample_line(3, 200));
        let err = check_events(&wrap(&stuck)).unwrap_err();
        assert!(err.starts_with("line 3:") && err.contains("tick"), "{err}");

        // Counter totals never decrease between samples.
        let shrinking = format!("{}{}", sample_line(0, 500), sample_line(1, 400));
        let err = check_events(&wrap(&shrinking)).unwrap_err();
        assert!(err.starts_with("line 3:") && err.contains("decreased between samples"), "{err}");
    }

    #[test]
    fn rejects_mixed_schema_streams_with_line_numbers() {
        // v2 event kind in a v1 stream.
        let hist_in_v1 = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"hist\",\"t_us\":1,\"name\":\"h\",\"unit\":\"n\",\"count\":1,\"sum\":1,\
             \"min\":1,\"max\":1,\"p50\":1,\"p90\":1,\"p99\":1}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(hist_in_v1).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("mixed-schema"), "{err}");

        // v2 field on a v1 stream's span.
        let tid_in_v1 = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"tid\":0,\"t_us\":1,\
             \"dur_us\":5}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(tid_in_v1).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("mixed-schema"), "{err}");

        // v1 span (no tid) in a v2 stream.
        let v1_span_in_v2 = concat!(
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"t_us\":1,\"dur_us\":5}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let err = check_events(v1_span_in_v2).unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("tid"), "{err}");

        // Two concatenated runs of different generations.
        let concatenated = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"run_end\",\"t_us\":1}\n",
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
            "{\"ev\":\"run_end\",\"t_us\":1}\n",
        );
        let err = check_events(concatenated).unwrap_err();
        assert!(err.starts_with("line 3:") && err.contains("mixed-schema"), "{err}");

        // Unknown future schema.
        let unknown = "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v4\",\"t_us\":0}\n";
        assert!(check_events(unknown).unwrap_err().contains("unknown events schema"));
    }

    fn sample_report() -> mlpa_obs::Report {
        mlpa_obs::Report {
            wall_s: 1.0,
            phases: vec![mlpa_obs::PhaseStat {
                name: "core.profile".into(),
                count: 2,
                total_s: 0.5,
            }],
            workers: vec![mlpa_obs::WorkerStat {
                pool: "plan".into(),
                index: 0,
                busy_s: 0.4,
                wall_s: 0.5,
                jobs: 3,
                busy_fraction: 0.8,
            }],
            counters: REQUIRED_COUNTERS.iter().map(|n| (n.to_string(), 1)).collect(),
            gauges: vec![("sim.rob.occupancy".into(), 12)],
            histograms: vec![mlpa_obs::HistogramStat {
                name: "sim.rob.occupancy".into(),
                unit: "n".into(),
                count: 4,
                sum: 20,
                min: 2,
                max: 8,
                p50: 7,
                p90: 8,
                p99: 8,
            }],
            self_profile: None,
        }
    }

    fn base() -> ReportChecks {
        ReportChecks::default()
    }

    #[test]
    fn report_schema_is_enforced() {
        let mut report = sample_report();
        assert!(check_report(&report.to_json(), &base()).is_ok());
        report.counters.remove(0);
        let err = check_report(&report.to_json(), &base()).unwrap_err();
        assert!(err.contains("phase.kmeans.iterations"), "{err}");
    }

    #[test]
    fn report_histograms_are_validated() {
        let mut report = sample_report();
        report.histograms.clear();
        assert!(check_report(&report.to_json(), &base()).unwrap_err().contains("histograms"));
        let mut report = sample_report();
        report.histograms[0].p99 = 9; // outside [min, max]
        let err = check_report(&report.to_json(), &base()).unwrap_err();
        assert!(err.contains("p99"), "{err}");
    }

    #[test]
    fn report_self_profile_is_validated_when_present() {
        use mlpa_obs::selfprofile::{SelfProfile, SpanAgg, SpanEdge};
        let mut report = sample_report();
        report.self_profile = Some(SelfProfile {
            spans: vec![SpanAgg {
                name: "core.profile".into(),
                calls: 2,
                total_s: 0.5,
                self_s: 0.3,
                p50_us: 100,
                p99_us: 400,
            }],
            tree: vec![SpanEdge {
                parent: None,
                name: "core.profile".into(),
                calls: 2,
                total_s: 0.5,
            }],
            ..SelfProfile::default()
        });
        assert!(
            check_report(&report.to_json(), &base()).is_ok(),
            "{:?}",
            check_report(&report.to_json(), &base())
        );
        // A span whose self time exceeds its total is inconsistent.
        report.self_profile.as_mut().unwrap().spans[0].self_s = 0.9;
        let err = check_report(&report.to_json(), &base()).unwrap_err();
        assert!(err.contains("self_s"), "{err}");
    }

    #[test]
    fn report_attribution_section_is_validated_when_present() {
        let report = sample_report();
        let good = "[{\"benchmark\": \"eon\", \"phases\": [{\"cluster\": 0, \"weight\": 1.0, \
                    \"cpi_err_share\": -0.01}]}]";
        let doc = report.to_json_with(&[("attribution".to_string(), good.to_string())]);
        assert!(check_report(&doc, &base()).is_ok(), "{:?}", check_report(&doc, &base()));
        let bad = "[{\"phases\": []}]";
        let doc = report.to_json_with(&[("attribution".to_string(), bad.to_string())]);
        assert!(check_report(&doc, &base()).unwrap_err().contains("benchmark"));
    }

    #[test]
    fn require_zero_accepts_absent_or_zero_and_rejects_nonzero() {
        let mut report = sample_report();
        let checks = ReportChecks {
            require_zero: vec!["core.truth.passes".into(), "core.profile.base_passes".into()],
            ..ReportChecks::default()
        };
        // Absent counters pass.
        assert!(check_report(&report.to_json(), &checks).is_ok());
        // Present-but-zero passes.
        report.counters.push(("core.truth.passes".into(), 0));
        assert!(check_report(&report.to_json(), &checks).is_ok());
        // Nonzero fails with the counter named.
        report.counters.push(("core.profile.base_passes".into(), 3));
        let err = check_report(&report.to_json(), &checks).unwrap_err();
        assert!(err.contains("core.profile.base_passes") && err.contains("expected 0"), "{err}");
    }

    #[test]
    fn require_nonzero_demands_a_present_nonzero_counter() {
        let mut report = sample_report();
        let checks = ReportChecks {
            require_nonzero: vec!["core.profile.shard_resumes".into()],
            ..ReportChecks::default()
        };
        // Absent fails.
        let err = check_report(&report.to_json(), &checks).unwrap_err();
        assert!(err.contains("core.profile.shard_resumes") && err.contains("absent"), "{err}");
        // Present-but-zero fails.
        report.counters.push(("core.profile.shard_resumes".into(), 0));
        let err = check_report(&report.to_json(), &checks).unwrap_err();
        assert!(err.contains("expected nonzero"), "{err}");
        // Nonzero passes.
        report.counters.last_mut().unwrap().1 = 7;
        assert!(check_report(&report.to_json(), &checks).is_ok());
    }

    #[test]
    fn warm_cache_mode_waives_sim_requirements_and_gates_hit_rate() {
        // A fully warm run: no sim counters, no histograms, only cache
        // traffic. The base checks reject it; warm-cache mode accepts it
        // when the hit rate clears the bar.
        let mut report = sample_report();
        report.counters = vec![("core.cache.hits".into(), 19), ("core.cache.misses".into(), 1)];
        report.histograms.clear();
        assert!(check_report(&report.to_json(), &base()).is_err());
        let warm = ReportChecks { min_cache_hit_rate: Some(0.9), ..ReportChecks::default() };
        assert!(
            check_report(&report.to_json(), &warm).is_ok(),
            "{:?}",
            check_report(&report.to_json(), &warm)
        );

        // Too many misses: rejected with the measured rate.
        report.counters = vec![("core.cache.hits".into(), 1), ("core.cache.misses".into(), 1)];
        let err = check_report(&report.to_json(), &warm).unwrap_err();
        assert!(err.contains("hit rate") && err.contains("0.5"), "{err}");

        // No cache traffic at all: a warm-cache check must not pass
        // vacuously (0/0 is not a 100% hit rate).
        report.counters.clear();
        let err = check_report(&report.to_json(), &warm).unwrap_err();
        assert!(err.contains("cached at all"), "{err}");
    }

    fn scrape(insts: u64) -> String {
        format!(
            "# HELP mlpa_counter_sim_instructions_total Monotonic counter.\n\
             # TYPE mlpa_counter_sim_instructions_total counter\n\
             mlpa_counter_sim_instructions_total {insts}\n\
             # HELP mlpa_gauge_sim_rob_occupancy Last-write-wins gauge.\n\
             # TYPE mlpa_gauge_sim_rob_occupancy gauge\n\
             mlpa_gauge_sim_rob_occupancy 12\n"
        )
    }

    #[test]
    fn metrics_scrapes_must_parse_and_counters_must_grow() {
        assert_eq!(check_metrics(&scrape(100), None, &[]).unwrap(), 2);
        // Counters up or flat between scrapes: fine. Gauges may move
        // either way and are not compared.
        assert!(check_metrics(&scrape(250), Some(&scrape(100)), &[]).is_ok());
        assert!(check_metrics(&scrape(100), Some(&scrape(100)), &[]).is_ok());
        // A shrinking counter is a torn or restarted registry.
        let err = check_metrics(&scrape(100), Some(&scrape(250)), &[]).unwrap_err();
        assert!(err.contains("decreased between scrapes"), "{err}");
        // A malformed exposition is rejected outright.
        assert!(check_metrics("mlpa_counter_x_total 1\n", None, &[]).is_err());
    }

    #[test]
    fn counter_thresholds_accept_dotted_names() {
        let met = [("sim.instructions".to_string(), 100.0)];
        assert!(check_metrics(&scrape(100), None, &met).is_ok());
        let unmet = [("sim.instructions".to_string(), 101.0)];
        let err = check_metrics(&scrape(100), None, &unmet).unwrap_err();
        assert!(err.contains("at least 101"), "{err}");
        let missing = [("serve.inflight_dedup".to_string(), 1.0)];
        let err = check_metrics(&scrape(100), None, &missing).unwrap_err();
        assert!(err.contains("serve.inflight_dedup") && err.contains("missing"), "{err}");
    }

    #[test]
    fn status_body_is_validated() {
        let good = "{\"schema\":\"mlpa-status-v1\",\"phase\":\"benchmarks\",\
                    \"benchmarks_done\":1,\"benchmarks_total\":3,\"segment\":7,\
                    \"uptime_ticks\":12,\"rss_bytes\":1048576,\
                    \"gauges\":{\"bench.done\":1}}";
        assert!(check_status(good).is_ok(), "{:?}", check_status(good));
        let err = check_status(&good.replace("mlpa-status-v1", "mlpa-status-v9")).unwrap_err();
        assert!(err.contains("mlpa-status-v9"), "{err}");
        let err = check_status(&good.replace(",\"uptime_ticks\":12", "")).unwrap_err();
        assert!(err.contains("uptime_ticks"), "{err}");
    }
}
