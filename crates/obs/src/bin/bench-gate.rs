//! Machine-calibrated perf regression gate over `BENCH.json`
//! trajectories (sibling of `obs-check` / `obs-diff`; the CI
//! `perf-gate` job).
//!
//! Compares one candidate snapshot against one baseline snapshot on
//! **machine-normalized** ratios (`mean_ns / probe_ns`, both sides
//! divided by their own host's calibration probe), so a fast CI runner
//! gating against a baseline recorded on a slow dev box — or vice
//! versa — judges the *code*, not the machine. Thresholds are adaptive:
//! the tolerance band for each bench widens with the measured
//! calibration dispersion of both hosts and with the bench's own
//! min–max sample spread. One band over baseline warns; two bands fail
//! the gate (`mlpa_obs::calibrate::GateConfig`). Within-run derived
//! speedups (`speedups` in each snapshot) gate the same way in the
//! other direction: a speedup that shrank past the band is a
//! regression of the optimized path relative to its in-process
//! reference.
//!
//! Usage:
//!   `bench-gate <baseline.json> <candidate.json>
//!      [--base-label L] [--cand-label L]
//!      [--min-band R] [--warn-bands N] [--fail-bands N]
//!      [--min-gate-ns NS] [--inflate KEY=FACTOR] [--no-trajectory]`
//!
//! Snapshot selection defaults to the **last calibrated** snapshot in
//! each file (pre-v2 snapshots carry no calibration block and cannot be
//! gated); `--base-label` / `--cand-label` pin a specific one.
//!
//! `--inflate KEY=FACTOR` multiplies the candidate timings of every
//! bench whose `group` or `group/id` equals KEY before gating — the
//! planted-regression self-test: CI inflates one group by 1.5× and
//! asserts the gate fails, proving the gate can catch what it exists to
//! catch on the very host where it just passed.
//!
//! Exits 0 when the gate passes (including warnings), 1 on a failed
//! gate, 2 on usage or I/O errors.

use mlpa_obs::calibrate::{
    gate, parse_trajectory, trajectory_table, GateConfig, Snapshot, Verdict,
};
use mlpa_obs::json;
use std::process::ExitCode;

struct Options {
    baseline: String,
    candidate: String,
    base_label: Option<String>,
    cand_label: Option<String>,
    cfg: GateConfig,
    /// `(key, factor)` pairs applied to the candidate before gating.
    inflate: Vec<(String, f64)>,
    trajectory: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-gate <baseline.json> <candidate.json> [--base-label L] [--cand-label L]\n\
         \x20      [--min-band R] [--warn-bands N] [--fail-bands N] [--min-gate-ns NS]\n\
         \x20      [--inflate GROUP[/ID]=FACTOR] [--no-trajectory]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut paths: Vec<String> = Vec::new();
    let mut o = Options {
        baseline: String::new(),
        candidate: String::new(),
        base_label: None,
        cand_label: None,
        cfg: GateConfig::default(),
        inflate: Vec::new(),
        trajectory: true,
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--base-label" => o.base_label = Some(value("--base-label")?),
            "--cand-label" => o.cand_label = Some(value("--cand-label")?),
            "--min-band" => o.cfg.min_band = parse_num(&value("--min-band")?)?,
            "--warn-bands" => o.cfg.warn_bands = parse_num(&value("--warn-bands")?)?,
            "--fail-bands" => o.cfg.fail_bands = parse_num(&value("--fail-bands")?)?,
            "--min-gate-ns" => o.cfg.min_gate_ns = parse_num(&value("--min-gate-ns")?)?,
            "--inflate" => {
                let spec = value("--inflate")?;
                let (key, factor) = spec
                    .split_once('=')
                    .ok_or(format!("--inflate `{spec}`: expected KEY=FACTOR"))?;
                o.inflate.push((key.to_string(), parse_num(factor)?));
            }
            "--no-trajectory" => o.trajectory = false,
            _ if arg.starts_with("--") => return Err(format!("unknown option `{arg}`")),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        return Err(format!("expected 2 positional arguments, got {}", paths.len()));
    }
    o.candidate = paths.pop().expect("two paths");
    o.baseline = paths.pop().expect("one path");
    Ok(o)
}

fn parse_num(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|_| format!("`{s}` is not a number"))
}

fn load_snapshots(path: &str) -> Result<Vec<Snapshot>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    parse_trajectory(&doc).map_err(|e| format!("{path}: {e}"))
}

/// Pick the snapshot to gate: the labelled one, or the last snapshot
/// carrying a calibration block (the only kind the gate accepts).
fn select<'s>(
    snapshots: &'s [Snapshot],
    label: Option<&str>,
    role: &str,
    path: &str,
) -> Result<&'s Snapshot, String> {
    match label {
        Some(l) => snapshots
            .iter()
            .rfind(|s| s.label == l)
            .ok_or(format!("{role} snapshot `{l}` not found in {path}")),
        None => snapshots
            .iter()
            .rfind(|s| s.calibration.is_some())
            .ok_or(format!("{path} has no calibrated snapshot to use as {role}")),
    }
}

/// Apply `--inflate` factors: scale the matching benches' timings (and
/// stored normalized costs — they are timings in probe units).
fn inflate(snapshot: &mut Snapshot, rules: &[(String, f64)]) {
    for b in &mut snapshot.benches {
        for (key, factor) in rules {
            if *key == b.group || *key == b.key() {
                b.mean_ns *= factor;
                b.min_ns = b.min_ns.map(|v| v * factor);
                b.max_ns = b.max_ns.map(|v| v * factor);
                b.normalized = b.normalized.map(|v| v * factor);
            }
        }
    }
}

fn run(o: &Options) -> Result<Verdict, String> {
    let base_snaps = load_snapshots(&o.baseline)?;
    let cand_snaps = load_snapshots(&o.candidate)?;
    let base = select(&base_snaps, o.base_label.as_deref(), "baseline", &o.baseline)?;
    let mut cand = select(&cand_snaps, o.cand_label.as_deref(), "candidate", &o.candidate)?.clone();
    if !o.inflate.is_empty() {
        inflate(&mut cand, &o.inflate);
        for (key, factor) in &o.inflate {
            println!("inflated candidate `{key}` timings by {factor}x (planted regression)");
        }
    }

    for (role, snap) in [("baseline", base), ("candidate", &cand)] {
        if let Some(cal) = &snap.calibration {
            println!(
                "{role}: `{}` on {} (probe {:.2} ns/unit, dispersion {:.1}%, {} cpus)",
                snap.label,
                cal.fingerprint,
                cal.probe_ns,
                cal.dispersion * 100.0,
                cal.cpus
            );
        }
    }
    let report = gate(base, &cand, &o.cfg)?;
    println!("\n{}", report.table());
    for note in &report.notes {
        println!("note: {note}");
    }

    if o.trajectory {
        // The full per-group trajectory: every baseline-file snapshot
        // plus the gated candidate, normalized where calibrated.
        let mut all = base_snaps.clone();
        all.push(cand.clone());
        println!("\nper-group normalized trajectory (geomean of probe-unit costs):");
        println!("{}", trajectory_table(&all));
    }

    let (warns, fails) = report.rows.iter().fold((0usize, 0usize), |(w, f), r| match r.verdict {
        Verdict::Warn => (w + 1, f),
        Verdict::Fail => (w, f + 1),
        Verdict::Ok => (w, f),
    });
    match report.worst() {
        Verdict::Ok => println!("perf gate PASSED ({} metrics)", report.rows.len()),
        Verdict::Warn => {
            println!("perf gate PASSED with {warns} warning(s) — one dispersion band over baseline")
        }
        Verdict::Fail => println!("perf gate FAILED: {fails} metric(s) beyond two bands"),
    }
    Ok(report.worst())
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return usage();
        }
    };
    match run(&o) {
        Ok(Verdict::Fail) => ExitCode::from(1),
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
    }
}
