//! Convert an obs `events.jsonl` stream into Chrome `trace_event` JSON.
//!
//! The output loads in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: spans become complete (`"ph":"X"`) events on
//! per-thread tracks, worker guards name their tracks (`"ph":"M"`
//! `thread_name` metadata), log lines become instants (`"ph":"i"`), and
//! `counters` snapshots become counter tracks (`"ph":"C"`) carrying
//! per-level cache hit rates and instruction deltas.
//!
//! All stream generations convert: v2+ streams carry a `tid` per event;
//! v1 streams (no `tid`) collapse onto track 0. v3 streams additionally
//! carry the background sampler's `sample` events, which become counter
//! tracks for peak RSS and every live gauge.
//!
//! Usage: `mlpa-trace --events <events.jsonl> [--out <trace.json>]`
//! (stdout when `--out` is omitted).

use mlpa_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut events: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => events = args.next(),
            "--out" => out = args.next(),
            other => {
                eprintln!("mlpa-trace: unknown argument `{other}`");
                eprintln!("usage: mlpa-trace --events <events.jsonl> [--out <trace.json>]");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(events) = events else {
        eprintln!("mlpa-trace: missing --events <events.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&events) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mlpa-trace: {events}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match convert(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mlpa-trace: {events}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, trace) {
                eprintln!("mlpa-trace: {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("mlpa-trace: wrote {path}");
        }
        None => print!("{trace}"),
    }
    ExitCode::SUCCESS
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

/// `tid` if present (v2), else track 0 (v1 streams predate thread ids).
fn tid_of(v: &Value) -> f64 {
    v.get("tid").and_then(Value::as_f64).unwrap_or(0.0)
}

/// Cache levels for which hit-rate counter tracks are derived.
const CACHE_LEVELS: &[&str] = &["l1d", "l1i", "l2"];

/// Convert a JSONL event stream into a Chrome `trace_event` document.
fn convert(text: &str) -> Result<String, String> {
    let mut trace: Vec<Value> = Vec::new();
    trace.push(obj(vec![
        ("name", Value::Str("process_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::Num(1.0)),
        ("args", obj(vec![("name", Value::Str("mlpa".into()))])),
    ]));
    // Counter snapshots arrive as cumulative totals; hit rates are
    // derived from deltas between successive snapshots.
    let mut prev_counters: BTreeMap<String, f64> = BTreeMap::new();
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ev = str_field(&v, "ev").map_err(|e| format!("line {lineno}: {e}"))?;
        let converted = match ev.as_str() {
            "span" => span_event(&v),
            "worker" => worker_events(&v),
            "log" => log_event(&v),
            "counters" => counter_events(&v, &mut prev_counters),
            "sample" => sample_events(&v),
            "run_start" | "run_end" => marker_event(&v, &ev),
            // Histogram summaries have no timeline extent; RUN_REPORT
            // carries them.
            "hist" => Ok(Vec::new()),
            other => Err(format!("unknown event kind `{other}`")),
        };
        let converted = converted.map_err(|e| format!("line {lineno}: {e}"))?;
        trace.extend(converted);
        count += 1;
    }
    if count == 0 {
        return Err("empty event stream".into());
    }
    let doc =
        obj(vec![("traceEvents", Value::Arr(trace)), ("displayTimeUnit", Value::Str("ms".into()))]);
    Ok(format!("{doc}\n"))
}

/// A closed span becomes one complete (`"ph":"X"`) slice.
fn span_event(v: &Value) -> Result<Vec<Value>, String> {
    let mut args = vec![("id", Value::Num(num_field(v, "id")?))];
    if let Some(p) = v.get("parent") {
        if p.as_f64().is_some() {
            args.push(("parent", p.clone()));
        }
    }
    if let Some(label) = v.get("label").and_then(Value::as_str) {
        args.push(("label", Value::Str(label.to_string())));
    }
    Ok(vec![obj(vec![
        ("name", Value::Str(str_field(v, "name")?)),
        ("cat", Value::Str("span".into())),
        ("ph", Value::Str("X".into())),
        ("ts", Value::Num(num_field(v, "t_us")?)),
        ("dur", Value::Num(num_field(v, "dur_us")?)),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(tid_of(v))),
        ("args", obj(args)),
    ])])
}

/// A worker guard names its thread's track after the pool and index.
fn worker_events(v: &Value) -> Result<Vec<Value>, String> {
    let pool = str_field(v, "pool")?;
    let index = num_field(v, "index")?;
    Ok(vec![obj(vec![
        ("name", Value::Str("thread_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(tid_of(v))),
        ("args", obj(vec![("name", Value::Str(format!("{pool} worker {index}")))])),
    ])])
}

/// A log line becomes a thread-scoped instant.
fn log_event(v: &Value) -> Result<Vec<Value>, String> {
    Ok(vec![obj(vec![
        ("name", Value::Str(format!("[{}] {}", str_field(v, "target")?, str_field(v, "msg")?))),
        ("cat", Value::Str(str_field(v, "level")?)),
        ("ph", Value::Str("i".into())),
        ("ts", Value::Num(num_field(v, "t_us")?)),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(tid_of(v))),
        ("s", Value::Str("t".into())),
    ])])
}

/// `run_start` / `run_end` become process-scoped instants.
fn marker_event(v: &Value, name: &str) -> Result<Vec<Value>, String> {
    Ok(vec![obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("i".into())),
        ("ts", Value::Num(num_field(v, "t_us")?)),
        ("pid", Value::Num(1.0)),
        ("s", Value::Str("p".into())),
    ])])
}

/// A cumulative counter snapshot becomes counter (`"ph":"C"`) samples:
/// per-level cache hit rates over the window since the last snapshot,
/// and the instructions executed in that window.
fn counter_events(v: &Value, prev: &mut BTreeMap<String, f64>) -> Result<Vec<Value>, String> {
    let ts = num_field(v, "t_us")?;
    let snapshot =
        v.get("counters").and_then(Value::as_obj).ok_or("missing object field `counters`")?;
    let cur: BTreeMap<String, f64> =
        snapshot.iter().filter_map(|(k, val)| val.as_f64().map(|n| (k.clone(), n))).collect();
    let delta =
        |key: &str| cur.get(key).copied().unwrap_or(0.0) - prev.get(key).copied().unwrap_or(0.0);
    let mut out = Vec::new();
    let mut rates = Vec::new();
    for level in CACHE_LEVELS {
        let hits = delta(&format!("sim.{level}.hits"));
        let misses = delta(&format!("sim.{level}.misses"));
        if hits + misses > 0.0 {
            // Two-decimal percent keeps the track readable in Perfetto.
            let rate = (10_000.0 * hits / (hits + misses)).round() / 100.0;
            rates.push((*level, Value::Num(rate)));
        }
    }
    if !rates.is_empty() {
        out.push(obj(vec![
            ("name", Value::Str("cache hit rate %".into())),
            ("ph", Value::Str("C".into())),
            ("ts", Value::Num(ts)),
            ("pid", Value::Num(1.0)),
            ("args", obj(rates)),
        ]));
    }
    let insts = delta("sim.instructions");
    if insts > 0.0 {
        out.push(obj(vec![
            ("name", Value::Str("instructions".into())),
            ("ph", Value::Str("C".into())),
            ("ts", Value::Num(ts)),
            ("pid", Value::Num(1.0)),
            ("args", obj(vec![("simulated", Value::Num(insts))])),
        ]));
    }
    *prev = cur;
    Ok(out)
}

/// A sampler tick becomes counter tracks: peak RSS in MiB plus one
/// track per live gauge. The cumulative counters a sample also carries
/// are skipped here — the periodic `counters` snapshots already feed
/// the derived hit-rate and instruction tracks.
fn sample_events(v: &Value) -> Result<Vec<Value>, String> {
    let ts = num_field(v, "t_us")?;
    let rss = num_field(v, "rss_bytes")?;
    let mut out = vec![obj(vec![
        ("name", Value::Str("peak RSS MiB".into())),
        ("ph", Value::Str("C".into())),
        ("ts", Value::Num(ts)),
        ("pid", Value::Num(1.0)),
        ("args", obj(vec![("rss", Value::Num((rss / (1024.0 * 1024.0) * 100.0).round() / 100.0))])),
    ])];
    if let Some(gauges) = v.get("gauges").and_then(Value::as_obj) {
        for (name, value) in gauges {
            if let Some(n) = value.as_f64() {
                out.push(obj(vec![
                    ("name", Value::Str(format!("gauge {name}"))),
                    ("ph", Value::Str("C".into())),
                    ("ts", Value::Num(ts)),
                    ("pid", Value::Num(1.0)),
                    ("args", obj(vec![("value", Value::Num(n))])),
                ]));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = concat!(
        "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v2\",\"t_us\":0}\n",
        "{\"ev\":\"span\",\"name\":\"sim.detailed\",\"id\":1,\"parent\":null,\"tid\":2,\
         \"t_us\":10,\"dur_us\":50,\"label\":\"eon\"}\n",
        "{\"ev\":\"span\",\"name\":\"core.profile\",\"id\":2,\"parent\":1,\"tid\":2,\
         \"t_us\":20,\"dur_us\":5}\n",
        "{\"ev\":\"log\",\"t_us\":30,\"tid\":0,\"level\":\"info\",\"target\":\"suite\",\
         \"msg\":\"done \\\"x\\\"\"}\n",
        "{\"ev\":\"counters\",\"t_us\":40,\"counters\":{\"sim.l1d.hits\":90,\
         \"sim.l1d.misses\":10,\"sim.instructions\":100}}\n",
        "{\"ev\":\"counters\",\"t_us\":50,\"counters\":{\"sim.l1d.hits\":140,\
         \"sim.l1d.misses\":60,\"sim.instructions\":300}}\n",
        "{\"ev\":\"worker\",\"pool\":\"plan\",\"index\":3,\"tid\":2,\"busy_us\":3,\
         \"wall_us\":4,\"jobs\":1}\n",
        "{\"ev\":\"hist\",\"t_us\":60,\"name\":\"h\",\"unit\":\"n\",\"count\":1,\"sum\":1,\
         \"min\":1,\"max\":1,\"p50\":1,\"p90\":1,\"p99\":1}\n",
        "{\"ev\":\"run_end\",\"t_us\":99}\n",
    );

    fn events(doc: &Value) -> Vec<Value> {
        doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec()
    }

    #[test]
    fn output_is_valid_chrome_trace_json() {
        let doc = json::parse(&convert(STREAM).unwrap()).unwrap();
        let evs = events(&doc);
        assert!(!evs.is_empty());
        for e in &evs {
            let ph = e.get("ph").and_then(Value::as_str).unwrap();
            assert!(["X", "M", "i", "C"].contains(&ph), "unexpected ph {ph}");
            if ph != "M" {
                assert!(e.get("ts").and_then(Value::as_f64).is_some(), "{e}");
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(Value::as_f64).is_some(), "{e}");
            }
            assert!(e.get("pid").and_then(Value::as_f64).is_some(), "{e}");
        }
    }

    #[test]
    fn spans_map_to_complete_events_on_their_thread_track() {
        let doc = json::parse(&convert(STREAM).unwrap()).unwrap();
        let span = events(&doc)
            .into_iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("sim.detailed"))
            .unwrap();
        assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Value::as_f64), Some(10.0));
        assert_eq!(span.get("dur").and_then(Value::as_f64), Some(50.0));
        assert_eq!(span.get("tid").and_then(Value::as_f64), Some(2.0));
        let args = span.get("args").unwrap();
        assert_eq!(args.get("label").and_then(Value::as_str), Some("eon"));
    }

    #[test]
    fn workers_name_their_tracks() {
        let doc = json::parse(&convert(STREAM).unwrap()).unwrap();
        let meta = events(&doc)
            .into_iter()
            .find(|e| {
                e.get("name").and_then(Value::as_str) == Some("thread_name")
                    && e.get("tid").and_then(Value::as_f64) == Some(2.0)
            })
            .unwrap();
        let name = meta.get("args").unwrap().get("name").and_then(Value::as_str).unwrap();
        assert_eq!(name, "plan worker 3");
    }

    #[test]
    fn counter_snapshots_become_hit_rate_tracks() {
        let doc = json::parse(&convert(STREAM).unwrap()).unwrap();
        let tracks: Vec<Value> = events(&doc)
            .into_iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("cache hit rate %"))
            .collect();
        assert_eq!(tracks.len(), 2);
        // First snapshot: 90/(90+10) against the zero baseline.
        assert_eq!(tracks[0].get("args").unwrap().get("l1d").and_then(Value::as_f64), Some(90.0));
        // Second: delta 50 hits / (50 + 50) misses = 50%.
        assert_eq!(tracks[1].get("args").unwrap().get("l1d").and_then(Value::as_f64), Some(50.0));
        let insts: Vec<f64> = events(&doc)
            .into_iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("instructions"))
            .map(|e| e.get("args").unwrap().get("simulated").and_then(Value::as_f64).unwrap())
            .collect();
        assert_eq!(insts, vec![100.0, 200.0]);
    }

    #[test]
    fn sample_events_become_rss_and_gauge_tracks() {
        let v3 = concat!(
            "{\"ev\":\"run_start\",\"schema\":\"mlpa-events-v3\",\"t_us\":0}\n",
            "{\"ev\":\"sample\",\"schema\":\"mlpa-sample-v1\",\"tick\":0,\"t_us\":5,\
             \"rss_bytes\":3145728,\"counters\":{\"sim.instructions\":10},\
             \"gauges\":{\"sim.rob.occupancy\":14},\"pools\":[]}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let doc = json::parse(&convert(v3).unwrap()).unwrap();
        let rss = events(&doc)
            .into_iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("peak RSS MiB"))
            .unwrap();
        assert_eq!(rss.get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(rss.get("args").unwrap().get("rss").and_then(Value::as_f64), Some(3.0));
        let gauge = events(&doc)
            .into_iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("gauge sim.rob.occupancy"))
            .unwrap();
        assert_eq!(gauge.get("args").unwrap().get("value").and_then(Value::as_f64), Some(14.0));
    }

    #[test]
    fn v1_streams_collapse_to_track_zero() {
        let v1 = concat!(
            "{\"ev\":\"run_start\",\"t_us\":0}\n",
            "{\"ev\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"t_us\":1,\"dur_us\":5}\n",
            "{\"ev\":\"run_end\",\"t_us\":9}\n",
        );
        let doc = json::parse(&convert(v1).unwrap()).unwrap();
        let span = events(&doc)
            .into_iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("a"))
            .unwrap();
        assert_eq!(span.get("tid").and_then(Value::as_f64), Some(0.0));
    }

    #[test]
    fn rejects_malformed_streams() {
        assert!(convert("").is_err());
        assert!(convert("not json\n").is_err());
        assert!(convert("{\"ev\":\"mystery\",\"t_us\":0}\n").is_err());
    }
}
