//! Cross-run regression gate: diff two `RUN_REPORT.json` or
//! `BENCH_*.json` documents with per-metric tolerances.
//!
//! The two inputs must carry the same `schema`. What is compared
//! depends on whether a metric is *deterministic* (identical across
//! machines for the same inputs) or *timing* (machine-dependent):
//!
//! * **Deterministic** — counter totals, span counts, value-histogram
//!   (`"n"`-unit) contents, per-pool worker row counts and job totals,
//!   bench params: compared exactly by default; `--tol-counter` /
//!   `--tol-hist` relax them to a relative tolerance.
//! * **Timing** — `wall_s`, span `total_s`, worker `busy_s`,
//!   `"us"`-unit histogram quantiles, bench `mean_ns`, speedups:
//!   ignored by default (CI machines vary too much for a hard gate);
//!   `--tol-time` / `--tol-bench` turn on a one-sided check that fails
//!   only when the current run is slower than baseline by more than the
//!   given relative fraction (for speedups: smaller).
//!
//! A metric present in the baseline but missing from the current run is
//! always a failure; new metrics in the current run are reported but
//! pass (instrumentation is expected to grow).
//!
//! Usage:
//!   `obs-diff <baseline.json> <current.json> [--tol-time R]
//!    [--tol-counter R] [--tol-hist R] [--tol-bench R]
//!    [--only SECTION[,SECTION]...]`
//!
//! `--only` restricts a run-report diff to the named sections (`phases`,
//! `counters`, `workers`, `histograms`, `gauges`, `self_profile`,
//! `attribution`, `wall`). The CI
//! cache-smoke job uses `--only attribution` to compare a cold run
//! against a warm `--resume` run: the accuracy outputs must be
//! identical, while phase/counter/worker traffic legitimately collapses
//! to almost nothing when every artifact is served from the cache.
//!
//! Exits 0 when the runs match, 1 on any regression, 2 on usage or I/O
//! errors.

use mlpa_obs::json::{self, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

/// Run-report sections `--only` can select.
const SECTIONS: &[&str] = &[
    "phases",
    "counters",
    "workers",
    "histograms",
    "gauges",
    "self_profile",
    "attribution",
    "wall",
];

/// Relative tolerances; `None` means "skip the timing check" for the
/// timing knobs and "exact" for the deterministic knobs.
struct Tolerances {
    time: Option<f64>,
    counter: f64,
    hist: f64,
    bench: Option<f64>,
    /// Restrict a run-report diff to these sections (`None` = all).
    only: Option<BTreeSet<String>>,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances { time: None, counter: 0.0, hist: 0.0, bench: None, only: None }
    }
}

impl Tolerances {
    /// Should this run-report section be compared?
    fn wants(&self, section: &str) -> bool {
        self.only.as_ref().is_none_or(|s| s.contains(section))
    }
}

/// Accumulates mismatches (fail the gate) and notes (informational).
#[derive(Debug, Default)]
struct Diff {
    failures: Vec<String>,
    notes: Vec<String>,
}

impl Diff {
    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }

    fn note(&mut self, msg: String) {
        self.notes.push(msg);
    }

    /// Two-sided relative comparison for deterministic metrics (tol 0
    /// means exact).
    fn check_rel(&mut self, what: &str, base: f64, cur: f64, tol: f64) {
        let scale = base.abs().max(1e-12);
        if (cur - base).abs() > tol * scale + 1e-12 {
            self.fail(format!("{what}: baseline {base}, current {cur} (tol {tol})"));
        }
    }

    /// One-sided timing comparison: only "current worse than baseline
    /// by more than `tol`" fails. `worse_is_larger` is true for
    /// durations and false for speedups/rates.
    fn check_one_sided(
        &mut self,
        what: &str,
        base: f64,
        cur: f64,
        tol: f64,
        worse_is_larger: bool,
    ) {
        let limit = if worse_is_larger { base * (1.0 + tol) } else { base * (1.0 - tol) };
        let regressed = if worse_is_larger { cur > limit } else { cur < limit };
        if regressed {
            self.fail(format!("{what}: baseline {base}, current {cur} (one-sided tol {tol})"));
        }
    }
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut tol = Tolerances::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let tol_arg = |args: &mut dyn Iterator<Item = String>| -> Option<f64> {
            args.next().and_then(|v| v.parse::<f64>().ok()).filter(|v| *v >= 0.0)
        };
        match arg.as_str() {
            "--tol-time" => match tol_arg(&mut args) {
                Some(v) => tol.time = Some(v),
                None => return usage("--tol-time needs a non-negative number"),
            },
            "--tol-counter" => match tol_arg(&mut args) {
                Some(v) => tol.counter = v,
                None => return usage("--tol-counter needs a non-negative number"),
            },
            "--tol-hist" => match tol_arg(&mut args) {
                Some(v) => tol.hist = v,
                None => return usage("--tol-hist needs a non-negative number"),
            },
            "--tol-bench" => match tol_arg(&mut args) {
                Some(v) => tol.bench = Some(v),
                None => return usage("--tol-bench needs a non-negative number"),
            },
            "--only" => {
                let Some(list) = args.next() else {
                    return usage("--only needs a comma-separated section list");
                };
                let set = tol.only.get_or_insert_with(BTreeSet::new);
                for section in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    if !SECTIONS.contains(&section) {
                        return usage(&format!(
                            "unknown section `{section}` (expected one of: {})",
                            SECTIONS.join(", ")
                        ));
                    }
                    set.insert(section.to_string());
                }
                if set.is_empty() {
                    return usage("--only needs at least one section");
                }
            }
            other if other.starts_with("--") => {
                return usage(&format!("unknown argument `{other}`"));
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return usage("expected exactly two input files");
    }
    let mut docs = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-diff: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match json::parse(&text) {
            Ok(v) => docs.push(v),
            Err(e) => {
                eprintln!("obs-diff: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let (base, cur) = (&docs[0], &docs[1]);
    match diff(base, cur, &tol) {
        Err(e) => {
            eprintln!("obs-diff: {e}");
            ExitCode::from(2)
        }
        Ok(diff) => {
            for note in &diff.notes {
                println!("obs-diff: note: {note}");
            }
            if diff.failures.is_empty() {
                println!("obs-diff: {} vs {}: OK", paths[0], paths[1]);
                ExitCode::SUCCESS
            } else {
                for f in &diff.failures {
                    eprintln!("obs-diff: FAIL: {f}");
                }
                eprintln!(
                    "obs-diff: {} vs {}: {} regression(s)",
                    paths[0],
                    paths[1],
                    diff.failures.len()
                );
                ExitCode::FAILURE
            }
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("obs-diff: {msg}");
    eprintln!(
        "usage: obs-diff <baseline.json> <current.json> [--tol-time R] [--tol-counter R] \
         [--tol-hist R] [--tol-bench R] [--only SECTION[,SECTION]...]"
    );
    ExitCode::from(2)
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing numeric field `{key}`"))
}

/// Dispatch on the (matching) schema of the two documents.
fn diff(base: &Value, cur: &Value, tol: &Tolerances) -> Result<Diff, String> {
    let base_schema = str_field(base, "schema")?;
    let cur_schema = str_field(cur, "schema")?;
    if base_schema != cur_schema {
        return Err(format!("schema mismatch: baseline `{base_schema}`, current `{cur_schema}`"));
    }
    match base_schema.as_str() {
        "mlpa-run-report-v1" | "mlpa-run-report-v2" | "mlpa-run-report-v3" => {
            diff_run_report(base, cur, tol)
        }
        "mlpa-bench-phase-v1"
        | "mlpa-bench-phase-v2"
        | "mlpa-bench-suite-v1"
        | "mlpa-bench-suite-v2" => diff_bench(base, cur, tol),
        other => Err(format!("unsupported schema `{other}`")),
    }
}

/// Index an array of objects by a string key.
fn by_key<'a>(
    v: &'a Value,
    section: &str,
    key: &str,
) -> Result<BTreeMap<String, &'a Value>, String> {
    let arr = v
        .get(section)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing array field `{section}`"))?;
    let mut map = BTreeMap::new();
    for item in arr {
        map.insert(str_field(item, key).map_err(|e| format!("{section}: {e}"))?, item);
    }
    Ok(map)
}

/// Walk baseline/current maps in parallel: every baseline entry must
/// exist in current (missing = fail); entries only in current are
/// noted. `f` compares the matched pairs.
fn matched<'a>(
    diff: &mut Diff,
    section: &str,
    base: &BTreeMap<String, &'a Value>,
    cur: &BTreeMap<String, &'a Value>,
    mut f: impl FnMut(&mut Diff, &str, &'a Value, &'a Value) -> Result<(), String>,
) -> Result<(), String> {
    for (name, b) in base {
        match cur.get(name) {
            None => diff.fail(format!("{section} `{name}` missing from current run")),
            Some(c) => f(diff, name, b, c)?,
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name) {
            diff.note(format!("{section} `{name}` is new in current run"));
        }
    }
    Ok(())
}

fn diff_run_report(base: &Value, cur: &Value, tol: &Tolerances) -> Result<Diff, String> {
    let mut diff = Diff::default();

    // Spans: the set of phases and how often each ran is deterministic;
    // total_s is timing.
    if tol.wants("phases") {
        let (b, c) = (by_key(base, "phases", "name")?, by_key(cur, "phases", "name")?);
        matched(&mut diff, "phase", &b, &c, |diff, name, b, c| {
            diff.check_rel(
                &format!("phase `{name}` count"),
                num_field(b, "count")?,
                num_field(c, "count")?,
                0.0,
            );
            if let Some(t) = tol.time {
                diff.check_one_sided(
                    &format!("phase `{name}` total_s"),
                    num_field(b, "total_s")?,
                    num_field(c, "total_s")?,
                    t,
                    true,
                );
            }
            Ok(())
        })?;
    }

    // Counters are exact totals.
    if tol.wants("counters") {
        let (b, c) = (by_key(base, "counters", "name")?, by_key(cur, "counters", "name")?);
        matched(&mut diff, "counter", &b, &c, |diff, name, b, c| {
            diff.check_rel(
                &format!("counter `{name}`"),
                num_field(b, "value")?,
                num_field(c, "value")?,
                tol.counter,
            );
            Ok(())
        })?;
    }

    // Workers: per-pool row counts and job totals are deterministic
    // (which worker got which job is not — dynamic claiming).
    if tol.wants("workers") {
        for (label, v) in [("baseline", base), ("current", cur)] {
            if v.get("workers").and_then(Value::as_arr).is_none() {
                return Err(format!("{label}: missing array field `workers`"));
            }
        }
        let pool_totals = |v: &Value| -> Result<BTreeMap<String, (u64, u64)>, String> {
            let mut map: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for w in v.get("workers").and_then(Value::as_arr).expect("checked") {
                let pool = str_field(w, "pool")?;
                let jobs = num_field(w, "jobs")? as u64;
                let entry = map.entry(pool).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += jobs;
            }
            Ok(map)
        };
        let (b, c) = (pool_totals(base)?, pool_totals(cur)?);
        for (pool, (rows, jobs)) in &b {
            match c.get(pool) {
                None => diff.fail(format!("worker pool `{pool}` missing from current run")),
                Some((crows, cjobs)) => {
                    if crows != rows {
                        diff.fail(format!(
                            "worker pool `{pool}`: baseline {rows} workers, current {crows}"
                        ));
                    }
                    if cjobs != jobs {
                        diff.fail(format!(
                            "worker pool `{pool}`: baseline {jobs} jobs, current {cjobs}"
                        ));
                    }
                }
            }
        }
        for pool in c.keys() {
            if !b.contains_key(pool) {
                diff.note(format!("worker pool `{pool}` is new in current run"));
            }
        }
    }

    // Histograms (v2 only): value histograms are deterministic, time
    // histograms are gated one-sided like other timings.
    if tol.wants("histograms")
        && (base.get("histograms").is_some() || cur.get("histograms").is_some())
    {
        let (b, c) = (by_key(base, "histograms", "name")?, by_key(cur, "histograms", "name")?);
        matched(&mut diff, "histogram", &b, &c, |diff, name, b, c| {
            let unit = str_field(b, "unit")?;
            diff.check_rel(
                &format!("histogram `{name}` count"),
                num_field(b, "count")?,
                num_field(c, "count")?,
                tol.hist,
            );
            if unit == "us" {
                if let Some(t) = tol.time {
                    for k in ["p50", "p90", "p99"] {
                        diff.check_one_sided(
                            &format!("histogram `{name}` {k}"),
                            num_field(b, k)?,
                            num_field(c, k)?,
                            t,
                            true,
                        );
                    }
                }
            } else {
                for k in ["sum", "min", "max", "p50", "p90", "p99"] {
                    diff.check_rel(
                        &format!("histogram `{name}` {k}"),
                        num_field(b, k)?,
                        num_field(c, k)?,
                        tol.hist,
                    );
                }
            }
            Ok(())
        })?;
    }

    // Gauges (v3 only): which gauges exist is deterministic for a fixed
    // configuration; their last-written values depend on scheduling and
    // are never compared.
    if tol.wants("gauges") && (base.get("gauges").is_some() || cur.get("gauges").is_some()) {
        let (b, c) = (by_key(base, "gauges", "name")?, by_key(cur, "gauges", "name")?);
        matched(&mut diff, "gauge", &b, &c, |_diff, _name, _b, _c| Ok(()))?;
    }

    // Self-profile (v3 only): span names, call counts, and call-tree
    // edges are deterministic; all wall times, pool utilization, and the
    // critical-path summary are timing and never compared.
    if tol.wants("self_profile") {
        let non_null = |v: &Value| match v.get("self_profile") {
            None | Some(Value::Null) => None,
            Some(sp) => Some(sp.clone()),
        };
        match (non_null(base), non_null(cur)) {
            (Some(b), Some(c)) => diff_self_profile(&mut diff, &b, &c)?,
            (Some(_), None) => diff.fail("self_profile section missing from current run".into()),
            (None, Some(_)) => diff.note("self_profile section is new in current run".into()),
            (None, None) => {}
        }
    }

    // Accuracy attribution: per-phase weights and error shares are
    // deterministic model outputs, so any drift is a real change.
    if tol.wants("attribution") {
        if let Some(b_attr) = base.get("attribution") {
            match cur.get("attribution") {
                None => diff.fail("attribution section missing from current run".into()),
                Some(c_attr) => diff_attribution(&mut diff, b_attr, c_attr, tol)?,
            }
        }
    }

    if tol.wants("wall") {
        if let Some(t) = tol.time {
            diff.check_one_sided(
                "wall_s",
                num_field(base, "wall_s")?,
                num_field(cur, "wall_s")?,
                t,
                true,
            );
        }
    }
    Ok(diff)
}

/// Compare the structural half of two self-profile sections: spans by
/// name (call counts exact) and tree edges by `(parent, name)` (call
/// counts exact). Timing fields are deliberately not read.
fn diff_self_profile(diff: &mut Diff, base: &Value, cur: &Value) -> Result<(), String> {
    let (b, c) = (by_key(base, "spans", "name")?, by_key(cur, "spans", "name")?);
    matched(diff, "self_profile span", &b, &c, |diff, name, b, c| {
        diff.check_rel(
            &format!("self_profile span `{name}` calls"),
            num_field(b, "calls")?,
            num_field(c, "calls")?,
            0.0,
        );
        Ok(())
    })?;

    let edges = |v: &Value| -> Result<BTreeMap<String, f64>, String> {
        let arr = v.get("tree").and_then(Value::as_arr).ok_or("missing array field `tree`")?;
        let mut map = BTreeMap::new();
        for e in arr {
            let parent = match e.get("parent") {
                Some(Value::Str(s)) => s.clone(),
                _ => "(root)".to_string(),
            };
            map.insert(format!("{parent} -> {}", str_field(e, "name")?), num_field(e, "calls")?);
        }
        Ok(map)
    };
    let (b, c) = (edges(base)?, edges(cur)?);
    for (edge, calls) in &b {
        match c.get(edge) {
            None => diff.fail(format!("self_profile edge `{edge}` missing from current run")),
            Some(ccalls) if ccalls != calls => diff.fail(format!(
                "self_profile edge `{edge}`: baseline {calls} calls, current {ccalls}"
            )),
            Some(_) => {}
        }
    }
    for edge in c.keys() {
        if !b.contains_key(edge) {
            diff.note(format!("self_profile edge `{edge}` is new in current run"));
        }
    }
    Ok(())
}

fn diff_attribution(
    diff: &mut Diff,
    base: &Value,
    cur: &Value,
    tol: &Tolerances,
) -> Result<(), String> {
    let index = |v: &Value| -> Result<BTreeMap<String, Value>, String> {
        let arr = v.as_arr().ok_or("`attribution` is not an array")?;
        let mut map = BTreeMap::new();
        for a in arr {
            map.insert(str_field(a, "benchmark")?, a.clone());
        }
        Ok(map)
    };
    let (b, c) = (index(base)?, index(cur)?);
    for (bench, ba) in &b {
        let Some(ca) = c.get(bench) else {
            diff.fail(format!("attribution for `{bench}` missing from current run"));
            continue;
        };
        let phases = |v: &Value| -> Result<BTreeMap<u64, Value>, String> {
            let arr = v
                .get("phases")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("attribution `{bench}`: missing `phases`"))?;
            let mut map = BTreeMap::new();
            for p in arr {
                map.insert(num_field(p, "cluster")? as u64, p.clone());
            }
            Ok(map)
        };
        let (bp, cp) = (phases(ba)?, phases(ca)?);
        if bp.len() != cp.len() {
            diff.fail(format!(
                "attribution `{bench}`: baseline {} phases, current {}",
                bp.len(),
                cp.len()
            ));
            continue;
        }
        for (cluster, bph) in &bp {
            let Some(cph) = cp.get(cluster) else {
                diff.fail(format!("attribution `{bench}` cluster {cluster} missing"));
                continue;
            };
            for k in ["weight", "cpi_err_share"] {
                diff.check_rel(
                    &format!("attribution `{bench}` cluster {cluster} {k}"),
                    num_field(bph, k)?,
                    num_field(cph, k)?,
                    tol.counter,
                );
            }
        }
    }
    Ok(())
}

fn diff_bench(base: &Value, cur: &Value, tol: &Tolerances) -> Result<Diff, String> {
    let mut diff = Diff::default();

    // Bench parameters define the workload; a mismatch means the two
    // files measure different things.
    if let (Some(bp), Some(cp)) = (base.get("params"), cur.get("params")) {
        let (bp, cp) = (
            bp.as_obj().ok_or("`params` is not an object")?,
            cp.as_obj().ok_or("`params` is not an object")?,
        );
        let keys: BTreeSet<&String> = bp.keys().chain(cp.keys()).collect();
        for key in keys {
            match (bp.get(key).and_then(Value::as_f64), cp.get(key).and_then(Value::as_f64)) {
                (Some(b), Some(c)) if b == c => {}
                (b, c) => diff.fail(format!("param `{key}`: baseline {b:?}, current {c:?}")),
            }
        }
    }

    // mean_ns is timing: one-sided, default tolerance 0.5 (CI noise on
    // shared runners is large; the gate catches order-of-magnitude
    // regressions, the tracked baseline file catches drift).
    let bench_tol = tol.bench.unwrap_or(0.5);
    fn index(v: &Value) -> Result<BTreeMap<String, &Value>, String> {
        let arr =
            v.get("benches").and_then(Value::as_arr).ok_or("missing array field `benches`")?;
        let mut map = BTreeMap::new();
        for b in arr {
            map.insert(format!("{}/{}", str_field(b, "group")?, str_field(b, "id")?), b);
        }
        Ok(map)
    }
    let (b, c) = (index(base)?, index(cur)?);
    matched(&mut diff, "bench", &b, &c, |diff, name, b, c| {
        diff.check_one_sided(
            &format!("bench `{name}` mean_ns"),
            num_field(b, "mean_ns")?,
            num_field(c, "mean_ns")?,
            bench_tol,
            true,
        );
        Ok(())
    })?;

    // Speedups regress downward.
    if let (Some(bs), Some(cs)) = (base.get("speedups"), cur.get("speedups")) {
        let bs = bs.as_obj().ok_or("`speedups` is not an object")?;
        for (name, bv) in bs {
            let Some(b) = bv.as_f64() else { continue };
            match cs.get(name).and_then(Value::as_f64) {
                None => diff.fail(format!("speedup `{name}` missing from current run")),
                Some(c) => {
                    diff.check_one_sided(&format!("speedup `{name}`"), b, c, bench_tol, false)
                }
            }
        }
    }

    if let Some(t) = tol.time {
        if let (Ok(b), Ok(c)) = (num_field(base, "suite_wall_s"), num_field(cur, "suite_wall_s")) {
            diff.check_one_sided("suite_wall_s", b, c, t, true);
        }
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(counter: u64, hist_sum: u64) -> String {
        let r = mlpa_obs::Report {
            wall_s: 2.0,
            phases: vec![mlpa_obs::PhaseStat {
                name: "sim.detailed".into(),
                count: 4,
                total_s: 1.0,
            }],
            workers: vec![
                mlpa_obs::WorkerStat {
                    pool: "plan".into(),
                    index: 0,
                    busy_s: 0.5,
                    wall_s: 0.6,
                    jobs: 3,
                    busy_fraction: 0.83,
                },
                mlpa_obs::WorkerStat {
                    pool: "plan".into(),
                    index: 1,
                    busy_s: 0.4,
                    wall_s: 0.6,
                    jobs: 1,
                    busy_fraction: 0.67,
                },
            ],
            counters: vec![("sim.instructions".into(), counter)],
            gauges: vec![("sim.rob.occupancy".into(), 12)],
            histograms: vec![mlpa_obs::HistogramStat {
                name: "sim.rob.occupancy".into(),
                unit: "n".into(),
                count: 8,
                sum: hist_sum,
                min: 1,
                max: 16,
                p50: 7,
                p90: 15,
                p99: 16,
            }],
            self_profile: Some(mlpa_obs::selfprofile::SelfProfile {
                spans: vec![mlpa_obs::selfprofile::SpanAgg {
                    name: "sim.detailed".into(),
                    calls: 4,
                    total_s: 1.0,
                    self_s: 1.0,
                    p50_us: 100,
                    p99_us: 900,
                }],
                tree: vec![mlpa_obs::selfprofile::SpanEdge {
                    parent: None,
                    name: "sim.detailed".into(),
                    calls: 4,
                    total_s: 1.0,
                }],
                ..mlpa_obs::selfprofile::SelfProfile::default()
            }),
        };
        r.to_json()
    }

    fn run(base: &str, cur: &str, tol: &Tolerances) -> Diff {
        diff(&json::parse(base).unwrap(), &json::parse(cur).unwrap(), tol).unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let d = run(&report(100, 40), &report(100, 40), &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
    }

    #[test]
    fn perturbed_counter_fails() {
        let d = run(&report(100, 40), &report(101, 40), &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("sim.instructions")), "{:?}", d.failures);
    }

    #[test]
    fn counter_tolerance_passes_at_edge_and_fails_past_it() {
        let tol = Tolerances { counter: 0.01, ..Tolerances::default() };
        // 1% of 100 = 1: exactly at the edge passes...
        let d = run(&report(100, 40), &report(101, 40), &tol);
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        // ...2 is past it.
        let d = run(&report(100, 40), &report(102, 40), &tol);
        assert!(!d.failures.is_empty());
    }

    #[test]
    fn value_histogram_contents_are_gated() {
        let d = run(&report(100, 40), &report(100, 41), &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("sim.rob.occupancy")), "{:?}", d.failures);
    }

    #[test]
    fn missing_metric_fails_and_new_metric_notes() {
        let two = report(100, 40);
        let one = two.replacen(
            "{\"name\": \"sim.instructions\", \"value\": 100}",
            "{\"name\": \"sim.instructions\", \"value\": 100}, \
             {\"name\": \"sim.cycles\", \"value\": 7}",
            1,
        );
        // Baseline has the extra counter, current doesn't: fail.
        let d = run(&one, &two, &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("sim.cycles")), "{:?}", d.failures);
        // Current has the extra counter: pass with a note.
        let d = run(&two, &one, &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        assert!(d.notes.iter().any(|n| n.contains("sim.cycles")), "{:?}", d.notes);
    }

    #[test]
    fn timing_is_ignored_unless_tol_time_given() {
        let slow = report(100, 40).replace("\"wall_s\": 2.000000", "\"wall_s\": 9.000000");
        let d = run(&report(100, 40), &slow, &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        let tol = Tolerances { time: Some(0.5), ..Tolerances::default() };
        let d = run(&report(100, 40), &slow, &tol);
        assert!(d.failures.iter().any(|f| f.contains("wall_s")), "{:?}", d.failures);
        // One-sided: a faster current run always passes.
        let d = run(&slow, &report(100, 40), &tol);
        assert!(d.failures.is_empty(), "{:?}", d.failures);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let v1 = report(100, 40).replacen("mlpa-run-report-v3", "mlpa-run-report-v1", 1);
        let err = diff(
            &json::parse(&v1).unwrap(),
            &json::parse(&report(100, 40)).unwrap(),
            &Tolerances::default(),
        )
        .unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    fn only(sections: &[&str]) -> Tolerances {
        Tolerances {
            only: Some(sections.iter().map(|s| s.to_string()).collect()),
            ..Tolerances::default()
        }
    }

    #[test]
    fn only_filter_skips_unselected_sections() {
        // A counter drift fails a full diff but passes one restricted to
        // the attribution section...
        let d = run(&report(100, 40), &report(101, 40), &Tolerances::default());
        assert!(!d.failures.is_empty());
        let d = run(&report(100, 40), &report(101, 40), &only(&["attribution"]));
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        // ...and still fails one that selects counters.
        let d = run(&report(100, 40), &report(101, 40), &only(&["counters", "attribution"]));
        assert!(d.failures.iter().any(|f| f.contains("sim.instructions")), "{:?}", d.failures);
    }

    #[test]
    fn only_attribution_still_gates_attribution_drift() {
        let attr = |share: f64| {
            format!(
                "[{{\"benchmark\": \"eon\", \"phases\": [{{\"cluster\": 0, \"weight\": 1.0, \
                 \"cpi_err_share\": {share}}}]}}]"
            )
        };
        let with_attr = |counter: u64, share: f64| {
            report(counter, 40).replacen(
                "\"histograms\":",
                &format!("\"attribution\": {}, \"histograms\":", attr(share)),
                1,
            )
        };
        // Counter noise between a cold and a warm run is ignored; an
        // attribution change is not.
        let d = run(&with_attr(100, 0.5), &with_attr(3, 0.5), &only(&["attribution"]));
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        let d = run(&with_attr(100, 0.5), &with_attr(3, 0.6), &only(&["attribution"]));
        assert!(d.failures.iter().any(|f| f.contains("cpi_err_share")), "{:?}", d.failures);
        // Attribution missing from current is a failure even filtered.
        let d = run(&with_attr(100, 0.5), &report(3, 40), &only(&["attribution"]));
        assert!(d.failures.iter().any(|f| f.contains("attribution")), "{:?}", d.failures);
    }

    #[test]
    fn gauge_names_are_gated_but_values_are_not() {
        // A gauge value is whatever was last written: drift passes.
        let moved = report(100, 40).replacen(
            "{\"name\": \"sim.rob.occupancy\", \"value\": 12}",
            "{\"name\": \"sim.rob.occupancy\", \"value\": 97}",
            1,
        );
        let d = run(&report(100, 40), &moved, &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        // A gauge disappearing means instrumentation was lost: fail.
        let gone = report(100, 40).replacen(
            "{\"name\": \"sim.rob.occupancy\", \"value\": 12}",
            "{\"name\": \"sim.lsq.occupancy\", \"value\": 12}",
            1,
        );
        let d = run(&report(100, 40), &gone, &Tolerances::default());
        assert!(
            d.failures.iter().any(|f| f.contains("gauge `sim.rob.occupancy`")),
            "{:?}",
            d.failures
        );
        assert!(d.notes.iter().any(|n| n.contains("sim.lsq.occupancy")), "{:?}", d.notes);
    }

    #[test]
    fn self_profile_structure_is_gated_but_timing_is_not() {
        // Wall-time drift in the profile passes even at zero tolerance.
        let slower = report(100, 40).replace("\"self_s\": 1.000000", "\"self_s\": 0.250000");
        let d = run(&report(100, 40), &slower, &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        // A changed call count is a structural regression.
        let fewer =
            report(100, 40).replace("\"calls\": 4, \"total_s\"", "\"calls\": 3, \"total_s\"");
        let d = run(&report(100, 40), &fewer, &Tolerances::default());
        assert!(
            d.failures.iter().any(|f| f.contains("self_profile") && f.contains("calls")),
            "{:?}",
            d.failures
        );
        // A re-parented edge is a structural regression too.
        let reparented = report(100, 40).replace(
            "{\"parent\": null, \"name\": \"sim.detailed\"",
            "{\"parent\": \"core.profile\", \"name\": \"sim.detailed\"",
        );
        let d = run(&report(100, 40), &reparented, &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("self_profile edge")), "{:?}", d.failures);
    }

    fn bench_doc(mean: u64, speedup: f64) -> String {
        format!(
            "{{\"schema\": \"mlpa-bench-phase-v1\", \
              \"params\": {{\"dim\": 15}}, \
              \"benches\": [{{\"group\": \"kmeans\", \"id\": \"k10\", \"mean_ns\": {mean}, \
              \"min_ns\": 1, \"max_ns\": 9, \"samples\": 10}}], \
              \"speedups\": {{\"kmeans\": {speedup}}}}}"
        )
    }

    #[test]
    fn bench_mean_gates_one_sided_with_default_slack() {
        // 40% slower: inside the default 0.5 tolerance.
        let d = run(&bench_doc(1000, 2.0), &bench_doc(1400, 2.0), &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
        // 60% slower: out.
        let d = run(&bench_doc(1000, 2.0), &bench_doc(1600, 2.0), &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("mean_ns")), "{:?}", d.failures);
        // Much faster: fine (one-sided).
        let d = run(&bench_doc(1000, 2.0), &bench_doc(10, 2.0), &Tolerances::default());
        assert!(d.failures.is_empty(), "{:?}", d.failures);
    }

    #[test]
    fn bench_speedup_regression_fails() {
        let d = run(&bench_doc(1000, 2.0), &bench_doc(1000, 0.9), &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("speedup")), "{:?}", d.failures);
    }

    #[test]
    fn bench_param_mismatch_fails() {
        let other = bench_doc(1000, 2.0).replacen("\"dim\": 15", "\"dim\": 16", 1);
        let d = run(&bench_doc(1000, 2.0), &other, &Tolerances::default());
        assert!(d.failures.iter().any(|f| f.contains("param `dim`")), "{:?}", d.failures);
    }
}
