//! Span-aggregated self-profile: turns the span stream into a
//! per-span-name call tree with self/total wall time, plus worker-pool
//! utilization and a critical-path summary for the plan-execution pool.
//!
//! Everything here is pure aggregation over snapshots the live `imp`
//! module hands over at [`crate::report`] time, so it compiles (and is
//! testable) without the `enabled` feature.
//!
//! Determinism contract: span *names*, *call counts*, and tree edges
//! (parent, name, calls) are deterministic for a fixed configuration
//! and are gated by `obs-diff`; every timing field (`total_s`,
//! `self_s`, quantiles, pool utilization) is machine-dependent and is
//! never gated.

use crate::{json, HistogramStat, PhaseStat, WorkerStat};

/// One raw call-tree edge as recorded by the span guards: span `name`
/// was opened `calls` times with `parent` on top of the per-thread span
/// stack (`None` = stack was empty, i.e. a root — which includes every
/// span opened on a scoped worker thread).
#[derive(Debug, Clone, PartialEq)]
pub struct RawEdge {
    /// Child span name.
    pub name: String,
    /// Parent span name, `None` for roots.
    pub parent: Option<String>,
    /// Number of openings with this parent.
    pub calls: u64,
    /// Total wall seconds accumulated under this edge.
    pub total_s: f64,
}

/// Per-span-name aggregation: how often it ran, where its time went.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAgg {
    /// Span name (e.g. `core.plan.execute`).
    pub name: String,
    /// Number of openings.
    pub calls: u64,
    /// Total wall seconds across all openings (children included).
    pub total_s: f64,
    /// Wall seconds not attributed to any child span opened *on the
    /// same thread*: `total_s` minus the child-edge totals, clamped at
    /// 0. Work fanned out to scoped workers shows up in the workers'
    /// own root spans, not here.
    pub self_s: f64,
    /// Median single-call duration in microseconds (from the `span.*`
    /// log2 histogram, so within 2x).
    pub p50_us: u64,
    /// 99th-percentile single-call duration in microseconds.
    pub p99_us: u64,
}

/// One call-tree edge in the report, aggregated by (parent, name).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEdge {
    /// Parent span name; `None` for roots.
    pub parent: Option<String>,
    /// Child span name.
    pub name: String,
    /// Number of openings under this parent.
    pub calls: u64,
    /// Total wall seconds under this edge.
    pub total_s: f64,
}

/// Lifetime utilization of one worker pool (all guards, dropped or
/// not, aggregated from the completed [`WorkerStat`] rows).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSummary {
    /// Pool label (e.g. `plan`, `suite`).
    pub pool: String,
    /// Number of worker guards that completed.
    pub workers: u64,
    /// Total jobs executed across the pool.
    pub jobs: u64,
    /// Seconds spent inside `busy` closures, summed over workers.
    pub busy_s: f64,
    /// Guard lifetime seconds, summed over workers.
    pub wall_s: f64,
    /// `busy_s / wall_s` (0 for an empty pool).
    pub utilization: f64,
}

/// Critical-path summary for the plan-execution pool: how close the
/// parallel section is to its load-balance limit.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Pool the summary describes (`plan`).
    pub pool: String,
    /// Number of worker guards that completed.
    pub workers: u64,
    /// Longest single-worker guard lifetime — the parallel section's
    /// wall clock is at least this.
    pub wall_s: f64,
    /// Busiest worker's busy seconds: the critical path. Total busy
    /// work cannot finish faster than this without re-balancing jobs.
    pub max_busy_s: f64,
    /// Mean busy seconds per worker.
    pub mean_busy_s: f64,
    /// `max_busy_s / mean_busy_s` — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// `sum(busy_s) / max_busy_s` — the speedup this job distribution
    /// admits no matter how many workers are added.
    pub speedup_limit: f64,
}

/// The self-profile block embedded in `RUN_REPORT.json` (v3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelfProfile {
    /// Per-span-name aggregation, sorted by name.
    pub spans: Vec<SpanAgg>,
    /// Call-tree edges, roots first, then sorted by (parent, name).
    pub tree: Vec<SpanEdge>,
    /// Per-pool utilization, sorted by pool name.
    pub pools: Vec<PoolSummary>,
    /// Critical-path summary for the `plan` pool, when it ran.
    pub critical_path: Option<CriticalPath>,
}

/// The worker pool whose critical path is summarized: the
/// plan-execution pool driven by `execute_plan_jobs`.
pub const CRITICAL_POOL: &str = "plan";

/// Aggregate report snapshots into a [`SelfProfile`]. Pure function of
/// its inputs; panics never, even on inconsistent snapshots (a span
/// with no histogram, an edge with no phase) — missing pieces degrade
/// to zeros.
pub fn build(
    phases: &[PhaseStat],
    histograms: &[HistogramStat],
    workers: &[WorkerStat],
    edges: &[RawEdge],
) -> SelfProfile {
    let spans = phases
        .iter()
        .map(|p| {
            let child_s: f64 = edges
                .iter()
                .filter(|e| e.parent.as_deref() == Some(p.name.as_str()))
                .map(|e| e.total_s)
                .sum();
            let hist_name = format!("span.{}", p.name);
            let (p50_us, p99_us) =
                histograms.iter().find(|h| h.name == hist_name).map_or((0, 0), |h| (h.p50, h.p99));
            SpanAgg {
                name: p.name.clone(),
                calls: p.count,
                total_s: p.total_s,
                self_s: (p.total_s - child_s).max(0.0),
                p50_us,
                p99_us,
            }
        })
        .collect();

    let mut tree: Vec<SpanEdge> = edges
        .iter()
        .map(|e| SpanEdge {
            parent: e.parent.clone(),
            name: e.name.clone(),
            calls: e.calls,
            total_s: e.total_s,
        })
        .collect();
    tree.sort_by(|a, b| {
        let ka = (a.parent.is_some(), a.parent.as_deref(), a.name.as_str());
        let kb = (b.parent.is_some(), b.parent.as_deref(), b.name.as_str());
        ka.cmp(&kb)
    });

    let mut pools: Vec<PoolSummary> = Vec::new();
    for w in workers {
        match pools.iter_mut().find(|p| p.pool == w.pool) {
            Some(p) => {
                p.workers += 1;
                p.jobs += w.jobs;
                p.busy_s += w.busy_s;
                p.wall_s += w.wall_s;
            }
            None => pools.push(PoolSummary {
                pool: w.pool.clone(),
                workers: 1,
                jobs: w.jobs,
                busy_s: w.busy_s,
                wall_s: w.wall_s,
                utilization: 0.0,
            }),
        }
    }
    for p in &mut pools {
        p.utilization = if p.wall_s > 0.0 { p.busy_s / p.wall_s } else { 0.0 };
    }
    pools.sort_by(|a, b| a.pool.cmp(&b.pool));

    let plan: Vec<&WorkerStat> = workers.iter().filter(|w| w.pool == CRITICAL_POOL).collect();
    let critical_path = if plan.is_empty() {
        None
    } else {
        let n = plan.len() as u64;
        let sum_busy: f64 = plan.iter().map(|w| w.busy_s).sum();
        let max_busy = plan.iter().map(|w| w.busy_s).fold(0.0_f64, f64::max);
        let wall = plan.iter().map(|w| w.wall_s).fold(0.0_f64, f64::max);
        let mean_busy = sum_busy / n as f64;
        Some(CriticalPath {
            pool: CRITICAL_POOL.to_string(),
            workers: n,
            wall_s: wall,
            max_busy_s: max_busy,
            mean_busy_s: mean_busy,
            imbalance: if mean_busy > 0.0 { max_busy / mean_busy } else { 0.0 },
            speedup_limit: if max_busy > 0.0 { sum_busy / max_busy } else { 0.0 },
        })
    };

    SelfProfile { spans, tree, pools, critical_path }
}

impl SelfProfile {
    /// Render as a JSON object. `indent` is the column (in spaces) the
    /// opening brace sits at; nested lines indent two further columns,
    /// matching [`crate::Report::to_json_with`]'s hand-built style.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let p1 = " ".repeat(indent + 2);
        let p2 = " ".repeat(indent + 4);
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");

        out.push_str(&format!("{p1}\"spans\": [\n"));
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i + 1 < self.spans.len() { "," } else { "" };
            out.push_str(&format!(
                "{p2}{{\"name\": \"{}\", \"calls\": {}, \"total_s\": {:.6}, \
                 \"self_s\": {:.6}, \"p50_us\": {}, \"p99_us\": {}}}{sep}\n",
                json::escape(&s.name),
                s.calls,
                s.total_s,
                s.self_s,
                s.p50_us,
                s.p99_us,
            ));
        }
        out.push_str(&format!("{p1}],\n"));

        out.push_str(&format!("{p1}\"tree\": [\n"));
        for (i, e) in self.tree.iter().enumerate() {
            let sep = if i + 1 < self.tree.len() { "," } else { "" };
            let parent = e
                .parent
                .as_deref()
                .map(|p| format!("\"{}\"", json::escape(p)))
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "{p2}{{\"parent\": {parent}, \"name\": \"{}\", \"calls\": {}, \
                 \"total_s\": {:.6}}}{sep}\n",
                json::escape(&e.name),
                e.calls,
                e.total_s,
            ));
        }
        out.push_str(&format!("{p1}],\n"));

        out.push_str(&format!("{p1}\"pools\": [\n"));
        for (i, p) in self.pools.iter().enumerate() {
            let sep = if i + 1 < self.pools.len() { "," } else { "" };
            out.push_str(&format!(
                "{p2}{{\"pool\": \"{}\", \"workers\": {}, \"jobs\": {}, \"busy_s\": {:.6}, \
                 \"wall_s\": {:.6}, \"utilization\": {:.4}}}{sep}\n",
                json::escape(&p.pool),
                p.workers,
                p.jobs,
                p.busy_s,
                p.wall_s,
                p.utilization,
            ));
        }
        out.push_str(&format!("{p1}],\n"));

        match &self.critical_path {
            None => out.push_str(&format!("{p1}\"critical_path\": null\n")),
            Some(c) => out.push_str(&format!(
                "{p1}\"critical_path\": {{\"pool\": \"{}\", \"workers\": {}, \
                 \"wall_s\": {:.6}, \"max_busy_s\": {:.6}, \"mean_busy_s\": {:.6}, \
                 \"imbalance\": {:.4}, \"speedup_limit\": {:.4}}}\n",
                json::escape(&c.pool),
                c.workers,
                c.wall_s,
                c.max_busy_s,
                c.mean_busy_s,
                c.imbalance,
                c.speedup_limit,
            )),
        }

        out.push_str(&format!("{pad}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, count: u64, total_s: f64) -> PhaseStat {
        PhaseStat { name: name.to_string(), count, total_s }
    }

    fn edge(name: &str, parent: Option<&str>, calls: u64, total_s: f64) -> RawEdge {
        RawEdge { name: name.to_string(), parent: parent.map(String::from), calls, total_s }
    }

    fn worker(pool: &str, busy_s: f64, wall_s: f64, jobs: u64) -> WorkerStat {
        WorkerStat {
            pool: pool.to_string(),
            index: 0,
            busy_s,
            wall_s,
            jobs,
            busy_fraction: if wall_s > 0.0 { busy_s / wall_s } else { 0.0 },
        }
    }

    #[test]
    fn self_time_subtracts_child_edges() {
        let phases = vec![phase("child", 4, 0.6), phase("root", 1, 1.0)];
        let edges = vec![edge("root", None, 1, 1.0), edge("child", Some("root"), 4, 0.6)];
        let sp = build(&phases, &[], &[], &edges);
        let root = sp.spans.iter().find(|s| s.name == "root").unwrap();
        assert!((root.self_s - 0.4).abs() < 1e-9, "self_s = {}", root.self_s);
        let child = sp.spans.iter().find(|s| s.name == "child").unwrap();
        assert!((child.self_s - 0.6).abs() < 1e-9);
        // Tree sorts roots first.
        assert_eq!(sp.tree[0].parent, None);
        assert_eq!(sp.tree[0].name, "root");
    }

    #[test]
    fn self_time_clamps_at_zero() {
        // Timer jitter can make child totals exceed the parent's.
        let phases = vec![phase("root", 1, 1.0)];
        let edges = vec![edge("child", Some("root"), 1, 1.1)];
        let sp = build(&phases, &[], &[], &edges);
        assert_eq!(sp.spans[0].self_s, 0.0);
    }

    #[test]
    fn critical_path_summarizes_plan_pool() {
        let workers = vec![
            worker("plan", 2.0, 2.5, 10),
            worker("plan", 1.0, 2.5, 5),
            worker("suite", 3.0, 3.0, 2),
        ];
        let sp = build(&[], &[], &workers, &[]);
        let cp = sp.critical_path.expect("plan pool ran");
        assert_eq!(cp.workers, 2);
        assert!((cp.max_busy_s - 2.0).abs() < 1e-9);
        assert!((cp.mean_busy_s - 1.5).abs() < 1e-9);
        assert!((cp.speedup_limit - 1.5).abs() < 1e-9);
        assert!((cp.imbalance - 2.0 / 1.5).abs() < 1e-9);
        assert_eq!(sp.pools.len(), 2);
        let plan = &sp.pools[0];
        assert_eq!((plan.pool.as_str(), plan.workers, plan.jobs), ("plan", 2, 15));
    }

    #[test]
    fn no_plan_pool_means_no_critical_path() {
        let sp = build(&[], &[], &[worker("suite", 1.0, 1.0, 1)], &[]);
        assert!(sp.critical_path.is_none());
    }

    #[test]
    fn to_json_parses_and_round_trips_structure() {
        let phases = vec![phase("a", 2, 0.5)];
        let edges = vec![edge("a", None, 2, 0.5)];
        let workers = vec![worker("plan", 1.0, 2.0, 3)];
        let sp = build(&phases, &[], &workers, &edges);
        let text = sp.to_json(0);
        let v = crate::json::parse(&text).expect("self-profile JSON parses");
        let spans = v.get("spans").and_then(|s| s.as_arr()).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("name").and_then(|n| n.as_str()), Some("a"));
        assert_eq!(spans[0].get("calls").and_then(|c| c.as_f64()), Some(2.0));
        let tree = v.get("tree").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(tree[0].get("parent"), Some(&crate::json::Value::Null));
        assert!(v.get("critical_path").unwrap().get("pool").is_some());
    }
}
