//! A minimal, dependency-free JSON reader and string escaper.
//!
//! The workspace builds offline (no serde), but the observability layer
//! both *emits* JSON (the JSONL event sink, `RUN_REPORT.json`) and
//! *validates* it (the `obs-check` schema checker, the sink tests), so
//! a small recursive-descent parser lives here. It accepts exactly the
//! JSON this repo produces: objects, arrays, strings with `\uXXXX` and
//! the standard short escapes, finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted map) — fine for
    /// validation, which is all this parser is for.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for non-objects or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Arr(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escape a string for embedding in a JSON string literal (everything
/// the sink writes goes through this).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error,
/// including trailing garbage after the top-level value.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text.parse().map_err(|_| format!("bad number `{text}` at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at byte {start}"));
        }
        Ok(Value::Num(n))
    }

    /// Read the four hex digits of a `\uXXXX` escape.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            match code {
                                // High surrogate: must be followed by a
                                // `\uXXXX` low surrogate; the pair
                                // decodes to one astral code point.
                                0xd800..=0xdbff => {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(format!(
                                            "unpaired high surrogate at byte {}",
                                            self.pos
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(format!(
                                            "expected low surrogate at byte {}",
                                            self.pos
                                        ));
                                    }
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(char::from_u32(c).expect("valid astral code point"));
                                }
                                0xdc00..=0xdfff => {
                                    return Err(format!(
                                        "unpaired low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                _ => out.push(char::from_u32(code).expect("non-surrogate BMP")),
                            }
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "nul", "{\"a\":+}", "\u{1}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::Str(nasty.into()));
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"k": [1, "two", null], "n": 3.5}"#;
        let v = parse(doc).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_chars() {
        // U+1D11E MUSICAL SYMBOL G CLEF = \uD834\uDD1E.
        assert_eq!(parse("\"\\uD834\\uDD1E\"").unwrap(), Value::Str("\u{1d11e}".into()));
        // Lowercase hex and a surrounding context.
        assert_eq!(parse("\"x\\ud83d\\ude00y\"").unwrap(), Value::Str("x\u{1f600}y".into()));
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        for bad in [
            "\"\\uD834\"",        // lone high surrogate
            "\"\\uD834x\"",       // high surrogate, no escape next
            "\"\\uD834\\n\"",     // high surrogate, wrong escape
            "\"\\uD834\\uD834\"", // high followed by high
            "\"\\uDD1E\"",        // lone low surrogate
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// SplitMix64 (offline-build stand-in for a property-test RNG).
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Property: any string the sink can emit — including control
    /// characters, quotes, backslashes, and astral-plane characters —
    /// survives an escape -> parse round trip unchanged, both bare and
    /// embedded as an object value.
    #[test]
    fn escape_round_trip_property() {
        let mut rng = SplitMix64(0x0b5e_c0de);
        for case in 0..500 {
            let len = (rng.next() % 24) as usize;
            let mut s = String::new();
            for _ in 0..len {
                let c = match rng.next() % 5 {
                    // Control characters (the \uXXXX escape path).
                    0 => char::from_u32((rng.next() % 0x20) as u32).unwrap(),
                    // Characters with dedicated short escapes.
                    1 => *['"', '\\', '\n', '\r', '\t'].get((rng.next() % 5) as usize).unwrap(),
                    // Printable ASCII.
                    2 => char::from_u32(0x20 + (rng.next() % 0x5f) as u32).unwrap(),
                    // BMP, skipping the surrogate range.
                    3 => {
                        let v = (rng.next() % (0x1_0000 - 0x800)) as u32;
                        char::from_u32(if v >= 0xd800 { v + 0x800 } else { v }).unwrap()
                    }
                    // Astral plane (encoded as surrogate pairs by JSON
                    // emitters that escape non-ASCII).
                    _ => char::from_u32(0x1_0000 + (rng.next() % 0xf_0000) as u32).unwrap(),
                };
                s.push(c);
            }
            let doc = format!("\"{}\"", escape(&s));
            assert_eq!(parse(&doc).unwrap(), Value::Str(s.clone()), "case {case}: {doc:?}");
            let obj = format!("{{\"k\": \"{}\"}}", escape(&s));
            assert_eq!(
                parse(&obj).unwrap().get("k").and_then(Value::as_str),
                Some(s.as_str()),
                "case {case} (object): {obj:?}"
            );
        }
    }

    /// Astral characters written as explicit surrogate-pair escapes
    /// parse to the same string as the raw UTF-8 form.
    #[test]
    fn surrogate_escape_matches_raw_utf8() {
        let mut rng = SplitMix64(0x5eed);
        for _ in 0..200 {
            let c = char::from_u32(0x1_0000 + (rng.next() % 0xf_0000) as u32).unwrap();
            let mut units = [0u16; 2];
            let units = c.encode_utf16(&mut units);
            let escaped: String = units.iter().map(|u| format!("\\u{u:04x}")).collect();
            let doc = format!("\"{escaped}\"");
            assert_eq!(parse(&doc).unwrap(), Value::Str(c.to_string()), "{doc:?}");
        }
    }
}
