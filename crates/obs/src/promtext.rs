//! Prometheus text exposition (version 0.0.4) for the `/metrics`
//! endpoint, plus a strict parser used by `obs-check` and CI to
//! validate scrapes and check counter monotonicity between them.
//!
//! Mapping of obs instruments onto Prometheus families:
//!
//! * counters -> `mlpa_counter_<name>_total` (`counter`)
//! * gauges   -> `mlpa_gauge_<name>` (`gauge`)
//! * log2 histograms -> `mlpa_hist_<name>_<unit>` (`histogram`) with
//!   cumulative `le` buckets at the log2 upper bounds
//!   ([`crate::hist_bucket_max`]): only non-empty buckets are emitted
//!   (Prometheus permits sparse bucket layouts) plus the mandatory
//!   `le="+Inf"`, `_sum`, and `_count` series.
//!
//! The kind prefix is load-bearing, not decoration: a counter named
//! `sim.rob.occupancy_sum` would otherwise collide with the `_sum`
//! series synthesized for a histogram named `sim.rob.occupancy`.

use crate::HistBuckets;
use std::collections::BTreeMap;

/// Sanitize an obs instrument name into a Prometheus metric-name
/// fragment: every character outside `[a-zA-Z0-9_]` becomes `_`.
pub fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

fn push_family(out: &mut String, name: &str, kind: &str, source: &str) {
    out.push_str(&format!("# HELP {name} mlpa {kind} {source}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Render one exposition document from explicit snapshots. Pure
/// function — [`render_current`] feeds it the live registries.
pub fn render(
    counters: &[(String, u64)],
    gauges: &[(String, u64)],
    hists: &[HistBuckets],
) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in counters {
        let metric = format!("mlpa_counter_{}_total", sanitize(name));
        push_family(&mut out, &metric, "counter", name);
        out.push_str(&format!("{metric} {value}\n"));
    }
    for (name, value) in gauges {
        let metric = format!("mlpa_gauge_{}", sanitize(name));
        push_family(&mut out, &metric, "gauge", name);
        out.push_str(&format!("{metric} {value}\n"));
    }
    for h in hists {
        let metric = format!("mlpa_hist_{}_{}", sanitize(&h.name), sanitize(&h.unit));
        push_family(&mut out, &metric, "histogram", &h.name);
        let mut cum = 0u64;
        for (b, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push_str(&format!(
                "{metric}_bucket{{le=\"{}\"}} {cum}\n",
                crate::hist_bucket_max(b)
            ));
        }
        out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{metric}_sum {}\n", h.sum));
        out.push_str(&format!("{metric}_count {}\n", h.count));
    }
    out
}

/// Render the current state of the live registries (empty document
/// when the `enabled` feature is compiled out or nothing is
/// registered).
pub fn render_current() -> String {
    render(&crate::counters_snapshot(), &crate::gauges_snapshot(), &crate::hist_buckets_snapshot())
}

/// A parsed, validated exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Declared family -> type (`counter`, `gauge`, `histogram`, ...).
    pub types: BTreeMap<String, String>,
    /// Every sample, keyed by its full series name (including the
    /// `{le="..."}` label clause for buckets), in document order of
    /// first appearance is not preserved — keys are sorted.
    pub samples: BTreeMap<String, f64>,
}

impl Exposition {
    /// The values of all `counter`-typed samples, keyed by family
    /// name — the series CI compares across scrapes for monotonicity.
    pub fn counter_values(&self) -> BTreeMap<&str, f64> {
        self.samples
            .iter()
            .filter(|(name, _)| {
                self.types.get(name.as_str()).map(String::as_str) == Some("counter")
            })
            .map(|(name, v)| (name.as_str(), *v))
            .collect()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Split a sample series into (bare metric name, label clause).
fn split_series(series: &str) -> Result<(&str, Option<&str>), String> {
    match series.find('{') {
        None => Ok((series, None)),
        Some(open) => {
            let close =
                series.rfind('}').ok_or_else(|| format!("unterminated labels in `{series}`"))?;
            if close != series.len() - 1 {
                return Err(format!("trailing characters after labels in `{series}`"));
            }
            Ok((&series[..open], Some(&series[open + 1..close])))
        }
    }
}

/// The family a sample belongs to, given the declared types: its own
/// name, or for histograms the name with `_bucket`/`_sum`/`_count`
/// stripped.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<(&'a str, String)> {
    if let Some(t) = types.get(name) {
        return Some((name, t.clone()));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram") {
                return Some((stem, "histogram".to_string()));
            }
        }
    }
    None
}

/// Strictly parse and validate an exposition document.
///
/// Enforced rules (a superset of what a Prometheus scraper requires):
/// every sample's family must be declared with `# TYPE` *before* the
/// sample; no duplicate `TYPE` lines or duplicate series; metric names
/// must be well-formed; values must parse as finite floats (`+Inf`
/// only on `le="+Inf"` bucket labels, not values); counter values must
/// be non-negative; histogram buckets must be cumulative
/// (non-decreasing in document order), end with `le="+Inf"`, and agree
/// with the `_count` series.
///
/// # Errors
///
/// Returns `Err` with the 1-based line number and reason for the first
/// violation.
pub fn check(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    // Per-histogram bucket state: family -> (last cumulative value,
    // saw +Inf, +Inf value).
    let mut hist_state: BTreeMap<String, (f64, bool, f64)> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "TYPE" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without metric name"))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: invalid metric name `{name}`"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {lineno}: unknown type `{kind}`"));
                    }
                    if exp.types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
                    }
                }
                "HELP" => {}
                other => return Err(format!("line {lineno}: unknown comment keyword `{other}`")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: malformed comment (expected `# `)"));
        }
        // Sample line: `<series> <value>`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without a value"))?;
        let (name, labels) = split_series(series).map_err(|e| format!("line {lineno}: {e}"))?;
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: invalid metric name `{name}`"));
        }
        let v: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable sample value `{value}`"))?;
        if !v.is_finite() {
            return Err(format!("line {lineno}: non-finite sample value `{value}`"));
        }
        let (family, kind) = family_of(name, &exp.types)
            .ok_or_else(|| format!("line {lineno}: sample `{name}` precedes its TYPE line"))?;
        if kind == "counter" && v < 0.0 {
            return Err(format!("line {lineno}: negative counter value on `{name}`"));
        }
        if name.ends_with("_bucket") && kind == "histogram" {
            let le = labels
                .and_then(|l| l.strip_prefix("le=\""))
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: bucket without an `le` label"))?;
            if le != "+Inf" && le.parse::<f64>().is_err() {
                return Err(format!("line {lineno}: unparseable `le` bound `{le}`"));
            }
            let state = hist_state.entry(family.to_string()).or_insert((0.0, false, 0.0));
            if state.1 {
                return Err(format!("line {lineno}: bucket after `le=\"+Inf\"` on `{family}`"));
            }
            if v < state.0 {
                return Err(format!(
                    "line {lineno}: non-cumulative bucket on `{family}` ({v} < {})",
                    state.0
                ));
            }
            state.0 = v;
            if le == "+Inf" {
                state.1 = true;
                state.2 = v;
            }
        }
        if exp.samples.insert(series.to_string(), v).is_some() {
            return Err(format!("line {lineno}: duplicate series `{series}`"));
        }
    }
    for (family, kind) in &exp.types {
        if kind != "histogram" {
            continue;
        }
        let Some(&(_, saw_inf, inf_v)) = hist_state.get(family) else {
            // Declared but no samples: tolerated (a family can be empty).
            continue;
        };
        if !saw_inf {
            return Err(format!("histogram `{family}` lacks an `le=\"+Inf\"` bucket"));
        }
        let count = exp
            .samples
            .get(&format!("{family}_count"))
            .ok_or_else(|| format!("histogram `{family}` lacks a `_count` series"))?;
        if !exp.samples.contains_key(&format!("{family}_sum")) {
            return Err(format!("histogram `{family}` lacks a `_sum` series"));
        }
        if (*count - inf_v).abs() > f64::EPSILON {
            return Err(format!(
                "histogram `{family}`: le=\"+Inf\" bucket ({inf_v}) != _count ({count})"
            ));
        }
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HIST_BUCKETS;

    fn hist(name: &str, unit: &str, values: &[u64]) -> HistBuckets {
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut sum = 0u64;
        for &v in values {
            buckets[crate::hist_bucket(v)] += 1;
            sum += v;
        }
        HistBuckets {
            name: name.to_string(),
            unit: unit.to_string(),
            buckets,
            count: values.len() as u64,
            sum,
        }
    }

    #[test]
    fn render_output_passes_strict_check() {
        let counters = vec![("sim.instructions".to_string(), 42u64)];
        let gauges = vec![("sim.rob.occupancy".to_string(), 17u64)];
        let hists = vec![hist("core.kmeans.iters", "n", &[1, 2, 2, 9, 1000])];
        let text = render(&counters, &gauges, &hists);
        let exp = check(&text).expect("own exposition must be strictly valid");
        assert_eq!(exp.samples.get("mlpa_counter_sim_instructions_total").copied(), Some(42.0));
        assert_eq!(exp.samples.get("mlpa_gauge_sim_rob_occupancy").copied(), Some(17.0));
        assert_eq!(exp.samples.get("mlpa_hist_core_kmeans_iters_n_count").copied(), Some(5.0));
        assert_eq!(exp.samples.get("mlpa_hist_core_kmeans_iters_n_sum").copied(), Some(1014.0));
        assert_eq!(exp.counter_values().len(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_at_log2_bounds() {
        let text = render(&[], &[], &[hist("h", "us", &[1, 2, 3, 1000])]);
        // Values 1 -> bucket 1 (le=1); 2,3 -> bucket 2 (le=3);
        // 1000 -> bucket 10 (le=1023).
        assert!(text.contains("mlpa_hist_h_us_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("mlpa_hist_h_us_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("mlpa_hist_h_us_bucket{le=\"1023\"} 4\n"), "{text}");
        assert!(text.contains("mlpa_hist_h_us_bucket{le=\"+Inf\"} 4\n"), "{text}");
        check(&text).unwrap();
    }

    #[test]
    fn kind_prefixes_prevent_counter_histogram_collisions() {
        // Without prefixes, counter `x_sum` and histogram `x` would
        // both emit a series named `x_sum`.
        let text = render(&[("x_sum".to_string(), 1)], &[], &[hist("x", "n", &[5])]);
        check(&text).expect("prefixed families must not collide");
    }

    #[test]
    fn check_rejects_sample_before_type() {
        assert!(check("foo 1\n").unwrap_err().contains("precedes its TYPE"));
    }

    #[test]
    fn check_rejects_non_cumulative_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"3\"} 3\n";
        assert!(check(text).unwrap_err().contains("non-cumulative"));
    }

    #[test]
    fn check_rejects_inf_count_mismatch() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    h_sum 10\n\
                    h_count 5\n";
        assert!(check(text).unwrap_err().contains("_count"));
    }

    #[test]
    fn check_rejects_malformed_lines() {
        for (bad, why) in [
            ("# TYPE h wibble\nh 1\n", "unknown type"),
            ("# TYPE 9bad counter\n", "invalid metric name"),
            ("# TYPE c counter\nc -1\n", "negative counter"),
            ("# TYPE c counter\nc 1\nc 2\n", "duplicate series"),
            ("# TYPE c counter\n# TYPE c gauge\n", "duplicate TYPE"),
            ("# TYPE c counter\nc abc\n", "unparseable sample value"),
            ("#TYPE c counter\n", "malformed comment"),
        ] {
            let err = check(bad).unwrap_err();
            assert!(err.contains(why), "`{bad}` gave `{err}`, wanted `{why}`");
        }
    }

    #[test]
    fn sanitize_flattens_punctuation() {
        assert_eq!(sanitize("core.plan.points"), "core_plan_points");
        assert_eq!(sanitize("span.core-x/y"), "span_core_x_y");
    }

    #[test]
    fn empty_registries_render_an_empty_valid_document() {
        let text = render(&[], &[], &[]);
        assert!(check(&text).unwrap().samples.is_empty());
    }
}
