//! Zero-cost observability for the mlpa workspace.
//!
//! Five instruments, one switch:
//!
//! * **Spans** — hierarchical wall-clock timings ([`span`],
//!   [`span_labeled`]). Parent/child links follow the per-thread span
//!   stack, so nesting works across `std::thread::scope` workers.
//! * **Counters** — named monotonic totals ([`add`]) backed by leaked
//!   `AtomicU64`s; hot loops should accumulate locally and flush once
//!   per call.
//! * **Gauges** — named last-write-wins instantaneous values
//!   ([`gauge_set`]): ROB/LSQ occupancy, in-flight plan jobs, cache hit
//!   rate, current profiling segment. Unlike counters they move in both
//!   directions, so they are never regression-gated — they exist for
//!   the live telemetry sampler and the `/metrics` endpoint.
//! * **Histograms** — lock-free log2-bucketed distributions
//!   ([`hist_record`], [`hist_merge`]): span-duration spread, ROB/LSQ
//!   occupancy, cache-miss run lengths, k-means iterations. Hot loops
//!   accumulate into a local [`HistTally`] and merge once per call.
//! * **Workers** — per-worker utilization guards ([`worker`]) used by
//!   the plan-execution and experiment-suite thread pools; live pools
//!   are additionally visible to the telemetry sampler.
//!
//! On top of these, [`telemetry`] adds a *live* view of a running
//! process: a background sampler thread appending `sample` events to
//! the JSONL sink and a std-only HTTP status server exposing
//! Prometheus-format `/metrics` (see [`promtext`]) and JSON `/status`.
//! [`selfprofile`] turns the span stream into a per-span-name
//! self/total-time tree embedded in the run report.
//!
//! Everything above is compiled to an inline no-op unless the crate
//! feature `enabled` is on; with the feature on it is still inert (one
//! relaxed atomic load per call site) until [`init`] or [`set_enabled`]
//! flips the runtime switch. Instrumentation never touches RNG state or
//! work ordering, so enabling it cannot perturb deterministic results.
//!
//! Events stream to an optional JSONL sink (one JSON object per line,
//! flushed per line); [`report`] aggregates everything into a
//! [`Report`] for `results/RUN_REPORT.json`. Logging ([`info!`],
//! [`vlog!`], [`elog!`], [`progress!`]) is *always* compiled — it
//! replaces the ad-hoc `eprintln!` progress output and is controlled by
//! [`Verbosity`], not by the feature flag.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod http;
pub mod json;
pub mod promtext;
pub mod selfprofile;
pub mod telemetry;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Logging (always compiled; gated by runtime verbosity only)
// ---------------------------------------------------------------------------

/// How much progress output goes to stderr.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Verbosity {
    /// Errors only (`--quiet`).
    Quiet = 0,
    /// Default progress output.
    Normal = 1,
    /// Extra detail (`--verbose`).
    Verbose = 2,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);
static FORCE_PROGRESS: AtomicBool = AtomicBool::new(false);

/// Set the global verbosity (from `--quiet` / `--verbose`).
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

/// The current global verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        2 => Verbosity::Verbose,
        _ => Verbosity::Normal,
    }
}

/// Force progress lines through even under `--quiet` (from
/// `--progress`).
pub fn set_force_progress(on: bool) {
    FORCE_PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether progress lines should currently be printed.
pub fn progress_active() -> bool {
    FORCE_PROGRESS.load(Ordering::Relaxed) || verbosity() >= Verbosity::Normal
}

/// Print `[target] message` to stderr if `level` passes the current
/// verbosity (a `Quiet` level always prints — use it for errors), and
/// mirror the line to the JSONL sink when one is active.
pub fn log(level: Verbosity, target: &str, args: fmt::Arguments<'_>) {
    if level == Verbosity::Quiet || verbosity() >= level {
        eprintln!("[{target}] {args}");
    }
    imp::sink_log(level, target, args);
}

/// Print a progress line; honours [`set_force_progress`] so `--progress`
/// overrides `--quiet`.
pub fn progress(target: &str, args: fmt::Arguments<'_>) {
    if progress_active() {
        eprintln!("[{target}] {args}");
    }
    imp::sink_log(Verbosity::Normal, target, args);
}

/// Log at [`Verbosity::Normal`]: `info!("suite", "ran {n} benchmarks")`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Verbosity::Normal, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Verbosity::Verbose`] (only shown with `--verbose`).
#[macro_export]
macro_rules! vlog {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Verbosity::Verbose, $target, ::core::format_args!($($arg)*))
    };
}

/// Log unconditionally (errors; not silenced by `--quiet`).
#[macro_export]
macro_rules! elog {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Verbosity::Quiet, $target, ::core::format_args!($($arg)*))
    };
}

/// Emit a progress line (shown unless `--quiet`, or always with
/// `--progress`).
#[macro_export]
macro_rules! progress {
    ($target:expr, $($arg:tt)*) => {
        $crate::progress($target, ::core::format_args!($($arg)*))
    };
}

// ---------------------------------------------------------------------------
// Configuration and run report (always compiled)
// ---------------------------------------------------------------------------

/// Runtime configuration consumed by [`init`].
#[derive(Debug, Default, Clone)]
pub struct ObsConfig {
    /// Flip the runtime collection switch on.
    pub enabled: bool,
    /// Stream JSONL events to this file.
    pub sink: Option<std::path::PathBuf>,
    /// Start the background telemetry sampler with this wake interval
    /// in milliseconds (`None` = no sampler). The sampler appends one
    /// [`SAMPLE_SCHEMA`] `sample` event per tick to the JSONL sink, so
    /// it only starts when a sink is configured too. 250 ms is the
    /// conventional default ([`DEFAULT_SAMPLE_MS`]).
    pub sample_ms: Option<u64>,
}

/// Conventional sampler interval for [`ObsConfig::sample_ms`].
pub const DEFAULT_SAMPLE_MS: u64 = 250;

/// Schema identifier written into `RUN_REPORT.json`. v3 adds the
/// `gauges` and `self_profile` sections.
pub const RUN_REPORT_SCHEMA: &str = "mlpa-run-report-v3";

/// Schema identifier stamped on the `run_start` event of a JSONL
/// stream. v1 streams predate the marker (no `schema` field); v3 adds
/// the telemetry `sample` event kind.
pub const EVENTS_SCHEMA: &str = "mlpa-events-v3";

/// Schema identifier stamped on every telemetry `sample` event. The
/// payload carries a *monotonic tick index*, never wall-clock, in the
/// fields downstream contracts check (`t_us` rides along for humans and
/// trace viewers, like on every other event).
pub const SAMPLE_SCHEMA: &str = "mlpa-sample-v1";

/// Schema identifier of the status server's `GET /status` JSON body.
pub const STATUS_SCHEMA: &str = "mlpa-status-v1";

/// Number of log2 buckets in a histogram: bucket 0 holds the value 0,
/// bucket `b` (1..=64) holds values whose bit length is `b`, i.e.
/// `2^(b-1) <= v < 2^b`.
pub const HIST_BUCKETS: usize = 65;

/// Summary of one histogram, as serialized into `RUN_REPORT.json` and
/// `hist` sink events. Quantiles are bucket upper bounds (`2^b - 1`)
/// clamped to the observed `[min, max]`, so they are exact for
/// single-bucket distributions and within 2x otherwise — and, unlike
/// means of timings, deterministic for deterministic inputs when the
/// recorded values are (counts, occupancies, run lengths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Histogram name (span-duration histograms get a `span.` prefix).
    pub name: String,
    /// Unit tag: `"us"` for time-like values, `"n"` for counts.
    pub unit: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (bucket upper bound, clamped to `[min, max]`).
    pub p50: u64,
    /// 90th percentile (bucket upper bound, clamped).
    pub p90: u64,
    /// 99th percentile (bucket upper bound, clamped).
    pub p99: u64,
}

/// Aggregated per-span-name wall-clock totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name (e.g. `core.select.coasts`).
    pub name: String,
    /// Number of times the span was opened.
    pub count: u64,
    /// Total wall-clock seconds across all openings.
    pub total_s: f64,
}

/// Utilization of one worker thread over its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStat {
    /// Pool label (e.g. `plan`, `suite`).
    pub pool: String,
    /// Worker index within the pool.
    pub index: usize,
    /// Seconds spent inside [`Worker::busy`] closures.
    pub busy_s: f64,
    /// Seconds from guard creation to drop.
    pub wall_s: f64,
    /// Number of jobs executed.
    pub jobs: u64,
    /// `busy_s / wall_s` (0 for a zero-length lifetime).
    pub busy_fraction: f64,
}

/// Mid-run aggregates for one worker pool, as returned by
/// [`pool_live_snapshot`]. Unlike [`WorkerStat`] rows (which only exist
/// once a guard drops), these are updated live as jobs complete, which
/// is what the telemetry sampler reads for busy fractions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolLiveStat {
    /// Pool label (e.g. `plan`, `suite`).
    pub pool: String,
    /// Worker guards currently open.
    pub live: u64,
    /// Cumulative nanoseconds spent inside `busy` closures, across all
    /// guards of this pool, including dropped ones.
    pub busy_ns: u64,
    /// Cumulative jobs completed across all guards of this pool.
    pub jobs: u64,
}

/// Raw log2 bucket counts for one histogram, as returned by
/// [`hist_buckets_snapshot`] — the Prometheus `/metrics` endpoint needs
/// cumulative per-bucket counts, not the p50/p90/p99 summary of
/// [`HistogramStat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistBuckets {
    /// Histogram name (span-duration histograms get a `span.` prefix).
    pub name: String,
    /// Unit tag: `"us"` for time-like values, `"n"` for counts.
    pub unit: String,
    /// Raw count per log2 bucket (not cumulative).
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
}

/// Snapshot of everything collected so far; serialized to
/// `results/RUN_REPORT.json`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Wall-clock seconds since [`init`] (or the first instrument call).
    pub wall_s: f64,
    /// Per-span-name totals, sorted by name.
    pub phases: Vec<PhaseStat>,
    /// One row per worker guard, in completion order.
    pub workers: Vec<WorkerStat>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge last-written values, sorted by name. Gauge *names* are
    /// deterministic for a fixed configuration; their values are
    /// whatever was last written and are never regression-gated.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name (empty histograms omitted).
    pub histograms: Vec<HistogramStat>,
    /// Span-aggregated self-profile (absent when collection was off).
    pub self_profile: Option<selfprofile::SelfProfile>,
}

impl Report {
    /// Serialize to the `mlpa-run-report-v3` JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Serialize with extra top-level sections appended after the
    /// standard ones. Each `(key, value)` pair contributes
    /// `"key": value`, where `value` must already be rendered JSON —
    /// this lets downstream crates (e.g. the experiment harness) inject
    /// sections like accuracy attribution without `mlpa-obs` knowing
    /// their types.
    pub fn to_json_with(&self, extra: &[(String, String)]) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{RUN_REPORT_SCHEMA}\",\n"));
        out.push_str(&format!("  \"wall_s\": {:.6},\n", self.wall_s));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_s\": {:.6}}}{sep}\n",
                json::escape(&p.name),
                p.count,
                p.total_s
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let sep = if i + 1 < self.workers.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"pool\": \"{}\", \"index\": {}, \"busy_s\": {:.6}, \
                 \"wall_s\": {:.6}, \"jobs\": {}, \"busy_fraction\": {:.4}}}{sep}\n",
                json::escape(&w.pool),
                w.index,
                w.busy_s,
                w.wall_s,
                w.jobs,
                w.busy_fraction
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": [\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {value}}}{sep}\n",
                json::escape(name)
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"gauges\": [\n");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i + 1 < self.gauges.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {value}}}{sep}\n",
                json::escape(name)
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i + 1 < self.histograms.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{sep}\n",
                json::escape(&h.name),
                json::escape(&h.unit),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99,
            ));
        }
        out.push_str("  ]");
        if let Some(sp) = &self.self_profile {
            out.push_str(",\n  \"self_profile\": ");
            out.push_str(&sp.to_json(2));
        }
        for (key, value) in extra {
            out.push_str(&format!(",\n  \"{}\": {value}", json::escape(key)));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Extract the peak-RSS high-water mark (bytes) from the text of
/// `/proc/self/status`. Returns `None` — never a fake 0 — when the
/// `VmHWM:` line is missing, malformed, or reads as zero kilobytes (a
/// live process has touched at least one page, so a zero can only be a
/// parse artifact or a stub procfs). Split out from [`peak_rss_bytes`]
/// so the degradation paths are testable without faking a kernel.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`.
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    if kb == 0 {
        return None;
    }
    Some(kb * 1024)
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the probe is unavailable
/// (non-Linux, unreadable procfs, malformed or zero `VmHWM`). Unlike
/// the counters this works even without the `enabled` feature: it reads
/// the kernel's high-water mark, not obs state. Machine- and
/// allocator-dependent — report it alongside wall-clock, never in
/// sections a regression gate diffs.
pub fn peak_rss_bytes() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Static facts about the host this process runs on. Everything here is
/// informational context for humans reading snapshots and run reports —
/// *not* input to any regression gate (machines legitimately differ) —
/// except [`HostMeta::fingerprint`], which the calibration layer stamps
/// on baselines so a cross-machine comparison is visible in the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMeta {
    /// Logical CPUs available to this process
    /// (`std::thread::available_parallelism`, 1 when unknown).
    pub cpus: usize,
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Target OS (`std::env::consts::OS`).
    pub os: String,
    /// Kernel release string (`/proc/sys/kernel/osrelease`), or
    /// `"unknown"` where procfs is unavailable.
    pub kernel: String,
}

impl HostMeta {
    /// Timestamp-free host fingerprint (`arch-os-cN`): stable across
    /// reboots of the same machine shape, different across machine
    /// shapes. Deliberately excludes the kernel release so a routine
    /// kernel update does not churn committed baselines.
    pub fn fingerprint(&self) -> String {
        format!("{}-{}-c{}", self.arch, self.os, self.cpus)
    }

    /// The host block as a stable-key-order JSON [`json::Value`].
    pub fn to_value(&self) -> json::Value {
        use std::collections::BTreeMap;
        json::Value::Obj(BTreeMap::from([
            ("cpus".to_string(), json::Value::Num(self.cpus as f64)),
            ("arch".to_string(), json::Value::Str(self.arch.clone())),
            ("os".to_string(), json::Value::Str(self.os.clone())),
            ("kernel".to_string(), json::Value::Str(self.kernel.clone())),
        ]))
    }
}

/// Probe the current host's metadata. Cheap enough to call per run; the
/// kernel string degrades to `"unknown"` off-Linux instead of failing.
pub fn host_meta() -> HostMeta {
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_string())
        .ok()
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    HostMeta {
        cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        arch: std::env::consts::ARCH.to_string(),
        os: std::env::consts::OS.to_string(),
        kernel,
    }
}

/// Bucket index for `value` in a log2 histogram: 0 for 0, otherwise the
/// bit length of `value` (so bucket `b` spans `2^(b-1)..2^b`).
#[inline]
pub fn hist_bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper bound of histogram bucket `b` (the largest value it can hold).
#[inline]
pub fn hist_bucket_max(b: usize) -> u64 {
    match b {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Quantile estimate over raw bucket counts: the upper bound of the
/// first bucket where the cumulative count reaches `ceil(q * count)`,
/// clamped to the observed `[min, max]`.
///
/// `q` outside `[0, 1]` (including NaN) is clamped into range, and an
/// empty histogram always yields 0 — never a garbage bucket bound or
/// the `u64::MAX`/`0` sentinels an untouched min/max pair holds.
pub fn hist_quantile(buckets: &[u64; HIST_BUCKETS], count: u64, q: f64, min: u64, max: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= target {
            return hist_bucket_max(b).clamp(min, max);
        }
    }
    max
}

// ---------------------------------------------------------------------------
// Live implementation (feature `enabled`)
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::{
        hist_bucket, hist_quantile, HistogramStat, ObsConfig, PhaseStat, Report, Verbosity,
        WorkerStat, EVENTS_SCHEMA, HIST_BUCKETS,
    };
    use crate::json;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::fmt;
    use std::fs::File;
    use std::io::{self, BufWriter, Write};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, RwLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(0);
    static SPAN_TOTALS: Mutex<BTreeMap<&'static str, (u64, u128)>> = Mutex::new(BTreeMap::new());
    /// Per (span name, parent span name) aggregation feeding the
    /// self-profile tree; the `None` parent is a root (thread-local
    /// stack was empty when the span opened).
    type SpanEdgeMap = BTreeMap<(&'static str, Option<&'static str>), (u64, u128)>;
    static SPAN_EDGES: Mutex<SpanEdgeMap> = Mutex::new(BTreeMap::new());
    static COUNTERS: RwLock<BTreeMap<&'static str, &'static AtomicU64>> =
        RwLock::new(BTreeMap::new());
    /// Last-write-wins gauges. Same leaked-`AtomicU64` discipline as
    /// counters, but stores instead of adds.
    static GAUGES: RwLock<BTreeMap<&'static str, &'static AtomicU64>> =
        RwLock::new(BTreeMap::new());
    static WORKERS: Mutex<Vec<WorkerStat>> = Mutex::new(Vec::new());
    /// Live per-pool worker aggregates for the telemetry sampler:
    /// currently-open guards, cumulative busy nanoseconds, job count.
    static POOLS: RwLock<BTreeMap<&'static str, &'static PoolLive>> = RwLock::new(BTreeMap::new());
    static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
    static HISTS: RwLock<BTreeMap<&'static str, &'static Hist>> = RwLock::new(BTreeMap::new());
    /// Span-duration histograms live in their own registry (reported
    /// under a `span.` name prefix) so they can never collide with an
    /// explicitly recorded histogram name.
    static SPAN_HISTS: RwLock<BTreeMap<&'static str, &'static Hist>> = RwLock::new(BTreeMap::new());
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// Open spans on this thread: (id, name). Names ride along so a
        /// closing span can attribute its duration to its parent *name*
        /// for the self-profile without a global id lookup.
        static SPAN_STACK: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
        /// Stable per-thread id for sink events (trace-track mapping).
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }

    fn tid() -> u64 {
        TID.with(|t| *t)
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    pub(crate) fn t_us() -> u128 {
        epoch().elapsed().as_micros()
    }

    /// One JSON object per line; flushed per line so a crash (or a
    /// concurrent reader) never sees a partial record. The whole line is
    /// written under the sink mutex, which is what guarantees `sample`
    /// events from the telemetry thread never tear lines emitted by
    /// scoped workers.
    pub(crate) fn emit(line: &str) {
        let mut sink = SINK.lock().expect("obs sink poisoned");
        if let Some(w) = sink.as_mut() {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }

    /// Whether a JSONL sink is currently open.
    pub(crate) fn sink_open() -> bool {
        SINK.lock().expect("obs sink poisoned").is_some()
    }

    /// Install the runtime configuration: pin the epoch, open the JSONL
    /// sink (if any), and flip the collection switch.
    pub fn init(cfg: &ObsConfig) -> io::Result<()> {
        let _ = epoch();
        if let Some(path) = &cfg.sink {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let file = File::create(path)?;
            *SINK.lock().expect("obs sink poisoned") = Some(BufWriter::new(file));
        }
        ENABLED.store(cfg.enabled, Ordering::Release);
        emit(&format!(
            "{{\"ev\":\"run_start\",\"schema\":\"{EVENTS_SCHEMA}\",\"t_us\":{}}}",
            t_us()
        ));
        // Sample events go to the JSONL sink, so the sampler only runs
        // when both an interval and a sink are configured.
        if let (Some(ms), Some(_)) = (cfg.sample_ms, &cfg.sink) {
            crate::telemetry::start_sampler(ms);
        }
        Ok(())
    }

    /// Flip the runtime collection switch.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Release);
    }

    /// Whether collection is active (one relaxed load — this is the
    /// entire cost of an instrument call while disabled at runtime).
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Add `delta` to the named counter. Registers the counter on first
    /// use; hot loops should batch locally and call this once per outer
    /// call.
    pub fn add(name: &'static str, delta: u64) {
        if !is_enabled() {
            return;
        }
        if let Some(c) = COUNTERS.read().expect("obs counters poisoned").get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let mut map = COUNTERS.write().expect("obs counters poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a named counter (0 if never touched).
    pub fn counter_value(name: &str) -> u64 {
        COUNTERS
            .read()
            .expect("obs counters poisoned")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// All counters and their totals, sorted by name.
    pub fn counters_snapshot() -> Vec<(String, u64)> {
        COUNTERS
            .read()
            .expect("obs counters poisoned")
            .iter()
            .map(|(name, c)| (name.to_string(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Store `value` into the named gauge (last write wins). Registers
    /// the gauge on first use, like counters. Gauges move in both
    /// directions; nothing downstream may ever gate their *values*.
    pub fn gauge_set(name: &'static str, value: u64) {
        if !is_enabled() {
            return;
        }
        if let Some(g) = GAUGES.read().expect("obs gauges poisoned").get(name) {
            g.store(value, Ordering::Relaxed);
            return;
        }
        let mut map = GAUGES.write().expect("obs gauges poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
            .store(value, Ordering::Relaxed);
    }

    /// Add `delta` to the named gauge in one atomic op (negative
    /// deltas wrap two's-complement, so balanced add/sub pairs are
    /// exact). Use this for level gauges updated from many threads —
    /// a read-modify-write through [`gauge_set`] can interleave so a
    /// stale larger value lands last and the level sticks nonzero.
    pub fn gauge_add(name: &'static str, delta: i64) {
        if !is_enabled() {
            return;
        }
        if let Some(g) = GAUGES.read().expect("obs gauges poisoned").get(name) {
            g.fetch_add(delta as u64, Ordering::Relaxed);
            return;
        }
        let mut map = GAUGES.write().expect("obs gauges poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
            .fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Last value written to a named gauge (0 if never written).
    pub fn gauge_value(name: &str) -> u64 {
        GAUGES
            .read()
            .expect("obs gauges poisoned")
            .get(name)
            .map_or(0, |g| g.load(Ordering::Relaxed))
    }

    /// All gauges and their last-written values, sorted by name.
    pub fn gauges_snapshot() -> Vec<(String, u64)> {
        GAUGES
            .read()
            .expect("obs gauges poisoned")
            .iter()
            .map(|(name, g)| (name.to_string(), g.load(Ordering::Relaxed)))
            .collect()
    }

    /// Live aggregates for one worker pool, updated as jobs run (not
    /// just when guards drop) so the telemetry sampler can report
    /// mid-run busy fractions.
    pub(crate) struct PoolLive {
        live: AtomicU64,
        busy_ns: AtomicU64,
        jobs: AtomicU64,
    }

    fn pool_live_of(pool: &'static str) -> &'static PoolLive {
        if let Some(p) = POOLS.read().expect("obs pools poisoned").get(pool) {
            return p;
        }
        let mut map = POOLS.write().expect("obs pools poisoned");
        map.entry(pool).or_insert_with(|| {
            Box::leak(Box::new(PoolLive {
                live: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
                jobs: AtomicU64::new(0),
            }))
        })
    }

    /// Mid-run snapshot of every worker pool that has ever opened a
    /// guard, sorted by pool name.
    pub fn pool_live_snapshot() -> Vec<super::PoolLiveStat> {
        POOLS
            .read()
            .expect("obs pools poisoned")
            .iter()
            .map(|(pool, p)| super::PoolLiveStat {
                pool: pool.to_string(),
                live: p.live.load(Ordering::Relaxed),
                busy_ns: p.busy_ns.load(Ordering::Relaxed),
                jobs: p.jobs.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// One live histogram: lock-free log2 buckets plus count/sum and
    /// atomically maintained min/max. Leaked into `'static` on first
    /// use, like counters.
    struct Hist {
        unit: &'static str,
        buckets: [AtomicU64; HIST_BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
        min: AtomicU64,
        max: AtomicU64,
    }

    impl Hist {
        fn new(unit: &'static str) -> Hist {
            Hist {
                unit,
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }
        }

        fn record(&self, value: u64) {
            self.buckets[hist_bucket(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.min.fetch_min(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }

        fn merge(&self, t: &HistTally) {
            for (b, &c) in t.buckets.iter().enumerate() {
                if c > 0 {
                    self.buckets[b].fetch_add(c, Ordering::Relaxed);
                }
            }
            self.count.fetch_add(t.count, Ordering::Relaxed);
            self.sum.fetch_add(t.sum, Ordering::Relaxed);
            self.min.fetch_min(t.min, Ordering::Relaxed);
            self.max.fetch_max(t.max, Ordering::Relaxed);
        }

        fn snapshot(&self, name: String) -> Option<HistogramStat> {
            let count = self.count.load(Ordering::Relaxed);
            if count == 0 {
                return None;
            }
            let mut buckets = [0u64; HIST_BUCKETS];
            for (b, c) in buckets.iter_mut().enumerate() {
                *c = self.buckets[b].load(Ordering::Relaxed);
            }
            let min = self.min.load(Ordering::Relaxed);
            let max = self.max.load(Ordering::Relaxed);
            Some(HistogramStat {
                name,
                unit: self.unit.to_string(),
                count,
                sum: self.sum.load(Ordering::Relaxed),
                min,
                max,
                p50: hist_quantile(&buckets, count, 0.50, min, max),
                p90: hist_quantile(&buckets, count, 0.90, min, max),
                p99: hist_quantile(&buckets, count, 0.99, min, max),
            })
        }

        fn raw(&self, name: String) -> Option<super::HistBuckets> {
            // Derive `count` from the bucket snapshot instead of the
            // separate `count` cell: writers increment a bucket before
            // `count`, so a concurrent mid-run read of `count` can lag
            // the bucket total and render a `+Inf`/`_count` smaller
            // than the last cumulative `le` bucket — which the strict
            // exposition checker rejects as non-cumulative. At
            // quiescence (finish-time reports) the two are equal.
            let mut buckets = [0u64; HIST_BUCKETS];
            for (b, c) in buckets.iter_mut().enumerate() {
                *c = self.buckets[b].load(Ordering::Relaxed);
            }
            let count: u64 = buckets.iter().sum();
            if count == 0 {
                return None;
            }
            Some(super::HistBuckets {
                name,
                unit: self.unit.to_string(),
                buckets,
                count,
                sum: self.sum.load(Ordering::Relaxed),
            })
        }
    }

    fn hist_of(
        registry: &RwLock<BTreeMap<&'static str, &'static Hist>>,
        name: &'static str,
        unit: &'static str,
    ) -> &'static Hist {
        if let Some(h) = registry.read().expect("obs hists poisoned").get(name) {
            return h;
        }
        let mut map = registry.write().expect("obs hists poisoned");
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Hist::new(unit))))
    }

    /// Local, unsynchronized histogram tally for hot loops: record into
    /// this on the stack, then [`hist_merge`] once per outer call.
    #[derive(Debug, Clone)]
    pub struct HistTally {
        buckets: [u64; HIST_BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    }

    impl HistTally {
        /// An empty tally.
        pub fn new() -> HistTally {
            HistTally { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
        }

        /// Record one value (no atomics, no branches on the obs switch —
        /// guard the loop with [`is_enabled`] instead).
        #[inline]
        pub fn record(&mut self, value: u64) {
            self.buckets[hist_bucket(value)] += 1;
            self.count += 1;
            self.sum = self.sum.saturating_add(value);
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }

        /// Number of values recorded so far.
        #[inline]
        pub fn count(&self) -> u64 {
            self.count
        }

        /// True when nothing has been recorded.
        #[inline]
        pub fn is_empty(&self) -> bool {
            self.count == 0
        }
    }

    impl Default for HistTally {
        fn default() -> HistTally {
            HistTally::new()
        }
    }

    /// Record one value into the named histogram. Registers it (with
    /// `unit`) on first use; hot loops should use a [`HistTally`] and
    /// [`hist_merge`] instead.
    pub fn hist_record(name: &'static str, unit: &'static str, value: u64) {
        if !is_enabled() {
            return;
        }
        hist_of(&HISTS, name, unit).record(value);
    }

    /// Merge a local [`HistTally`] into the named histogram (one batch
    /// of atomic adds per bucket touched). Empty tallies are free.
    pub fn hist_merge(name: &'static str, unit: &'static str, tally: &HistTally) {
        if !is_enabled() || tally.count == 0 {
            return;
        }
        hist_of(&HISTS, name, unit).merge(tally);
    }

    /// Summaries of all non-empty histograms, sorted by name.
    /// Span-duration histograms appear with a `span.` name prefix.
    pub fn histograms_snapshot() -> Vec<HistogramStat> {
        let mut out: Vec<HistogramStat> = Vec::new();
        for (name, h) in HISTS.read().expect("obs hists poisoned").iter() {
            if let Some(s) = h.snapshot(name.to_string()) {
                out.push(s);
            }
        }
        for (name, h) in SPAN_HISTS.read().expect("obs hists poisoned").iter() {
            if let Some(s) = h.snapshot(format!("span.{name}")) {
                out.push(s);
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Raw bucket counts of all non-empty histograms, sorted by name
    /// (the `/metrics` exposition needs per-bucket counts, not
    /// quantile summaries).
    pub fn hist_buckets_snapshot() -> Vec<super::HistBuckets> {
        let mut out: Vec<super::HistBuckets> = Vec::new();
        for (name, h) in HISTS.read().expect("obs hists poisoned").iter() {
            if let Some(s) = h.raw(name.to_string()) {
                out.push(s);
            }
        }
        for (name, h) in SPAN_HISTS.read().expect("obs hists poisoned").iter() {
            if let Some(s) = h.raw(format!("span.{name}")) {
                out.push(s);
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The self-profile call-tree edges observed so far: one row per
    /// (span name, parent span name) pair with its call count and total
    /// wall seconds. Roots (spans opened with an empty per-thread span
    /// stack — including every span opened on a scoped worker thread)
    /// have `parent == None`.
    pub fn span_edges_snapshot() -> Vec<crate::selfprofile::RawEdge> {
        SPAN_EDGES
            .lock()
            .expect("obs span edges poisoned")
            .iter()
            .map(|((name, parent), (calls, ns))| crate::selfprofile::RawEdge {
                name: name.to_string(),
                parent: parent.map(|p| p.to_string()),
                calls: *calls,
                total_s: *ns as f64 / 1e9,
            })
            .collect()
    }

    /// RAII timing guard returned by [`span`] / [`span_labeled`].
    #[must_use]
    pub struct Span {
        inner: Option<SpanInner>,
    }

    struct SpanInner {
        name: &'static str,
        label: Option<String>,
        id: u64,
        parent: Option<u64>,
        parent_name: Option<&'static str>,
        start: u128,
        begin: Instant,
    }

    impl Span {
        /// The span's globally unique id (0 when collection is off).
        pub fn id(&self) -> u64 {
            self.inner.as_ref().map_or(0, |i| i.id)
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(inner) = self.inner.take() else { return };
            let dur = inner.begin.elapsed();
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last().map(|&(id, _)| id) == Some(inner.id) {
                    stack.pop();
                }
            });
            {
                let mut totals = SPAN_TOTALS.lock().expect("obs spans poisoned");
                let entry = totals.entry(inner.name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur.as_nanos();
            }
            {
                let mut edges = SPAN_EDGES.lock().expect("obs span edges poisoned");
                let entry = edges.entry((inner.name, inner.parent_name)).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur.as_nanos();
            }
            hist_of(&SPAN_HISTS, inner.name, "us").record(dur.as_micros() as u64);
            let label = inner
                .label
                .as_deref()
                .map(|l| format!(",\"label\":\"{}\"", json::escape(l)))
                .unwrap_or_default();
            let parent = inner.parent.map(|p| p.to_string()).unwrap_or_else(|| "null".into());
            emit(&format!(
                "{{\"ev\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"tid\":{},\
                 \"t_us\":{},\"dur_us\":{}{}}}",
                json::escape(inner.name),
                inner.id,
                parent,
                tid(),
                inner.start,
                dur.as_micros(),
                label,
            ));
        }
    }

    fn open_span(name: &'static str, label: Option<String>) -> Span {
        if !is_enabled() {
            return Span { inner: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed) + 1;
        let (parent, parent_name) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().map(|&(id, _)| id);
            let parent_name = stack.last().map(|&(_, name)| name);
            stack.push((id, name));
            (parent, parent_name)
        });
        Span {
            inner: Some(SpanInner {
                name,
                label,
                id,
                parent,
                parent_name,
                start: t_us(),
                begin: Instant::now(),
            }),
        }
    }

    /// Open a named timing span; closes (and records) on drop.
    pub fn span(name: &'static str) -> Span {
        open_span(name, None)
    }

    /// Open a span with a dynamic label (e.g. a benchmark name); totals
    /// aggregate under the static `name`, the label goes to the sink.
    pub fn span_labeled(name: &'static str, label: &str) -> Span {
        if !is_enabled() {
            return Span { inner: None };
        }
        open_span(name, Some(label.to_string()))
    }

    /// Per-worker utilization guard returned by [`worker`].
    #[must_use]
    pub struct Worker {
        inner: Option<WorkerInner>,
    }

    struct WorkerInner {
        pool: &'static str,
        index: usize,
        created: Instant,
        busy_ns: u128,
        jobs: u64,
        live: &'static PoolLive,
    }

    impl Worker {
        /// Run one job under this worker, timing it as busy work.
        pub fn busy<R>(&mut self, f: impl FnOnce() -> R) -> R {
            match &mut self.inner {
                None => f(),
                Some(w) => {
                    let begin = Instant::now();
                    let r = f();
                    let ns = begin.elapsed().as_nanos();
                    w.busy_ns += ns;
                    w.jobs += 1;
                    w.live.busy_ns.fetch_add(ns as u64, Ordering::Relaxed);
                    w.live.jobs.fetch_add(1, Ordering::Relaxed);
                    r
                }
            }
        }
    }

    impl Drop for Worker {
        fn drop(&mut self) {
            let Some(w) = self.inner.take() else { return };
            w.live.live.fetch_sub(1, Ordering::Relaxed);
            let wall = w.created.elapsed();
            let wall_s = wall.as_secs_f64();
            let busy_s = w.busy_ns as f64 / 1e9;
            let stat = WorkerStat {
                pool: w.pool.to_string(),
                index: w.index,
                busy_s,
                wall_s,
                jobs: w.jobs,
                busy_fraction: if wall_s > 0.0 { busy_s / wall_s } else { 0.0 },
            };
            emit(&format!(
                "{{\"ev\":\"worker\",\"pool\":\"{}\",\"index\":{},\"tid\":{},\"busy_us\":{},\
                 \"wall_us\":{},\"jobs\":{}}}",
                json::escape(w.pool),
                w.index,
                tid(),
                w.busy_ns / 1_000,
                wall.as_micros(),
                w.jobs,
            ));
            WORKERS.lock().expect("obs workers poisoned").push(stat);
        }
    }

    /// Open a utilization guard for worker `index` of `pool`; records
    /// busy/wall time and job count on drop.
    pub fn worker(pool: &'static str, index: usize) -> Worker {
        if !is_enabled() {
            return Worker { inner: None };
        }
        let live = pool_live_of(pool);
        live.live.fetch_add(1, Ordering::Relaxed);
        Worker {
            inner: Some(WorkerInner {
                pool,
                index,
                created: Instant::now(),
                busy_ns: 0,
                jobs: 0,
                live,
            }),
        }
    }

    /// Mirror a log line into the JSONL sink.
    pub fn sink_log(level: Verbosity, target: &str, args: fmt::Arguments<'_>) {
        if !is_enabled() {
            return;
        }
        // Cheap pre-check: skip formatting entirely when no sink is open.
        if SINK.lock().expect("obs sink poisoned").is_none() {
            return;
        }
        let level = match level {
            Verbosity::Quiet => "error",
            Verbosity::Normal => "info",
            Verbosity::Verbose => "debug",
        };
        emit(&format!(
            "{{\"ev\":\"log\",\"t_us\":{},\"tid\":{},\"level\":\"{level}\",\"target\":\"{}\",\
             \"msg\":\"{}\"}}",
            t_us(),
            tid(),
            json::escape(target),
            json::escape(&args.to_string()),
        ));
    }

    /// Emit a `counters` snapshot event (all counter totals at this
    /// instant) to the sink. The trace exporter derives counter-series
    /// tracks (e.g. cache hit rates) from successive snapshots.
    pub fn emit_counters_snapshot() {
        if !is_enabled() {
            return;
        }
        if SINK.lock().expect("obs sink poisoned").is_none() {
            return;
        }
        let body = counters_snapshot()
            .iter()
            .map(|(name, value)| format!("\"{}\":{value}", json::escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        emit(&format!("{{\"ev\":\"counters\",\"t_us\":{},\"counters\":{{{body}}}}}", t_us()));
    }

    /// Aggregate everything collected so far into a [`Report`].
    pub fn report() -> Report {
        let phases: Vec<PhaseStat> = SPAN_TOTALS
            .lock()
            .expect("obs spans poisoned")
            .iter()
            .map(|(name, (count, ns))| PhaseStat {
                name: name.to_string(),
                count: *count,
                total_s: *ns as f64 / 1e9,
            })
            .collect();
        let workers = WORKERS.lock().expect("obs workers poisoned").clone();
        let histograms = histograms_snapshot();
        let edges = span_edges_snapshot();
        let self_profile = if phases.is_empty() {
            None
        } else {
            Some(crate::selfprofile::build(&phases, &histograms, &workers, &edges))
        };
        Report {
            wall_s: epoch().elapsed().as_secs_f64(),
            phases,
            workers,
            counters: counters_snapshot(),
            gauges: gauges_snapshot(),
            histograms,
            self_profile,
        }
    }

    /// Stop the telemetry sampler (which emits one final `sample`
    /// event), then emit one `hist` summary event per non-empty
    /// histogram, the final `run_end` event, and flush the sink.
    pub fn finish() {
        crate::telemetry::stop_sampler();
        for h in histograms_snapshot() {
            emit(&format!(
                "{{\"ev\":\"hist\",\"t_us\":{},\"name\":\"{}\",\"unit\":\"{}\",\"count\":{},\
                 \"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                t_us(),
                json::escape(&h.name),
                json::escape(&h.unit),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99,
            ));
        }
        emit(&format!("{{\"ev\":\"run_end\",\"t_us\":{}}}", t_us()));
        let mut sink = SINK.lock().expect("obs sink poisoned");
        if let Some(w) = sink.as_mut() {
            let _ = w.flush();
        }
    }

    /// Reset all global state. Test-only: not part of the public
    /// contract, and racy against concurrent instrumented threads.
    #[doc(hidden)]
    pub fn reset_for_tests() {
        crate::telemetry::reset_for_tests();
        ENABLED.store(false, Ordering::Release);
        SPAN_TOTALS.lock().expect("obs spans poisoned").clear();
        SPAN_EDGES.lock().expect("obs span edges poisoned").clear();
        for (_, c) in COUNTERS.read().expect("obs counters poisoned").iter() {
            c.store(0, Ordering::Relaxed);
        }
        for (_, g) in GAUGES.read().expect("obs gauges poisoned").iter() {
            g.store(0, Ordering::Relaxed);
        }
        for (_, p) in POOLS.read().expect("obs pools poisoned").iter() {
            p.live.store(0, Ordering::Relaxed);
            p.busy_ns.store(0, Ordering::Relaxed);
            p.jobs.store(0, Ordering::Relaxed);
        }
        WORKERS.lock().expect("obs workers poisoned").clear();
        for registry in [&HISTS, &SPAN_HISTS] {
            for (_, h) in registry.read().expect("obs hists poisoned").iter() {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                h.min.store(u64::MAX, Ordering::Relaxed);
                h.max.store(0, Ordering::Relaxed);
            }
        }
        *SINK.lock().expect("obs sink poisoned") = None;
    }
}

// ---------------------------------------------------------------------------
// No-op implementation (feature off): every call inlines to nothing
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{HistogramStat, ObsConfig, Report, Verbosity};
    use std::fmt;
    use std::io;

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn init(_cfg: &ObsConfig) -> io::Result<()> {
        Ok(())
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Always `false`: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn add(_name: &'static str, _delta: u64) {}

    /// Always 0: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn counter_value(_name: &str) -> u64 {
        0
    }

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn counters_snapshot() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _value: u64) {}

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn gauge_add(_name: &'static str, _delta: i64) {}

    /// Always 0: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn gauge_value(_name: &str) -> u64 {
        0
    }

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn gauges_snapshot() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn pool_live_snapshot() -> Vec<super::PoolLiveStat> {
        Vec::new()
    }

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn hist_buckets_snapshot() -> Vec<super::HistBuckets> {
        Vec::new()
    }

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn span_edges_snapshot() -> Vec<crate::selfprofile::RawEdge> {
        Vec::new()
    }

    /// Zero-sized stand-in for the live local histogram tally.
    #[derive(Debug, Clone, Default)]
    pub struct HistTally(());

    impl HistTally {
        /// An empty tally: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn new() -> HistTally {
            HistTally(())
        }

        /// No-op: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn record(&mut self, _value: u64) {}

        /// Always 0: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }

        /// Always true: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn hist_record(_name: &'static str, _unit: &'static str, _value: u64) {}

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn hist_merge(_name: &'static str, _unit: &'static str, _tally: &HistTally) {}

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn histograms_snapshot() -> Vec<HistogramStat> {
        Vec::new()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn emit_counters_snapshot() {}

    /// Zero-sized stand-in for the live span guard.
    #[must_use]
    pub struct Span(());

    impl Span {
        /// Always 0: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn id(&self) -> u64 {
            0
        }
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn span_labeled(_name: &'static str, _label: &str) -> Span {
        Span(())
    }

    /// Zero-sized stand-in for the live worker guard.
    #[must_use]
    pub struct Worker(());

    impl Worker {
        /// Runs the job with no timing: the `enabled` feature is
        /// compiled out.
        #[inline(always)]
        pub fn busy<R>(&mut self, f: impl FnOnce() -> R) -> R {
            f()
        }
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn worker(_pool: &'static str, _index: usize) -> Worker {
        Worker(())
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn sink_log(_level: Verbosity, _target: &str, _args: fmt::Arguments<'_>) {}

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn report() -> Report {
        Report::default()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn finish() {}

    /// No-op: the `enabled` feature is compiled out.
    #[doc(hidden)]
    #[inline(always)]
    pub fn reset_for_tests() {}
}

pub use imp::{
    add, counter_value, counters_snapshot, emit_counters_snapshot, finish, gauge_add, gauge_set,
    gauge_value, gauges_snapshot, hist_buckets_snapshot, hist_merge, hist_record,
    histograms_snapshot, init, is_enabled, pool_live_snapshot, report, reset_for_tests,
    set_enabled, span, span_edges_snapshot, span_labeled, worker, HistTally, Span, Worker,
};

#[cfg(test)]
mod quantile_tests {
    use super::{hist_bucket, hist_quantile, HIST_BUCKETS};

    fn tally(values: &[u64]) -> ([u64; HIST_BUCKETS], u64, u64, u64) {
        let mut buckets = [0u64; HIST_BUCKETS];
        let (mut min, mut max) = (u64::MAX, 0u64);
        for &v in values {
            buckets[hist_bucket(v)] += 1;
            min = min.min(v);
            max = max.max(v);
        }
        (buckets, values.len() as u64, min, max)
    }

    #[test]
    fn empty_histogram_yields_zero_for_every_q() {
        let buckets = [0u64; HIST_BUCKETS];
        // An untouched tally carries the min=MAX/max=0 sentinels; the
        // quantile must not leak them.
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(hist_quantile(&buckets, 0, q, u64::MAX, 0), 0);
        }
    }

    #[test]
    fn q_is_clamped_into_unit_interval() {
        let (buckets, count, min, max) = tally(&[3, 100, 9000]);
        let lo = hist_quantile(&buckets, count, 0.0, min, max);
        let hi = hist_quantile(&buckets, count, 1.0, min, max);
        assert_eq!(hist_quantile(&buckets, count, -3.5, min, max), lo);
        assert_eq!(hist_quantile(&buckets, count, 7.0, min, max), hi);
        assert_eq!(hist_quantile(&buckets, count, f64::NAN, min, max), lo);
    }

    #[test]
    fn q0_and_q1_hit_the_observed_extremes() {
        let (buckets, count, min, max) = tally(&[5, 6, 7, 1000]);
        // q=0 resolves to the first non-empty bucket, clamped to min.
        assert_eq!(hist_quantile(&buckets, count, 0.0, min, max), 7);
        // q=1 resolves to the last non-empty bucket, clamped to max.
        assert_eq!(hist_quantile(&buckets, count, 1.0, min, max), 1000);
    }

    #[test]
    fn single_bucket_tally_is_exact() {
        // All values share one bucket, so every quantile clamps to the
        // observed [min, max] and is exact at the extremes.
        let (buckets, count, min, max) = tally(&[40, 40, 40]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(hist_quantile(&buckets, count, q, min, max), 40);
        }
        let (buckets, count, min, max) = tally(&[33]);
        assert_eq!(hist_quantile(&buckets, count, 0.5, min, max), 33);
    }
}
