//! Zero-cost observability for the mlpa workspace.
//!
//! Three instruments, one switch:
//!
//! * **Spans** — hierarchical wall-clock timings ([`span`],
//!   [`span_labeled`]). Parent/child links follow the per-thread span
//!   stack, so nesting works across `std::thread::scope` workers.
//! * **Counters** — named monotonic totals ([`add`]) backed by leaked
//!   `AtomicU64`s; hot loops should accumulate locally and flush once
//!   per call.
//! * **Workers** — per-worker utilization guards ([`worker`]) used by
//!   the plan-execution and experiment-suite thread pools.
//!
//! Everything above is compiled to an inline no-op unless the crate
//! feature `enabled` is on; with the feature on it is still inert (one
//! relaxed atomic load per call site) until [`init`] or [`set_enabled`]
//! flips the runtime switch. Instrumentation never touches RNG state or
//! work ordering, so enabling it cannot perturb deterministic results.
//!
//! Events stream to an optional JSONL sink (one JSON object per line,
//! flushed per line); [`report`] aggregates everything into a
//! [`Report`] for `results/RUN_REPORT.json`. Logging ([`info!`],
//! [`vlog!`], [`elog!`], [`progress!`]) is *always* compiled — it
//! replaces the ad-hoc `eprintln!` progress output and is controlled by
//! [`Verbosity`], not by the feature flag.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Logging (always compiled; gated by runtime verbosity only)
// ---------------------------------------------------------------------------

/// How much progress output goes to stderr.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Verbosity {
    /// Errors only (`--quiet`).
    Quiet = 0,
    /// Default progress output.
    Normal = 1,
    /// Extra detail (`--verbose`).
    Verbose = 2,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);
static FORCE_PROGRESS: AtomicBool = AtomicBool::new(false);

/// Set the global verbosity (from `--quiet` / `--verbose`).
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

/// The current global verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        2 => Verbosity::Verbose,
        _ => Verbosity::Normal,
    }
}

/// Force progress lines through even under `--quiet` (from
/// `--progress`).
pub fn set_force_progress(on: bool) {
    FORCE_PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether progress lines should currently be printed.
pub fn progress_active() -> bool {
    FORCE_PROGRESS.load(Ordering::Relaxed) || verbosity() >= Verbosity::Normal
}

/// Print `[target] message` to stderr if `level` passes the current
/// verbosity (a `Quiet` level always prints — use it for errors), and
/// mirror the line to the JSONL sink when one is active.
pub fn log(level: Verbosity, target: &str, args: fmt::Arguments<'_>) {
    if level == Verbosity::Quiet || verbosity() >= level {
        eprintln!("[{target}] {args}");
    }
    imp::sink_log(level, target, args);
}

/// Print a progress line; honours [`set_force_progress`] so `--progress`
/// overrides `--quiet`.
pub fn progress(target: &str, args: fmt::Arguments<'_>) {
    if progress_active() {
        eprintln!("[{target}] {args}");
    }
    imp::sink_log(Verbosity::Normal, target, args);
}

/// Log at [`Verbosity::Normal`]: `info!("suite", "ran {n} benchmarks")`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Verbosity::Normal, $target, ::core::format_args!($($arg)*))
    };
}

/// Log at [`Verbosity::Verbose`] (only shown with `--verbose`).
#[macro_export]
macro_rules! vlog {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Verbosity::Verbose, $target, ::core::format_args!($($arg)*))
    };
}

/// Log unconditionally (errors; not silenced by `--quiet`).
#[macro_export]
macro_rules! elog {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Verbosity::Quiet, $target, ::core::format_args!($($arg)*))
    };
}

/// Emit a progress line (shown unless `--quiet`, or always with
/// `--progress`).
#[macro_export]
macro_rules! progress {
    ($target:expr, $($arg:tt)*) => {
        $crate::progress($target, ::core::format_args!($($arg)*))
    };
}

// ---------------------------------------------------------------------------
// Configuration and run report (always compiled)
// ---------------------------------------------------------------------------

/// Runtime configuration consumed by [`init`].
#[derive(Debug, Default, Clone)]
pub struct ObsConfig {
    /// Flip the runtime collection switch on.
    pub enabled: bool,
    /// Stream JSONL events to this file.
    pub sink: Option<std::path::PathBuf>,
}

/// Schema identifier written into `RUN_REPORT.json`.
pub const RUN_REPORT_SCHEMA: &str = "mlpa-run-report-v1";

/// Aggregated per-span-name wall-clock totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name (e.g. `core.select.coasts`).
    pub name: String,
    /// Number of times the span was opened.
    pub count: u64,
    /// Total wall-clock seconds across all openings.
    pub total_s: f64,
}

/// Utilization of one worker thread over its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStat {
    /// Pool label (e.g. `plan`, `suite`).
    pub pool: String,
    /// Worker index within the pool.
    pub index: usize,
    /// Seconds spent inside [`Worker::busy`] closures.
    pub busy_s: f64,
    /// Seconds from guard creation to drop.
    pub wall_s: f64,
    /// Number of jobs executed.
    pub jobs: u64,
    /// `busy_s / wall_s` (0 for a zero-length lifetime).
    pub busy_fraction: f64,
}

/// Snapshot of everything collected so far; serialized to
/// `results/RUN_REPORT.json`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Wall-clock seconds since [`init`] (or the first instrument call).
    pub wall_s: f64,
    /// Per-span-name totals, sorted by name.
    pub phases: Vec<PhaseStat>,
    /// One row per worker guard, in completion order.
    pub workers: Vec<WorkerStat>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl Report {
    /// Serialize to the `mlpa-run-report-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{RUN_REPORT_SCHEMA}\",\n"));
        out.push_str(&format!("  \"wall_s\": {:.6},\n", self.wall_s));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_s\": {:.6}}}{sep}\n",
                json::escape(&p.name),
                p.count,
                p.total_s
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let sep = if i + 1 < self.workers.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"pool\": \"{}\", \"index\": {}, \"busy_s\": {:.6}, \
                 \"wall_s\": {:.6}, \"jobs\": {}, \"busy_fraction\": {:.4}}}{sep}\n",
                json::escape(&w.pool),
                w.index,
                w.busy_s,
                w.wall_s,
                w.jobs,
                w.busy_fraction
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": [\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {value}}}{sep}\n",
                json::escape(name)
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Live implementation (feature `enabled`)
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::{ObsConfig, PhaseStat, Report, Verbosity, WorkerStat};
    use crate::json;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::fmt;
    use std::fs::File;
    use std::io::{self, BufWriter, Write};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, RwLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(0);
    static SPAN_TOTALS: Mutex<BTreeMap<&'static str, (u64, u128)>> = Mutex::new(BTreeMap::new());
    static COUNTERS: RwLock<BTreeMap<&'static str, &'static AtomicU64>> =
        RwLock::new(BTreeMap::new());
    static WORKERS: Mutex<Vec<WorkerStat>> = Mutex::new(Vec::new());
    static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

    thread_local! {
        static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    fn t_us() -> u128 {
        epoch().elapsed().as_micros()
    }

    /// One JSON object per line; flushed per line so a crash (or a
    /// concurrent reader) never sees a partial record.
    fn emit(line: &str) {
        let mut sink = SINK.lock().expect("obs sink poisoned");
        if let Some(w) = sink.as_mut() {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }

    /// Install the runtime configuration: pin the epoch, open the JSONL
    /// sink (if any), and flip the collection switch.
    pub fn init(cfg: &ObsConfig) -> io::Result<()> {
        let _ = epoch();
        if let Some(path) = &cfg.sink {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let file = File::create(path)?;
            *SINK.lock().expect("obs sink poisoned") = Some(BufWriter::new(file));
        }
        ENABLED.store(cfg.enabled, Ordering::Release);
        emit(&format!("{{\"ev\":\"run_start\",\"t_us\":{}}}", t_us()));
        Ok(())
    }

    /// Flip the runtime collection switch.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Release);
    }

    /// Whether collection is active (one relaxed load — this is the
    /// entire cost of an instrument call while disabled at runtime).
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Add `delta` to the named counter. Registers the counter on first
    /// use; hot loops should batch locally and call this once per outer
    /// call.
    pub fn add(name: &'static str, delta: u64) {
        if !is_enabled() {
            return;
        }
        if let Some(c) = COUNTERS.read().expect("obs counters poisoned").get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let mut map = COUNTERS.write().expect("obs counters poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a named counter (0 if never touched).
    pub fn counter_value(name: &str) -> u64 {
        COUNTERS
            .read()
            .expect("obs counters poisoned")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// All counters and their totals, sorted by name.
    pub fn counters_snapshot() -> Vec<(String, u64)> {
        COUNTERS
            .read()
            .expect("obs counters poisoned")
            .iter()
            .map(|(name, c)| (name.to_string(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// RAII timing guard returned by [`span`] / [`span_labeled`].
    #[must_use]
    pub struct Span {
        inner: Option<SpanInner>,
    }

    struct SpanInner {
        name: &'static str,
        label: Option<String>,
        id: u64,
        parent: Option<u64>,
        start: u128,
        begin: Instant,
    }

    impl Span {
        /// The span's globally unique id (0 when collection is off).
        pub fn id(&self) -> u64 {
            self.inner.as_ref().map_or(0, |i| i.id)
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(inner) = self.inner.take() else { return };
            let dur = inner.begin.elapsed();
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&inner.id) {
                    stack.pop();
                }
            });
            {
                let mut totals = SPAN_TOTALS.lock().expect("obs spans poisoned");
                let entry = totals.entry(inner.name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur.as_nanos();
            }
            let label = inner
                .label
                .as_deref()
                .map(|l| format!(",\"label\":\"{}\"", json::escape(l)))
                .unwrap_or_default();
            let parent = inner.parent.map(|p| p.to_string()).unwrap_or_else(|| "null".into());
            emit(&format!(
                "{{\"ev\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\
                 \"t_us\":{},\"dur_us\":{}{}}}",
                json::escape(inner.name),
                inner.id,
                parent,
                inner.start,
                dur.as_micros(),
                label,
            ));
        }
    }

    fn open_span(name: &'static str, label: Option<String>) -> Span {
        if !is_enabled() {
            return Span { inner: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Span {
            inner: Some(SpanInner {
                name,
                label,
                id,
                parent,
                start: t_us(),
                begin: Instant::now(),
            }),
        }
    }

    /// Open a named timing span; closes (and records) on drop.
    pub fn span(name: &'static str) -> Span {
        open_span(name, None)
    }

    /// Open a span with a dynamic label (e.g. a benchmark name); totals
    /// aggregate under the static `name`, the label goes to the sink.
    pub fn span_labeled(name: &'static str, label: &str) -> Span {
        if !is_enabled() {
            return Span { inner: None };
        }
        open_span(name, Some(label.to_string()))
    }

    /// Per-worker utilization guard returned by [`worker`].
    #[must_use]
    pub struct Worker {
        inner: Option<WorkerInner>,
    }

    struct WorkerInner {
        pool: &'static str,
        index: usize,
        created: Instant,
        busy_ns: u128,
        jobs: u64,
    }

    impl Worker {
        /// Run one job under this worker, timing it as busy work.
        pub fn busy<R>(&mut self, f: impl FnOnce() -> R) -> R {
            match &mut self.inner {
                None => f(),
                Some(w) => {
                    let begin = Instant::now();
                    let r = f();
                    w.busy_ns += begin.elapsed().as_nanos();
                    w.jobs += 1;
                    r
                }
            }
        }
    }

    impl Drop for Worker {
        fn drop(&mut self) {
            let Some(w) = self.inner.take() else { return };
            let wall = w.created.elapsed();
            let wall_s = wall.as_secs_f64();
            let busy_s = w.busy_ns as f64 / 1e9;
            let stat = WorkerStat {
                pool: w.pool.to_string(),
                index: w.index,
                busy_s,
                wall_s,
                jobs: w.jobs,
                busy_fraction: if wall_s > 0.0 { busy_s / wall_s } else { 0.0 },
            };
            emit(&format!(
                "{{\"ev\":\"worker\",\"pool\":\"{}\",\"index\":{},\"busy_us\":{},\
                 \"wall_us\":{},\"jobs\":{}}}",
                json::escape(w.pool),
                w.index,
                w.busy_ns / 1_000,
                wall.as_micros(),
                w.jobs,
            ));
            WORKERS.lock().expect("obs workers poisoned").push(stat);
        }
    }

    /// Open a utilization guard for worker `index` of `pool`; records
    /// busy/wall time and job count on drop.
    pub fn worker(pool: &'static str, index: usize) -> Worker {
        if !is_enabled() {
            return Worker { inner: None };
        }
        Worker {
            inner: Some(WorkerInner { pool, index, created: Instant::now(), busy_ns: 0, jobs: 0 }),
        }
    }

    /// Mirror a log line into the JSONL sink.
    pub fn sink_log(level: Verbosity, target: &str, args: fmt::Arguments<'_>) {
        if !is_enabled() {
            return;
        }
        // Cheap pre-check: skip formatting entirely when no sink is open.
        if SINK.lock().expect("obs sink poisoned").is_none() {
            return;
        }
        let level = match level {
            Verbosity::Quiet => "error",
            Verbosity::Normal => "info",
            Verbosity::Verbose => "debug",
        };
        emit(&format!(
            "{{\"ev\":\"log\",\"t_us\":{},\"level\":\"{level}\",\"target\":\"{}\",\"msg\":\"{}\"}}",
            t_us(),
            json::escape(target),
            json::escape(&args.to_string()),
        ));
    }

    /// Aggregate everything collected so far into a [`Report`].
    pub fn report() -> Report {
        let phases = SPAN_TOTALS
            .lock()
            .expect("obs spans poisoned")
            .iter()
            .map(|(name, (count, ns))| PhaseStat {
                name: name.to_string(),
                count: *count,
                total_s: *ns as f64 / 1e9,
            })
            .collect();
        Report {
            wall_s: epoch().elapsed().as_secs_f64(),
            phases,
            workers: WORKERS.lock().expect("obs workers poisoned").clone(),
            counters: counters_snapshot(),
        }
    }

    /// Emit the final `run_end` event and flush the sink.
    pub fn finish() {
        emit(&format!("{{\"ev\":\"run_end\",\"t_us\":{}}}", t_us()));
        let mut sink = SINK.lock().expect("obs sink poisoned");
        if let Some(w) = sink.as_mut() {
            let _ = w.flush();
        }
    }

    /// Reset all global state. Test-only: not part of the public
    /// contract, and racy against concurrent instrumented threads.
    #[doc(hidden)]
    pub fn reset_for_tests() {
        ENABLED.store(false, Ordering::Release);
        SPAN_TOTALS.lock().expect("obs spans poisoned").clear();
        for (_, c) in COUNTERS.read().expect("obs counters poisoned").iter() {
            c.store(0, Ordering::Relaxed);
        }
        WORKERS.lock().expect("obs workers poisoned").clear();
        *SINK.lock().expect("obs sink poisoned") = None;
    }
}

// ---------------------------------------------------------------------------
// No-op implementation (feature off): every call inlines to nothing
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{ObsConfig, Report, Verbosity};
    use std::fmt;
    use std::io;

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn init(_cfg: &ObsConfig) -> io::Result<()> {
        Ok(())
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Always `false`: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn add(_name: &'static str, _delta: u64) {}

    /// Always 0: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn counter_value(_name: &str) -> u64 {
        0
    }

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn counters_snapshot() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Zero-sized stand-in for the live span guard.
    #[must_use]
    pub struct Span(());

    impl Span {
        /// Always 0: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn id(&self) -> u64 {
            0
        }
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn span_labeled(_name: &'static str, _label: &str) -> Span {
        Span(())
    }

    /// Zero-sized stand-in for the live worker guard.
    #[must_use]
    pub struct Worker(());

    impl Worker {
        /// Runs the job with no timing: the `enabled` feature is
        /// compiled out.
        #[inline(always)]
        pub fn busy<R>(&mut self, f: impl FnOnce() -> R) -> R {
            f()
        }
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn worker(_pool: &'static str, _index: usize) -> Worker {
        Worker(())
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn sink_log(_level: Verbosity, _target: &str, _args: fmt::Arguments<'_>) {}

    /// Always empty: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn report() -> Report {
        Report::default()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn finish() {}

    /// No-op: the `enabled` feature is compiled out.
    #[doc(hidden)]
    #[inline(always)]
    pub fn reset_for_tests() {}
}

pub use imp::{
    add, counter_value, counters_snapshot, finish, init, is_enabled, report, reset_for_tests,
    set_enabled, span, span_labeled, worker, Span, Worker,
};
