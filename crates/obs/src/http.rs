//! Shared std-only HTTP/1.1 plumbing for every in-process server and
//! smoke client: the telemetry status server ([`crate::telemetry`])
//! and the `mlpa-serve` analysis daemon both speak through this module.
//!
//! The protocol surface is deliberately tiny — one request per
//! connection, `Connection: close`, no chunked encoding, no keep-alive
//! — because every peer is either `curl` in a smoke script, a
//! Prometheus scraper, or our own [`get`]/[`post`] client. What the
//! module *is* careful about is hostile or broken peers:
//!
//! * every line read is **bounded** ([`Limits`]): a request line or
//!   header that never terminates cannot grow memory without limit;
//! * bodies are read only up to a declared, capped `Content-Length`;
//! * [`serve`] hands each accepted connection to its own thread, so a
//!   stalled client (slow-loris: connects, never sends a request line)
//!   ties up one thread until the read timeout instead of blocking the
//!   accept loop and every later request;
//! * handler panics are confined to the connection thread.
//!
//! Nothing here touches obs registries, so the module is compiled with
//! and without the `enabled` feature.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read timeout applied by [`serve`]; a stalled client
/// is dropped after this long without costing anyone else anything.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Input bounds enforced while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line length in bytes (method + path + version).
    pub max_request_line: usize,
    /// Maximum length of one header line.
    pub max_header_line: usize,
    /// Maximum total header bytes across all lines.
    pub max_header_bytes: usize,
    /// Maximum accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// Request target, verbatim (no percent-decoding).
    pub path: String,
    /// Request body, exactly `Content-Length` bytes.
    pub body: String,
}

/// Why a request could not be read. The server maps these onto 4xx
/// responses; [`RequestError::Closed`] (clean disconnect before any
/// bytes) gets no response at all.
#[derive(Debug)]
pub enum RequestError {
    /// Transport error (includes read-timeout expiry).
    Io(io::Error),
    /// Peer closed the connection before sending a request line.
    Closed,
    /// Syntactically invalid request (bad request line, non-UTF-8,
    /// unparsable `Content-Length`) — answered with `400`.
    Malformed(&'static str),
    /// A configured [`Limits`] bound was exceeded — answered with
    /// `431` (request line / headers) or `413` (body).
    TooLarge(&'static str),
}

/// Parse an HTTP/1.1 request line into `(method, path)`.
pub fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || method.is_empty() || path.is_empty() {
        return None;
    }
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    Some((method, path))
}

/// Read one `\n`-terminated line without the terminator (and without a
/// trailing `\r`), refusing to buffer more than `max` bytes. Unlike
/// `BufRead::read_line`, a peer that never sends a newline hits
/// [`RequestError::TooLarge`] instead of growing the buffer forever.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
    what: &'static str,
) -> Result<Vec<u8>, RequestError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(RequestError::Io)?;
        if buf.is_empty() {
            if line.is_empty() {
                return Err(RequestError::Closed);
            }
            break; // EOF mid-line: treat what we have as the line.
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                line.extend_from_slice(&buf[..i]);
                reader.consume(i + 1);
                break;
            }
            None => {
                line.extend_from_slice(buf);
                let n = buf.len();
                reader.consume(n);
            }
        }
        if line.len() > max {
            return Err(RequestError::TooLarge(what));
        }
    }
    if line.len() > max {
        return Err(RequestError::TooLarge(what));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(line)
}

/// Read one full request (request line, headers, body) from `reader`
/// under `limits`. Generic over `BufRead` so the parser is testable
/// against in-memory byte streams, not just sockets.
///
/// # Errors
///
/// See [`RequestError`].
pub fn read_request<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<Request, RequestError> {
    let line = read_line_bounded(reader, limits.max_request_line, "request line")?;
    let line = String::from_utf8(line).map_err(|_| RequestError::Malformed("request line"))?;
    let (method, path) =
        parse_request_line(&line).ok_or(RequestError::Malformed("request line"))?;
    let (method, path) = (method.to_string(), path.to_string());

    let mut content_len = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let h = match read_line_bounded(reader, limits.max_header_line, "header line") {
            Ok(h) => h,
            // EOF inside the header block is a truncated request.
            Err(RequestError::Closed) => return Err(RequestError::Malformed("headers")),
            Err(e) => return Err(e),
        };
        if h.is_empty() {
            break;
        }
        header_bytes += h.len();
        if header_bytes > limits.max_header_bytes {
            return Err(RequestError::TooLarge("headers"));
        }
        let h = String::from_utf8(h).map_err(|_| RequestError::Malformed("header"))?;
        if let Some((name, value)) = h.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_len =
                    value.trim().parse().map_err(|_| RequestError::Malformed("content-length"))?;
            }
        }
    }
    if content_len > limits.max_body_bytes {
        return Err(RequestError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_len];
    reader.read_exact(&mut body).map_err(RequestError::Io)?;
    let body = String::from_utf8(body).map_err(|_| RequestError::Malformed("body"))?;
    Ok(Request { method, path, body })
}

/// One response: status line, content type, extra headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status line tail, e.g. `200 OK`.
    pub status: String,
    /// `Content-Type` value.
    pub ctype: String,
    /// Extra headers (e.g. `Retry-After`), written verbatim.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A response with the given status line tail (`"200 OK"`).
    pub fn new(status: &str, ctype: &str, body: impl Into<String>) -> Response {
        Response {
            status: status.into(),
            ctype: ctype.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A `200 OK` response.
    pub fn ok(ctype: &str, body: impl Into<String>) -> Response {
        Response::new("200 OK", ctype, body)
    }

    /// A JSON `200 OK` response.
    pub fn json(body: impl Into<String>) -> Response {
        Response::ok("application/json", body)
    }

    /// Append an extra header.
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Write `response` (with `Content-Length` and `Connection: close`).
///
/// # Errors
///
/// Propagates transport errors (a peer that disconnected mid-response
/// surfaces here; [`serve`] ignores it and moves on).
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> io::Result<()> {
    write!(w, "HTTP/1.1 {}\r\nContent-Type: {}\r\n", response.status, response.ctype)?;
    for (name, value) in &response.headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "Content-Length: {}\r\nConnection: close\r\n\r\n", response.body.len())?;
    w.write_all(response.body.as_bytes())?;
    w.flush()
}

fn error_response(err: &RequestError) -> Option<Response> {
    match err {
        RequestError::Io(_) | RequestError::Closed => None,
        RequestError::Malformed(what) => {
            Some(Response::new("400 Bad Request", "text/plain", format!("bad request: {what}\n")))
        }
        RequestError::TooLarge("body") => {
            Some(Response::new("413 Payload Too Large", "text/plain", "body too large\n"))
        }
        RequestError::TooLarge(what) => Some(Response::new(
            "431 Request Header Fields Too Large",
            "text/plain",
            format!("{what} too long\n"),
        )),
    }
}

fn handle_conn<F>(stream: &mut TcpStream, handler: &F)
where
    F: Fn(&Request) -> Response,
{
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let response = match read_request(&mut reader, &Limits::default()) {
        Ok(req) => handler(&req),
        Err(e) => match error_response(&e) {
            Some(r) => r,
            None => return,
        },
    };
    // A peer that vanished mid-response is its own problem.
    let _ = write_response(stream, &response);
}

/// A running HTTP server; dropping the handle leaks the accept thread,
/// so call [`Server::stop`] for a clean shutdown.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl Server {
    /// The bound address (useful with port 0 = ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Connection threads
    /// already handling a request finish on their own.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        // Self-connect to wake the blocking accept loop.
        let _ = TcpStream::connect(self.addr);
        let _ = self.handle.join();
    }
}

/// Bind `127.0.0.1:port` (0 = ephemeral) and serve requests with
/// `handler` until [`Server::stop`]. Each accepted connection runs on
/// its own short-lived thread, so one stalled or slow client never
/// delays another ([`READ_TIMEOUT`] bounds how long it can hold its
/// thread). `name` labels the accept and connection threads.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<F>(port: u16, name: &str, handler: F) -> io::Result<Server>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let conn_name = format!("{name}-conn");
    let handle = std::thread::Builder::new().name(format!("{name}-accept")).spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::Relaxed) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            let handler = Arc::clone(&handler);
            // One thread per connection: accepts never wait on a
            // client's read timeout. On spawn failure the stream is
            // dropped (connection refused-by-close) — strictly better
            // than blocking every later client behind it.
            let _ = std::thread::Builder::new().name(conn_name.clone()).spawn(move || {
                handle_conn(&mut stream, &*handler);
            });
        }
    })?;
    Ok(Server { addr, stop, handle })
}

/// Minimal HTTP/1.1 GET client for tests and smoke scripts: returns
/// `(status code, body)`.
///
/// # Errors
///
/// Propagates connect/read errors; malformed responses surface as
/// `InvalidData`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"))
}

/// Minimal HTTP/1.1 POST client: sends `body` with the given content
/// type, returns `(status code, body)`.
///
/// # Errors
///
/// Propagates connect/read errors; malformed responses surface as
/// `InvalidData`.
pub fn post(addr: SocketAddr, path: &str, ctype: &str, body: &str) -> io::Result<(u16, String)> {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {ctype}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn request(addr: SocketAddr, raw: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.to_vec()), &Limits::default())
    }

    #[test]
    fn request_line_parses() {
        assert_eq!(parse_request_line("GET /metrics HTTP/1.1"), Some(("GET", "/metrics")));
        assert_eq!(parse_request_line("POST /x HTTP/1.0"), Some(("POST", "/x")));
        assert_eq!(parse_request_line("GET /metrics"), None);
        assert_eq!(parse_request_line("GET /a b HTTP/1.1"), None);
        assert_eq!(parse_request_line("GET /metrics SPDY/3"), None);
        assert_eq!(parse_request_line(" / HTTP/1.1"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    fn well_formed_requests_parse() {
        let req = parse(b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/status");
        assert_eq!(req.body, "");

        let req = parse(b"POST /analyze HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"a\"");

        // Bare-LF line endings are tolerated.
        let req = parse(b"GET /m HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/m");
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GARBAGE\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2 extra\r\n\r\n",
            b"\xff\xfe\xfd binary HTTP/1.1\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "expected Malformed for {raw:?}"
            );
        }
        // Clean disconnect before any bytes.
        assert!(matches!(parse(b""), Err(RequestError::Closed)));
        // Truncated header block (EOF before the blank line).
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: x\r\n"),
            Err(RequestError::Malformed("headers"))
        ));
    }

    #[test]
    fn oversized_inputs_hit_limits_without_unbounded_buffering() {
        // Request line far beyond the cap, never newline-terminated:
        // the slow-loris payload shape.
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        assert!(matches!(parse(&raw), Err(RequestError::TooLarge("request line"))));

        // One enormous header line.
        let mut raw = b"GET /x HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'b', 64 * 1024));
        raw.extend(b"\r\n\r\n");
        assert!(matches!(parse(&raw), Err(RequestError::TooLarge("header line"))));

        // Many small headers adding up past the total cap.
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..9000 {
            raw.extend(format!("X-{i}: y\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(matches!(parse(&raw), Err(RequestError::TooLarge("headers"))));

        // Declared body beyond the cap is refused before reading it.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(RequestError::TooLarge("body"))));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(RequestError::Io(_))));
    }

    #[test]
    fn fuzz_random_bytes_never_panic() {
        // Deterministic xorshift garbage: the parser must return (any
        // verdict is fine) without panicking or over-allocating.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 7, 64, 512, 4096] {
            for _ in 0..50 {
                let raw: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
                let _ = parse(&raw);
                // Same bytes with an HTTP-ish prefix exercise the
                // header path.
                let mut pre = b"GET /x HTTP/1.1\r\n".to_vec();
                pre.extend_from_slice(&raw);
                let _ = parse(&pre);
            }
        }
    }

    #[test]
    fn server_roundtrip_get_and_post() {
        let server = serve(0, "http-test", |req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/ping") => Response::ok("text/plain", "pong"),
            ("POST", "/echo") => Response::json(req.body.clone()),
            _ => Response::new("404 Not Found", "text/plain", "nope"),
        })
        .unwrap();
        let addr = server.addr();
        assert_eq!(get(addr, "/ping").unwrap(), (200, "pong".to_string()));
        assert_eq!(get(addr, "/other").unwrap(), (404, "nope".to_string()));
        assert_eq!(
            post(addr, "/echo", "application/json", "{\"k\":1}").unwrap(),
            (200, "{\"k\":1}".to_string())
        );
        server.stop();
    }

    #[test]
    fn stalled_connection_does_not_delay_other_requests() {
        let server = serve(0, "http-loris", |_| Response::ok("text/plain", "ok")).unwrap();
        let addr = server.addr();
        // Slow-loris: connect and send nothing. Hold the connection
        // open across the concurrent request below.
        let stalled = TcpStream::connect(addr).unwrap();
        // Another stalled client that sends a partial request line and
        // then goes quiet.
        let mut partial = TcpStream::connect(addr).unwrap();
        partial.write_all(b"GET /pa").unwrap();
        partial.flush().unwrap();

        let t0 = std::time::Instant::now();
        let (status, body) = get(addr, "/x").unwrap();
        let elapsed = t0.elapsed();
        assert_eq!((status, body.as_str()), (200, "ok"));
        assert!(
            elapsed < Duration::from_secs(2),
            "scrape stalled behind a slow-loris connection: {elapsed:?}"
        );
        drop(stalled);
        drop(partial);
        server.stop();
    }

    #[test]
    fn abrupt_disconnect_mid_response_does_not_kill_the_server() {
        let server =
            serve(0, "http-drop", |_| Response::ok("text/plain", "x".repeat(1 << 20))).unwrap();
        let addr = server.addr();
        for _ in 0..3 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /big HTTP/1.1\r\n\r\n").unwrap();
            // Close without reading the 1 MiB response: unread bytes
            // at close turn into RST, so the server's write path sees
            // ECONNRESET/EPIPE mid-response.
            drop(s);
        }
        // The server keeps answering after the aborted writes.
        let (status, body) = get(addr, "/big").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.len(), 1 << 20);
        server.stop();
    }

    #[test]
    fn requests_split_across_many_tcp_writes_still_parse() {
        let server =
            serve(0, "http-partial", |req| Response::ok("text/plain", req.body.clone())).unwrap();
        let addr = server.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        let raw = b"POST /slow HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for chunk in raw.chunks(7) {
            s.write_all(chunk).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.ends_with("hello"), "bad response: {out}");
        server.stop();
    }
}
