//! Dynamic instructions: what an execution trace is made of.
//!
//! An [`Instruction`] is an already-*resolved* trace record: memory
//! operations carry their effective address, branches carry their actual
//! direction and target. The detailed simulator is trace-driven — it
//! models timing (dependences, structural hazards, cache misses, branch
//! misprediction penalties) over the committed path, which is the
//! standard methodology for sampling-simulation studies.

use crate::block::BlockId;
use crate::op::OpClass;
use std::fmt;

/// An architectural register.
///
/// Registers 0..32 are the integer file, 32..64 the floating-point file
/// (32 + 32 as in Table I of the paper). [`Reg::NONE`] marks an absent
/// operand inside the compact operand arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of integer architectural registers.
    pub const NUM_INT: u8 = 32;
    /// Number of floating-point architectural registers.
    pub const NUM_FP: u8 = 32;
    /// Total architectural registers across both files.
    pub const NUM_TOTAL: u8 = Self::NUM_INT + Self::NUM_FP;
    /// Sentinel for "no register".
    pub const NONE: Reg = Reg(u8::MAX);

    /// Integer register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn int(i: u8) -> Reg {
        assert!(i < Self::NUM_INT, "integer register index {i} out of range");
        Reg(i)
    }

    /// Floating-point register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn fp(i: u8) -> Reg {
        assert!(i < Self::NUM_FP, "fp register index {i} out of range");
        Reg(Self::NUM_INT + i)
    }

    /// Whether this is the "no register" sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// Whether this names a real register.
    #[inline]
    pub fn is_some(self) -> bool {
        !self.is_none()
    }

    /// Flat index (0..64) into a combined register file; the sentinel has
    /// no index.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Reg::NONE`].
    #[inline]
    pub fn index(self) -> usize {
        assert!(self.is_some(), "Reg::NONE has no index");
        self.0 as usize
    }

    /// Raw scoreboard lane (0..256), defined for every value including
    /// [`Reg::NONE`] (lane 255). Lets hot loops index a 256-entry
    /// scoreboard branchlessly: real registers land in lanes 0..64 and
    /// the sentinel gets a dedicated lane the caller keeps pinned at a
    /// neutral value, so no `is_some()` test is needed per operand.
    #[inline]
    pub fn lane(self) -> usize {
        self.0 as usize
    }

    /// Whether this register belongs to the floating-point file.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.is_some() && self.0 >= Self::NUM_INT
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "r--")
        } else if self.is_fp() {
            write!(f, "f{}", self.0 - Self::NUM_INT)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Kind of a control-transfer instruction; the branch predictor treats
/// each kind differently (BTB, return-address stack, direction table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch (predicted by the direction predictor).
    Conditional,
    /// Unconditional direct jump (always taken, BTB supplies the target).
    Jump,
    /// Function call (pushes the return-address stack).
    Call,
    /// Function return (pops the return-address stack).
    Return,
    /// Indirect jump through a register (BTB-predicted target).
    Indirect,
}

/// Resolved outcome of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Static kind of the branch.
    pub kind: BranchKind,
    /// Actual direction: `true` if the branch was taken.
    pub taken: bool,
    /// Actual successor block (fall-through block when not taken).
    pub target: BlockId,
}

/// One dynamic instruction in an execution trace.
///
/// Compact and `Copy`; streams produce these in block-sized batches so
/// the simulators never allocate per instruction.
///
/// # Example
///
/// ```
/// use mlpa_isa::{Instruction, OpClass, Reg};
///
/// let ld = Instruction::load(Reg::int(4), Reg::int(5), 0x1000);
/// assert_eq!(ld.op, OpClass::Load);
/// assert_eq!(ld.addr, 0x1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation class (determines latency and functional unit).
    pub op: OpClass,
    /// Destination register, or [`Reg::NONE`].
    pub dst: Reg,
    /// Source registers; unused slots hold [`Reg::NONE`].
    pub srcs: [Reg; 2],
    /// Effective address for loads/stores; 0 otherwise.
    pub addr: u64,
    /// Branch outcome for control transfers; `None` otherwise.
    pub branch: Option<BranchInfo>,
}

impl Instruction {
    /// A register-to-register computational instruction.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class.
    #[inline]
    pub fn alu(op: OpClass, dst: Reg, srcs: [Reg; 2]) -> Instruction {
        assert!(
            !op.is_mem() && !op.is_branch(),
            "alu() requires a computational op class, got {op}"
        );
        Instruction { op, dst, srcs, addr: 0, branch: None }
    }

    /// A load from `addr` into `dst`, with `base` as the address operand.
    #[inline]
    pub fn load(dst: Reg, base: Reg, addr: u64) -> Instruction {
        Instruction { op: OpClass::Load, dst, srcs: [base, Reg::NONE], addr, branch: None }
    }

    /// A store of `value` to `addr`, with `base` as the address operand.
    #[inline]
    pub fn store(value: Reg, base: Reg, addr: u64) -> Instruction {
        Instruction { op: OpClass::Store, dst: Reg::NONE, srcs: [base, value], addr, branch: None }
    }

    /// A control-transfer instruction with a resolved outcome. `cond` is
    /// the register tested by conditional branches ([`Reg::NONE`] for
    /// unconditional kinds).
    #[inline]
    pub fn branch(kind: BranchKind, cond: Reg, taken: bool, target: BlockId) -> Instruction {
        Instruction {
            op: OpClass::Branch,
            dst: Reg::NONE,
            srcs: [cond, Reg::NONE],
            addr: 0,
            branch: Some(BranchInfo { kind, taken, target }),
        }
    }

    /// A no-op.
    #[inline]
    pub fn nop() -> Instruction {
        Instruction {
            op: OpClass::Nop,
            dst: Reg::NONE,
            srcs: [Reg::NONE, Reg::NONE],
            addr: 0,
            branch: None,
        }
    }

    /// `true` for loads and stores.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }

    /// `true` for control transfers.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.op.is_branch()
    }

    /// Iterator over the real (non-sentinel) source registers.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|r| r.is_some())
    }
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction::nop()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            OpClass::Load => write!(f, "load {} <- [{:#x}]", self.dst, self.addr),
            OpClass::Store => write!(f, "store {} -> [{:#x}]", self.srcs[1], self.addr),
            OpClass::Branch => {
                let b = self.branch.expect("branch op must carry BranchInfo");
                write!(
                    f,
                    "{:?} {} -> {}",
                    b.kind,
                    if b.taken { "taken" } else { "not-taken" },
                    b.target
                )
            }
            op => write!(f, "{op} {} <- {}, {}", self.dst, self.srcs[0], self.srcs[1]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_files_do_not_overlap() {
        assert_ne!(Reg::int(0), Reg::fp(0));
        assert_eq!(Reg::fp(0).index(), 32);
        assert!(Reg::fp(3).is_fp());
        assert!(!Reg::int(3).is_fp());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_int_bounds_checked() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_fp_bounds_checked() {
        let _ = Reg::fp(32);
    }

    #[test]
    fn none_sentinel_behaviour() {
        assert!(Reg::NONE.is_none());
        assert!(!Reg::NONE.is_fp());
        assert!(Reg::int(0).is_some());
    }

    #[test]
    #[should_panic(expected = "no index")]
    fn none_has_no_index() {
        let _ = Reg::NONE.index();
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = Instruction::load(Reg::int(1), Reg::int(2), 0xdead);
        assert!(ld.is_mem());
        assert_eq!(ld.addr, 0xdead);
        assert_eq!(ld.sources().count(), 1);

        let st = Instruction::store(Reg::int(3), Reg::int(4), 0xbeef);
        assert!(st.is_mem());
        assert!(st.dst.is_none());
        assert_eq!(st.sources().count(), 2);

        let br = Instruction::branch(BranchKind::Conditional, Reg::int(5), true, BlockId::new(7));
        assert!(br.is_branch());
        assert_eq!(br.branch.unwrap().target, BlockId::new(7));

        let nop = Instruction::nop();
        assert_eq!(nop.sources().count(), 0);
        assert_eq!(Instruction::default(), nop);
    }

    #[test]
    #[should_panic(expected = "computational op class")]
    fn alu_rejects_memory_ops() {
        let _ = Instruction::alu(OpClass::Load, Reg::int(0), [Reg::NONE, Reg::NONE]);
    }

    #[test]
    fn display_formats() {
        let ld = Instruction::load(Reg::int(1), Reg::int(2), 0x10);
        assert!(ld.to_string().contains("load"));
        let br = Instruction::branch(BranchKind::Jump, Reg::NONE, true, BlockId::new(0));
        assert!(br.to_string().contains("taken"));
        assert!(!Reg::NONE.to_string().is_empty());
    }

    #[test]
    fn instruction_is_compact() {
        // The generators produce hundreds of millions of these; keep the
        // trace record within a cache line's half.
        assert!(std::mem::size_of::<Instruction>() <= 32);
    }
}
