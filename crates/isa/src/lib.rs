#![warn(missing_docs)]

//! ISA and program IR for the `mlpa` sampling-simulation suite.
//!
//! This crate defines the vocabulary every other `mlpa` crate speaks:
//!
//! * [`OpClass`] — the operation classes of a small RISC-like instruction
//!   set, together with their execution latencies and the functional-unit
//!   pools ([`FuClass`]) that execute them.
//! * [`Instruction`] — one *dynamic* instruction as it appears in an
//!   execution trace: operation, register operands, resolved effective
//!   address for memory operations, and resolved outcome for branches.
//!   Streams of these drive both the functional and the detailed
//!   (cycle-level) simulator in `mlpa-sim`.
//! * [`BasicBlock`] / [`Program`] — the *static* side: basic blocks laid
//!   out at increasing addresses, so "backward branch" is meaningful to
//!   the dynamic loop detector in `mlpa-phase`.
//! * [`rng::SplitMix64`] — the single, bit-reproducible source of
//!   randomness used across the workspace (workload generation, random
//!   projection, k-means seeding). Using our own documented PRNG keeps
//!   every experiment reproducible across platforms and crate versions.
//!
//! # Example
//!
//! ```
//! use mlpa_isa::{Instruction, OpClass, Reg};
//!
//! let add = Instruction::alu(OpClass::IntAlu, Reg::int(1), [Reg::int(2), Reg::int(3)]);
//! assert_eq!(add.op, OpClass::IntAlu);
//! assert!(!add.is_mem());
//! ```

pub mod block;
pub mod inst;
pub mod op;
pub mod program;
pub mod rng;
pub mod stream;

pub use block::{BasicBlock, BlockId};
pub use inst::{BranchInfo, BranchKind, Instruction, Reg};
pub use op::{FuClass, OpClass};
pub use program::{Program, ProgramBuilder};
pub use stream::InstructionStream;
