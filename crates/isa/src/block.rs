//! Static basic blocks.

use std::fmt;

/// Identifier of a static basic block.
///
/// Block ids are dense indices into a [`Program`](crate::Program)'s block
/// table. Blocks are laid out at increasing addresses in id order, so id
/// comparisons and address comparisons agree — which is what makes
/// "backward branch" detection possible in the dynamic loop profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Create a block id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> BlockId {
        BlockId(index)
    }

    /// Dense index of this block.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw id value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<u32> for BlockId {
    fn from(v: u32) -> Self {
        BlockId(v)
    }
}

/// Static description of a basic block: where it lives and how big it is.
///
/// The *dynamic* contents (resolved addresses, branch outcomes) are
/// produced per execution by the workload generator; the static record
/// carries only what the simulators and profilers need to identify the
/// block: its start address and instruction count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// Start address in the (synthetic) text segment.
    pub addr: u64,
    /// Number of instructions in the block.
    pub len: u32,
}

impl BasicBlock {
    /// Address one past the last instruction of the block.
    #[inline]
    pub fn end_addr(&self) -> u64 {
        self.addr + u64::from(self.len) * crate::program::INST_BYTES
    }

    /// Address of the `i`-th instruction in the block.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len`.
    #[inline]
    pub fn inst_addr(&self, i: u32) -> u64 {
        assert!(i < self.len, "instruction index {i} out of block of len {}", self.len);
        self.addr + u64::from(i) * crate::program::INST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_roundtrip() {
        let id = BlockId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(BlockId::from(42u32), id);
        assert_eq!(id.to_string(), "B42");
    }

    #[test]
    fn block_addresses() {
        let b = BasicBlock { id: BlockId::new(0), addr: 0x100, len: 4 };
        assert_eq!(b.inst_addr(0), 0x100);
        assert_eq!(b.inst_addr(3), 0x100 + 3 * crate::program::INST_BYTES);
        assert_eq!(b.end_addr(), 0x100 + 4 * crate::program::INST_BYTES);
    }

    #[test]
    #[should_panic(expected = "out of block")]
    fn inst_addr_bounds_checked() {
        let b = BasicBlock { id: BlockId::new(0), addr: 0, len: 2 };
        let _ = b.inst_addr(2);
    }

    #[test]
    fn ordering_matches_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
    }
}
