//! Reproducible pseudo-random number generation.
//!
//! Every stochastic choice in the workspace — workload instruction mixes,
//! memory-address jitter, random projection matrices, k-means seeding —
//! flows through [`SplitMix64`]. The algorithm is fixed and documented
//! (Steele, Lea & Flood, OOPSLA 2014), so results are bit-identical
//! across platforms, Rust versions, and crate releases, which library
//! PRNGs explicitly do not promise. Reproducibility is a hard requirement
//! for a simulation-methodology study: the same benchmark seed must yield
//! the same trace in the profiling pass, the fast-forward pass, and the
//! detailed pass.

/// A `SplitMix64` pseudo-random generator.
///
/// Small (8 bytes), fast (one multiply-xor-shift chain per draw), and
/// *splittable*: [`SplitMix64::fork`] derives an independent child stream
/// from a tag, letting the workload generator give every benchmark,
/// phase, and block its own decorrelated stream without bookkeeping.
///
/// # Example
///
/// ```
/// use mlpa_isa::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
///
/// let mut child = a.fork(7);
/// let x = child.range_u64(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Next `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique; bias is < 2^-32 for the
    /// bounds used in this workspace (all far below 2^32), which is
    /// negligible for workload synthesis.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn range_usize(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Approximately standard-normal draw (Box–Muller, one branch of the
    /// pair). Used only to jitter workload parameters.
    #[inline]
    pub fn next_gauss(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Derive an independent child generator from this one plus a tag.
    ///
    /// Forking does not advance `self`, so the parent's own stream stays
    /// stable no matter how many children are forked.
    #[inline]
    pub fn fork(&self, tag: u64) -> SplitMix64 {
        SplitMix64::new(mix(self.state ^ mix(tag ^ GOLDEN_GAMMA)))
    }

    /// Skip `n` draws in O(1): the state advances by the golden gamma
    /// once per [`SplitMix64::next_u64`], so `n` draws forward is a
    /// single wrapping multiply-add. Every derived draw in this type
    /// consumes a fixed number of raw draws ([`SplitMix64::range_u64`],
    /// [`SplitMix64::chance`], and [`SplitMix64::next_f64`] one each,
    /// [`SplitMix64::next_gauss`] two), so callers can skip composite
    /// sequences exactly. Streaming consumers use this for cheap
    /// mid-trace entry: fast-forwarding a cursor past `n` addresses
    /// costs the same as past one.
    #[inline]
    pub fn skip(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA.wrapping_mul(n));
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_reference_values() {
        // Reference values from the canonical SplitMix64 with seed 0:
        // these pin the algorithm so refactors cannot silently change
        // every experiment in the repo.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_about_half() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(r.range_u64(17) < 17);
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn range_hits_all_small_values() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let _ = SplitMix64::new(1).range_u64(0);
    }

    #[test]
    fn fork_streams_are_decorrelated_and_stable() {
        let parent = SplitMix64::new(42);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let mut c1_again = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Forking is pure: same tag -> same child stream.
        let mut c1_fresh = SplitMix64::new(42).fork(1);
        c1_fresh.next_u64();
        assert_eq!(c1_again.next_u64(), {
            let mut c = SplitMix64::new(42).fork(1);
            c.next_u64()
        });
    }

    #[test]
    fn gauss_has_plausible_moments() {
        let mut r = SplitMix64::new(1234);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "gauss mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "gauss variance {var}");
    }

    #[test]
    fn skip_matches_sequential_draws() {
        for n in [0u64, 1, 2, 7, 1000, 123_456] {
            let mut seq = SplitMix64::new(77);
            for _ in 0..n {
                let _ = seq.next_u64();
            }
            let mut jump = SplitMix64::new(77);
            jump.skip(n);
            assert_eq!(seq, jump, "skip({n}) diverged from {n} sequential draws");
            assert_eq!(seq.next_u64(), jump.next_u64());
        }
    }

    #[test]
    fn skip_composes_additively() {
        let mut a = SplitMix64::new(9);
        a.skip(10);
        a.skip(32);
        let mut b = SplitMix64::new(9);
        b.skip(42);
        assert_eq!(a, b);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
