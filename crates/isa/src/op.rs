//! Operation classes, execution latencies, and functional-unit pools.
//!
//! The set mirrors what SimpleScalar's `sim-outorder` distinguishes for
//! scheduling purposes: integer ALU ops, integer multiply/divide, FP
//! add-class, FP multiply/divide, loads, stores, and branches.

use std::fmt;

/// Operation class of one instruction.
///
/// Latency and functional-unit requirements are derived from the class;
/// the sampling methodology never needs actual data semantics, only the
/// resource/behaviour class of each instruction.
///
/// # Example
///
/// ```
/// use mlpa_isa::{FuClass, OpClass};
///
/// assert_eq!(OpClass::Load.fu(), FuClass::LoadStore);
/// assert!(OpClass::FpDiv.latency() > OpClass::FpMul.latency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer add/sub/logic/shift/compare; 1-cycle.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Floating-point add/sub/convert/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide/sqrt (long latency, unpipelined).
    FpDiv,
    /// Memory load; latency comes from the cache hierarchy.
    Load,
    /// Memory store; retires through the store queue.
    Store,
    /// Control transfer (conditional, jump, call, return).
    Branch,
    /// No-op / system placeholder; occupies a slot only.
    Nop,
}

/// Functional-unit pool that executes a given [`OpClass`].
///
/// Pool sizes are configured per machine in `mlpa-sim` (Table I of the
/// paper: 8 integer ALUs, 4 load/store units, 2 FP adders, 2 integer
/// MULT/DIV, 2 FP MULT/DIV for the base configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuClass {
    /// Integer ALU pool (also executes branches and nops).
    IntAlu,
    /// Integer multiplier/divider pool.
    IntMulDiv,
    /// Floating-point adder pool.
    FpAdd,
    /// Floating-point multiplier/divider pool.
    FpMulDiv,
    /// Load/store (address-generation + memory port) pool.
    LoadStore,
}

/// All operation classes, in a fixed order usable for table indexing.
pub const ALL_OP_CLASSES: [OpClass; 10] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
    OpClass::Nop,
];

impl OpClass {
    /// Execution latency in cycles, *excluding* memory-hierarchy latency
    /// for loads/stores (the simulator adds cache latency on top of the
    /// 1-cycle address generation modelled here).
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Nop => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// Whether the unit executing this class is pipelined (can accept a
    /// new operation every cycle). Divides are classically unpipelined.
    #[inline]
    pub fn pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }

    /// Functional-unit pool required by this class.
    #[inline]
    pub fn fu(self) -> FuClass {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Nop => FuClass::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuClass::IntMulDiv,
            OpClass::FpAdd => FuClass::FpAdd,
            OpClass::FpMul | OpClass::FpDiv => FuClass::FpMulDiv,
            OpClass::Load | OpClass::Store => FuClass::LoadStore,
        }
    }

    /// `true` for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for control-transfer instructions.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// `true` for floating-point classes (used by the register allocator
    /// in the workload generator to pick FP vs integer registers).
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Stable small index (0..10) for building per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 5,
            OpClass::Load => 6,
            OpClass::Store => 7,
            OpClass::Branch => 8,
            OpClass::Nop => 9,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMulDiv => "int-muldiv",
            FuClass::FpAdd => "fp-add",
            FuClass::FpMulDiv => "fp-muldiv",
            FuClass::LoadStore => "load-store",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 10];
        for op in ALL_OP_CLASSES {
            let i = op.index();
            assert!(i < 10);
            assert!(!seen[i], "duplicate index for {op}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn latency_ordering_is_sensible() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert!(OpClass::IntDiv.latency() > OpClass::IntMul.latency());
        assert!(OpClass::FpDiv.latency() > OpClass::FpMul.latency());
        assert!(OpClass::FpMul.latency() > OpClass::FpAdd.latency());
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!OpClass::IntDiv.pipelined());
        assert!(!OpClass::FpDiv.pipelined());
        assert!(OpClass::IntMul.pipelined());
        assert!(OpClass::Load.pipelined());
    }

    #[test]
    fn fu_assignment_matches_class_family() {
        assert_eq!(OpClass::Branch.fu(), FuClass::IntAlu);
        assert_eq!(OpClass::IntMul.fu(), FuClass::IntMulDiv);
        assert_eq!(OpClass::IntDiv.fu(), FuClass::IntMulDiv);
        assert_eq!(OpClass::Load.fu(), FuClass::LoadStore);
        assert_eq!(OpClass::Store.fu(), FuClass::LoadStore);
        assert_eq!(OpClass::FpAdd.fu(), FuClass::FpAdd);
        assert_eq!(OpClass::FpDiv.fu(), FuClass::FpMulDiv);
    }

    #[test]
    fn predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(OpClass::Branch.is_branch());
        assert!(OpClass::FpAdd.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let names: Vec<String> = ALL_OP_CLASSES.iter().map(|o| o.to_string()).collect();
        for n in &names {
            assert!(!n.is_empty());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
