//! The instruction-stream abstraction that connects workloads to
//! simulators and profilers.
//!
//! A stream produces the dynamic execution trace one basic block at a
//! time. Block-at-a-time delivery keeps the hot loop allocation-free:
//! consumers own a scratch [`Vec<Instruction>`] that the stream refills.

use crate::block::BlockId;
use crate::inst::Instruction;

/// A source of dynamic basic blocks.
///
/// Implementors must be *deterministic*: two streams constructed with
/// identical parameters must produce identical traces. The sampling
/// methodology re-walks the same trace in separate profiling,
/// fast-forward, and detailed passes and relies on them agreeing.
///
/// # Example
///
/// ```
/// use mlpa_isa::stream::{InstructionStream, SliceStream};
/// use mlpa_isa::{BlockId, Instruction};
///
/// let trace = vec![(BlockId::new(0), vec![Instruction::nop()])];
/// let mut s = SliceStream::new(&trace);
/// let mut buf = Vec::new();
/// assert_eq!(s.next_block(&mut buf), Some(BlockId::new(0)));
/// assert_eq!(buf.len(), 1);
/// assert_eq!(s.next_block(&mut buf), None);
/// ```
pub trait InstructionStream {
    /// Write the next dynamic basic block's instructions into `out`
    /// (clearing it first) and return the block's id, or `None` when the
    /// trace is exhausted. After `None`, further calls keep returning
    /// `None`.
    fn next_block(&mut self, out: &mut Vec<Instruction>) -> Option<BlockId>;

    /// Advance past the next block, returning only its metadata
    /// `(id, instruction count)` — the *shape* of the trace without the
    /// instruction contents.
    ///
    /// The stream must end up in exactly the state a [`next_block`]
    /// call would have left it in: interleaving meta and full steps in
    /// any order yields the same trace as full emission throughout
    /// (generative streams realise this by advancing their cursors with
    /// O(1) skips instead of materialising addresses). BBV profilers
    /// and trace-length measurement consume only `(id, len)`, so a
    /// meta walk lets them run without paying for instruction
    /// materialisation — the lever behind segment-sharded profiling.
    ///
    /// The default implementation materialises into `scratch` and
    /// discards it; implementors with cheap skips should override.
    ///
    /// [`next_block`]: InstructionStream::next_block
    fn next_block_meta(&mut self, scratch: &mut Vec<Instruction>) -> Option<BlockMeta> {
        let id = self.next_block(scratch)?;
        Some(BlockMeta { id, insts: scratch.len() as u64 })
    }
}

/// Metadata of one dynamic block, as yielded by
/// [`InstructionStream::next_block_meta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// The block's id.
    pub id: BlockId,
    /// Dynamic instruction count of this block instance.
    pub insts: u64,
}

impl<S: InstructionStream + ?Sized> InstructionStream for &mut S {
    fn next_block(&mut self, out: &mut Vec<Instruction>) -> Option<BlockId> {
        (**self).next_block(out)
    }

    fn next_block_meta(&mut self, scratch: &mut Vec<Instruction>) -> Option<BlockMeta> {
        (**self).next_block_meta(scratch)
    }
}

impl<S: InstructionStream + ?Sized> InstructionStream for Box<S> {
    fn next_block(&mut self, out: &mut Vec<Instruction>) -> Option<BlockId> {
        (**self).next_block(out)
    }

    fn next_block_meta(&mut self, scratch: &mut Vec<Instruction>) -> Option<BlockMeta> {
        (**self).next_block_meta(scratch)
    }
}

/// A stream replaying a pre-recorded trace; chiefly useful in tests.
#[derive(Debug, Clone)]
pub struct SliceStream<'a> {
    trace: &'a [(BlockId, Vec<Instruction>)],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Replay the given `(block, instructions)` records in order.
    pub fn new(trace: &'a [(BlockId, Vec<Instruction>)]) -> SliceStream<'a> {
        SliceStream { trace, pos: 0 }
    }
}

impl InstructionStream for SliceStream<'_> {
    fn next_block(&mut self, out: &mut Vec<Instruction>) -> Option<BlockId> {
        let (id, insts) = self.trace.get(self.pos)?;
        self.pos += 1;
        out.clear();
        out.extend_from_slice(insts);
        Some(*id)
    }
}

/// Count the total instructions and blocks remaining in a stream,
/// consuming it. Handy for tests and for measuring trace lengths.
pub fn drain_count<S: InstructionStream>(mut stream: S) -> StreamStats {
    let mut buf = Vec::new();
    let mut stats = StreamStats::default();
    while stream.next_block(&mut buf).is_some() {
        stats.blocks += 1;
        stats.instructions += buf.len() as u64;
    }
    stats
}

/// [`drain_count`] over the metadata-only walk: identical totals, no
/// instruction materialisation where the stream supports cheap skips.
pub fn drain_meta_count<S: InstructionStream>(mut stream: S) -> StreamStats {
    let mut scratch = Vec::new();
    let mut stats = StreamStats::default();
    while let Some(m) = stream.next_block_meta(&mut scratch) {
        stats.blocks += 1;
        stats.instructions += m.insts;
    }
    stats
}

/// Totals reported by [`drain_count`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Dynamic basic blocks in the trace.
    pub blocks: u64,
    /// Dynamic instructions in the trace.
    pub instructions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<(BlockId, Vec<Instruction>)> {
        vec![
            (BlockId::new(0), vec![Instruction::nop(); 3]),
            (BlockId::new(1), vec![Instruction::nop(); 2]),
        ]
    }

    #[test]
    fn slice_stream_replays_in_order() {
        let t = trace();
        let mut s = SliceStream::new(&t);
        let mut buf = Vec::new();
        assert_eq!(s.next_block(&mut buf), Some(BlockId::new(0)));
        assert_eq!(buf.len(), 3);
        assert_eq!(s.next_block(&mut buf), Some(BlockId::new(1)));
        assert_eq!(buf.len(), 2);
        assert_eq!(s.next_block(&mut buf), None);
        assert_eq!(s.next_block(&mut buf), None, "stream stays exhausted");
    }

    #[test]
    fn drain_count_totals() {
        let t = trace();
        let stats = drain_count(SliceStream::new(&t));
        assert_eq!(stats, StreamStats { blocks: 2, instructions: 5 });
    }

    #[test]
    fn default_meta_walk_matches_full_walk() {
        let t = trace();
        let mut s = SliceStream::new(&t);
        let mut scratch = Vec::new();
        assert_eq!(
            s.next_block_meta(&mut scratch),
            Some(BlockMeta { id: BlockId::new(0), insts: 3 })
        );
        // Meta and full steps interleave on the same stream.
        let mut buf = Vec::new();
        assert_eq!(s.next_block(&mut buf), Some(BlockId::new(1)));
        assert_eq!(s.next_block_meta(&mut scratch), None);
        assert_eq!(drain_meta_count(SliceStream::new(&t)), drain_count(SliceStream::new(&t)));
    }

    #[test]
    fn trait_objects_and_refs_work() {
        let t = trace();
        let mut s = SliceStream::new(&t);
        let mut buf = Vec::new();
        // &mut S forwards.
        let r: &mut dyn InstructionStream = &mut s;
        assert!(r.next_block(&mut buf).is_some());
        // Box<dyn> forwards.
        let mut b: Box<dyn InstructionStream + '_> = Box::new(SliceStream::new(&t));
        assert!(b.next_block(&mut buf).is_some());
    }
}
