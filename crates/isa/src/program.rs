//! Static programs: a laid-out collection of basic blocks.

use crate::block::{BasicBlock, BlockId};
use std::fmt;

/// Bytes per instruction in the synthetic text segment (fixed-width ISA).
pub const INST_BYTES: u64 = 4;

/// Base address of the text segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// A static program: basic blocks laid out contiguously at increasing
/// addresses, in id order.
///
/// The program is the static side of a workload. It answers questions the
/// simulators and profilers ask — "where does block B live?", "how many
/// static blocks exist?" (the BBV dimensionality) — while the dynamic
/// instruction stream is produced separately by `mlpa-workloads`.
///
/// # Example
///
/// ```
/// use mlpa_isa::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new("demo");
/// let b0 = b.add_block(3);
/// let b1 = b.add_block(5);
/// let prog = b.finish();
/// assert_eq!(prog.num_blocks(), 2);
/// assert!(prog.block(b1).addr > prog.block(b0).addr);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
}

impl Program {
    /// Program name (benchmark identifier).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static basic blocks (the raw BBV dimensionality).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Look up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a block of this program.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All blocks in layout (= id) order.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Whether a control transfer from `from` to `to` is a *backward*
    /// branch in the layout — the signal the dynamic loop detector uses
    /// to discover loop headers.
    #[inline]
    pub fn is_backward(&self, from: BlockId, to: BlockId) -> bool {
        self.block(to).addr <= self.block(from).addr
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} blocks)", self.name, self.blocks.len())
    }
}

/// Builder for [`Program`]: append blocks, get ids back, finish.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    next_addr: u64,
}

impl ProgramBuilder {
    /// Start building a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder { name: name.into(), blocks: Vec::new(), next_addr: TEXT_BASE }
    }

    /// Append a block of `len` instructions; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` (empty basic blocks cannot appear in a trace).
    pub fn add_block(&mut self, len: u32) -> BlockId {
        assert!(len > 0, "basic blocks must contain at least one instruction");
        let id = BlockId::new(u32::try_from(self.blocks.len()).expect("too many blocks"));
        let block = BasicBlock { id, addr: self.next_addr, len };
        self.next_addr = block.end_addr();
        self.blocks.push(block);
        id
    }

    /// Number of blocks added so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks have been added yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Finish and return the immutable [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if no blocks were added.
    pub fn finish(self) -> Program {
        assert!(!self.blocks.is_empty(), "a program needs at least one block");
        Program { name: self.name, blocks: self.blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_increasing() {
        let mut b = ProgramBuilder::new("t");
        let ids: Vec<BlockId> = (1..=5).map(|n| b.add_block(n)).collect();
        let p = b.finish();
        assert_eq!(p.num_blocks(), 5);
        for w in ids.windows(2) {
            let (a, c) = (p.block(w[0]), p.block(w[1]));
            assert_eq!(a.end_addr(), c.addr, "blocks must be contiguous");
        }
        assert_eq!(p.block(ids[0]).addr, TEXT_BASE);
    }

    #[test]
    fn backwardness_matches_id_order() {
        let mut b = ProgramBuilder::new("t");
        let b0 = b.add_block(1);
        let b1 = b.add_block(1);
        let p = b.finish();
        assert!(p.is_backward(b1, b0));
        assert!(p.is_backward(b0, b0), "self-loop counts as backward");
        assert!(!p.is_backward(b0, b1));
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_length_blocks_rejected() {
        let mut b = ProgramBuilder::new("t");
        let _ = b.add_block(0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_programs_rejected() {
        let _ = ProgramBuilder::new("t").finish();
    }

    #[test]
    fn display_mentions_name_and_size() {
        let mut b = ProgramBuilder::new("bench");
        b.add_block(2);
        let p = b.finish();
        let s = p.to_string();
        assert!(s.contains("bench") && s.contains('1'));
    }
}
