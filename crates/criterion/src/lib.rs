//! A vendored, dependency-free stand-in for the [Criterion.rs] benchmark
//! harness, exposing exactly the subset of its API that this workspace's
//! benches use (`Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! throughput, bench_function, finish}`, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros).
//!
//! The container this repo builds in has no access to crates.io, so the
//! real Criterion cannot be fetched. Rather than deleting every bench,
//! this shim keeps them compiling and *measuring*: each `bench_function`
//! performs a short warm-up, runs `sample_size` timed iterations, and
//! prints min/mean/max wall-clock per iteration (plus throughput when
//! configured). It does no statistical outlier analysis and writes no
//! HTML reports.
//!
//! [Criterion.rs]: https://github.com/bheisler/criterion.rs
//!
//! Two extensions beyond printing:
//!
//! * every `bench_function` pushes a [`Measurement`] into a process-wide
//!   buffer that a custom `main` can drain with [`take_measurements`]
//!   (the bench harness uses this to emit `BENCH_phase.json`);
//! * setting the `MLPA_BENCH_SMOKE` environment variable forces one
//!   sample per benchmark, so CI can run every bench once as a smoke
//!   test without paying for full sample counts.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded benchmark timing, as drained by [`take_measurements`].
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean wall-clock per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample, in nanoseconds.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drain every measurement recorded since the last call (process-wide,
/// in execution order).
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement buffer poisoned"))
}

/// Whether the smoke-test mode is active (`MLPA_BENCH_SMOKE` set to
/// anything non-empty): every benchmark runs exactly one timed sample.
fn smoke_mode() -> bool {
    std::env::var_os("MLPA_BENCH_SMOKE").is_some_and(|v| !v.is_empty())
}

/// Throughput configuration for a benchmark group (subset of Criterion's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples (after one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark (Criterion's
    /// minimum is 10; this shim accepts any positive value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record throughput alongside the timing report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let sample_size = if smoke_mode() { 1 } else { self.sample_size };
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        MEASUREMENTS.lock().expect("measurement buffer poisoned").push(Measurement {
            group: self.name.clone(),
            id: id.to_string(),
            mean_ns: mean.as_nanos() as f64,
            min_ns: min.as_nanos() as f64,
            max_ns: max.as_nanos() as f64,
            samples: b.samples.len(),
        });
        let mut line = format!(
            "{}/{}: [{} {} {}]",
            self.name,
            id,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(e) => (e, "elem"),
                Throughput::Bytes(by) => (by, "B"),
            };
            let per_sec = count as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
            line.push_str(&format!(" {:.3e} {unit}/s", per_sec));
        }
        println!("{line}");
        self
    }

    /// End the group (Criterion finalises reports here; the shim has
    /// nothing left to do).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 100, throughput: None, _criterion: self }
    }
}

/// Format a duration the way Criterion's reports do (adaptive unit).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`
/// targets, mirroring Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 7 };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 7);
        assert_eq!(calls, 8, "one warm-up call plus seven timed samples");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn measurements_are_recorded_and_drained() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("record-test");
        group.sample_size(3);
        group.bench_function("probe", |b| b.iter(|| std::hint::black_box(2 * 2)));
        group.finish();
        // Other tests share the process-wide buffer; inspect only our
        // own group's entry.
        let ours: Vec<Measurement> =
            take_measurements().into_iter().filter(|m| m.group == "record-test").collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].id, "probe");
        assert_eq!(ours[0].samples, 3);
        assert!(ours[0].min_ns <= ours[0].mean_ns && ours[0].mean_ns <= ours[0].max_ns);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
