//! Working-set signatures — the phase metric of Dhodapkar & Smith
//! (MICRO 2003), which the paper cites in §II with the conclusion that
//! "BBV performs better than other instruction-execution related
//! metrics, such as the working set".
//!
//! A working-set signature summarises *which memory* an interval
//! touches rather than *which code* it executes: touched cache-line
//! addresses are hashed into a fixed-width occupancy sketch. Two
//! intervals running different code over the same data look identical
//! to a WSS — the weakness that makes BBVs win, and that the
//! `ablation_metric` bench demonstrates.

use crate::interval::Interval;
use mlpa_isa::{BlockId, Instruction};
use mlpa_sim::functional::Observer;
use std::collections::HashSet;

/// Fixed-length interval profiler collecting hashed working-set
/// signatures of data accesses.
///
/// Each *distinct* touched line address is hashed into one of `dim`
/// buckets; the signature is the per-bucket distinct-line count,
/// normalised by interval length — so both the working set's *size*
/// (overall magnitude: new lines per instruction) and its *identity*
/// (bucket shape) survive. (Dhodapkar & Smith used a bit-vector;
/// normalised counts retain slightly more information and cluster
/// better, which only *strengthens* the BBV-vs-WSS comparison when BBV
/// still wins.)
///
/// # Example
///
/// ```
/// use mlpa_phase::wss::WssProfiler;
/// use mlpa_sim::FunctionalSim;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut prof = WssProfiler::new(10_000, 32);
/// FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
/// let intervals = prof.finish();
/// assert_eq!(intervals[0].vector.len(), 32);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct WssProfiler {
    interval_len: u64,
    dim: usize,
    buckets: Vec<f64>,
    seen: HashSet<u64>,
    count_insts: u64,
    start: u64,
    intervals: Vec<Interval>,
    /// Line-granularity shift (32-byte lines).
    line_shift: u32,
}

impl WssProfiler {
    /// Create a profiler with `dim` hash buckets per signature.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` or `dim` is zero.
    pub fn new(interval_len: u64, dim: usize) -> WssProfiler {
        assert!(interval_len > 0, "interval length must be positive");
        assert!(dim > 0, "signature dimension must be positive");
        WssProfiler {
            interval_len,
            dim,
            buckets: vec![0.0; dim],
            seen: HashSet::new(),
            count_insts: 0,
            start: 0,
            intervals: Vec::new(),
            line_shift: 5,
        }
    }

    fn flush(&mut self) {
        if self.count_insts == 0 {
            return;
        }
        // Normalise by interval length while copying out: the magnitude
        // carries the working-set *rate* (distinct lines per
        // instruction). The bucket buffer is zeroed and reused rather
        // than reallocated per interval.
        let inv = 1.0 / self.count_insts as f64;
        let vector: Vec<f64> = self.buckets.iter().map(|v| v * inv).collect();
        self.buckets.fill(0.0);
        self.seen.clear();
        self.intervals.push(Interval {
            index: self.intervals.len(),
            start: self.start,
            len: self.count_insts,
            vector,
        });
        self.start += self.count_insts;
        self.count_insts = 0;
    }

    /// Flush the trailing interval and return all intervals.
    pub fn finish(mut self) -> Vec<Interval> {
        self.flush();
        self.intervals
    }
}

/// SplitMix-style line-address hash (stateless).
#[inline]
fn hash_line(line: u64) -> u64 {
    let mut z = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

impl Observer for WssProfiler {
    fn on_block(&mut self, _id: BlockId, insts: &[Instruction], _first: u64) {
        for inst in insts {
            if inst.is_mem() {
                let line = inst.addr >> self.line_shift;
                if self.seen.insert(line) {
                    let bucket = (hash_line(line) % self.dim as u64) as usize;
                    self.buckets[bucket] += 1.0;
                }
            }
        }
        self.count_insts += insts.len() as u64;
        if self.count_insts >= self.interval_len {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::validate_intervals;
    use crate::project::distance_sq;
    use mlpa_sim::FunctionalSim;
    use mlpa_workloads::behavior::MemoryPattern;
    use mlpa_workloads::spec::{BenchmarkSpec, BlockSpec, PhaseSpec, ScriptEntry};
    use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

    fn profile(cb: &CompiledBenchmark, len: u64, dim: usize) -> Vec<Interval> {
        let mut prof = WssProfiler::new(len, dim);
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
        prof.finish()
    }

    /// Two phases with *different working sets*.
    fn distinct_data_cb() -> CompiledBenchmark {
        let mk = |name: &str, ws: u64| PhaseSpec {
            name: name.into(),
            blocks: vec![BlockSpec {
                mem: MemoryPattern::RandomInSet { working_set: ws },
                ..BlockSpec::default()
            }],
            ..PhaseSpec::default()
        };
        let spec = BenchmarkSpec {
            phases: vec![mk("small", 8 * 1024), mk("large", 1 << 20)],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 50_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn intervals_tile_and_normalise() {
        let cb = distinct_data_cb();
        let ivs = profile(&cb, 10_000, 32);
        validate_intervals(&ivs).unwrap();
        for iv in &ivs {
            let sum: f64 = iv.vector.iter().sum();
            // Sum = distinct lines / instructions, always below 1.
            assert!((0.0..1.0).contains(&sum), "signature sum {sum}");
        }
    }

    #[test]
    fn different_working_sets_separate() {
        let cb = distinct_data_cb();
        let ivs = profile(&cb, 25_000, 32);
        // The script alternates phases every 50 k instructions, so with
        // 25 k intervals (offset by the ~2 k init) the *pure* intervals
        // are ivs[1] (phase A), ivs[3] (phase B), ivs[5] (phase A), ….
        // Same-phase intervals must be closer than cross-phase ones —
        // the data regions differ, so both magnitude and bucket shape
        // differ.
        let same = distance_sq(&ivs[1].vector, &ivs[5].vector);
        let cross = distance_sq(&ivs[1].vector, &ivs[3].vector);
        assert!(cross > same * 2.0, "cross-phase distance {cross:.6} vs same-phase {same:.6}");
    }

    #[test]
    fn same_data_different_code_is_invisible() {
        // Two phases over the SAME region with different code: WSS
        // cannot tell them apart (the weakness BBVs do not have).
        let mk = |name: &str| PhaseSpec {
            name: name.into(),
            blocks: vec![BlockSpec {
                mem: MemoryPattern::RandomInSet { working_set: 64 * 1024 },
                ..BlockSpec::default()
            }],
            ..PhaseSpec::default()
        };
        let spec = BenchmarkSpec {
            phases: vec![mk("a"), mk("b")],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 50_000)).collect(),
            ..BenchmarkSpec::default()
        };
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let ivs = profile(&cb, 25_000, 32);
        let body = &ivs[1..ivs.len() - 1];
        let cross = distance_sq(&body[0].vector, &body[1].vector);
        // Signatures nearly identical: uniform random over the same
        // region hashes to near-uniform occupancy either way.
        assert!(cross < 0.01, "cross-phase WSS distance {cross:.4} should collapse");
    }

    #[test]
    fn deterministic() {
        let cb = distinct_data_cb();
        assert_eq!(profile(&cb, 9_000, 16), profile(&cb, 9_000, 16));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = WssProfiler::new(1_000, 0);
    }
}
