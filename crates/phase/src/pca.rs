//! Principal-component analysis via power iteration with deflation —
//! used to render Fig. 1's one-dimensional phase curves from 15-D BBV
//! signatures.

use mlpa_isa::rng::SplitMix64;

/// PCA of a data matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// Unit-norm principal directions, strongest first.
    pub components: Vec<Vec<f64>>,
    /// Variance captured by each component.
    pub eigenvalues: Vec<f64>,
    /// Per-sample mean that was subtracted.
    pub mean: Vec<f64>,
}

impl Pca {
    /// Project a sample onto component `c` (mean-centred score).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or `x` has the wrong length.
    pub fn score(&self, x: &[f64], c: usize) -> f64 {
        assert!(c < self.components.len(), "component {c} out of range");
        assert_eq!(x.len(), self.mean.len(), "dimensionality mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.components[c])
            .map(|((&xi, &mi), &wi)| (xi - mi) * wi)
            .sum()
    }

    /// Scores of every row of `data` on component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or a row has the wrong length.
    pub fn scores(&self, data: &[Vec<f64>], c: usize) -> Vec<f64> {
        data.iter().map(|x| self.score(x, c)).collect()
    }
}

/// Compute the top `k` principal components of `data` (rows = samples).
///
/// Builds the d×d covariance (d is small — 15 for BBV signatures) and
/// power-iterates with deflation. Deterministic given `seed`.
///
/// # Panics
///
/// Panics if `data` is empty, rows have unequal lengths, or `k` is zero.
///
/// # Example
///
/// ```
/// use mlpa_phase::pca::principal_components;
///
/// // Points along the diagonal: the first PC is (±1/√2, ±1/√2).
/// let data: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, i as f64]).collect();
/// let pca = principal_components(&data, 1, 0);
/// let c = &pca.components[0];
/// assert!((c[0].abs() - (0.5f64).sqrt()).abs() < 1e-6);
/// assert!((c[0] - c[1]).abs() < 1e-6);
/// ```
pub fn principal_components(data: &[Vec<f64>], k: usize, seed: u64) -> Pca {
    assert!(!data.is_empty(), "pca needs data");
    assert!(k > 0, "k must be positive");
    let d = data[0].len();
    assert!(data.iter().all(|r| r.len() == d), "inconsistent dimensionality");
    let n = data.len() as f64;

    let mut mean = vec![0.0; d];
    for row in data {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n;
    }

    // Covariance (d × d, row-major).
    let mut cov = vec![0.0; d * d];
    for row in data {
        for i in 0..d {
            let xi = row[i] - mean[i];
            for j in i..d {
                cov[i * d + j] += xi * (row[j] - mean[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            let v = cov[i * d + j] / n;
            cov[i * d + j] = v;
            cov[j * d + i] = v;
        }
    }

    let mut rng = SplitMix64::new(seed).fork(0x50434100);
    let mut components = Vec::with_capacity(k);
    let mut eigenvalues = Vec::with_capacity(k);
    let k = k.min(d);
    for _ in 0..k {
        let (v, lambda) = power_iterate(&cov, d, &mut rng);
        // Deflate: cov -= λ v vᵀ.
        for i in 0..d {
            for j in 0..d {
                cov[i * d + j] -= lambda * v[i] * v[j];
            }
        }
        components.push(v);
        eigenvalues.push(lambda.max(0.0));
    }

    Pca { components, eigenvalues, mean }
}

fn power_iterate(cov: &[f64], d: usize, rng: &mut SplitMix64) -> (Vec<f64>, f64) {
    let mut v: Vec<f64> = (0..d).map(|_| rng.next_gauss()).collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..500 {
        let mut w = vec![0.0; d];
        for i in 0..d {
            let mut s = 0.0;
            for j in 0..d {
                s += cov[i * d + j] * v[j];
            }
            w[i] = s;
        }
        let new_lambda: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        let norm = normalize(&mut w);
        if norm < 1e-300 {
            // Zero matrix (or fully deflated): any direction works.
            return (v, 0.0);
        }
        let converged = (new_lambda - lambda).abs() <= 1e-12 * new_lambda.abs().max(1.0);
        v = w;
        lambda = new_lambda;
        if converged {
            break;
        }
    }
    (v, lambda)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_captures_dominant_direction() {
        // Anisotropic cloud: x-variance 100, y-variance 1.
        let mut rng = SplitMix64::new(4);
        let data: Vec<Vec<f64>> =
            (0..500).map(|_| vec![rng.next_gauss() * 10.0, rng.next_gauss()]).collect();
        let pca = principal_components(&data, 2, 0);
        assert!(pca.components[0][0].abs() > 0.99, "PC1 should be ~x-axis");
        assert!(pca.eigenvalues[0] > 50.0 && pca.eigenvalues[0] < 150.0);
        assert!(pca.eigenvalues[1] < 2.0);
        assert!(pca.eigenvalues[0] >= pca.eigenvalues[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = SplitMix64::new(8);
        let data: Vec<Vec<f64>> =
            (0..200).map(|_| (0..5).map(|_| rng.next_gauss()).collect()).collect();
        let pca = principal_components(&data, 3, 0);
        for i in 0..3 {
            let n: f64 = pca.components[i].iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-6, "component {i} not unit norm");
            for j in i + 1..3 {
                let dot: f64 =
                    pca.components[i].iter().zip(&pca.components[j]).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-4, "components {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn scores_are_mean_centred() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let pca = principal_components(&data, 1, 0);
        let scores = pca.scores(&data, 0);
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean.abs() < 1e-9, "scores mean {mean}");
        // Scores preserve the ordering along the dominant direction.
        assert!(scores.windows(2).all(|w| w[0] < w[1]) || scores.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let data = vec![vec![3.0, 3.0]; 20];
        let pca = principal_components(&data, 2, 0);
        assert!(pca.eigenvalues.iter().all(|&e| e.abs() < 1e-12));
        assert_eq!(pca.scores(&data, 0), vec![0.0; 20]);
    }

    #[test]
    fn k_capped_at_dimensionality() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0]];
        let pca = principal_components(&data, 5, 0);
        assert_eq!(pca.components.len(), 1);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_data_panics() {
        let _ = principal_components(&[], 1, 0);
    }
}
