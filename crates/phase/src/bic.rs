//! Bayesian-information-criterion scoring of clusterings, and
//! SimPoint's procedure for choosing the number of phases.
//!
//! SimPoint runs k-means for every `k ≤ Kmax`, scores each clustering
//! with the BIC of a spherical-Gaussian mixture (the X-means
//! formulation of Pelleg & Moore), and picks the *smallest* `k` whose
//! score covers at least a threshold (default 90 %) of the spread
//! between the worst and best scores seen.
//!
//! The sweep operates on the contiguous [`Matrix`] point storage and
//! reuses one [`KMeansScratch`] across all candidate `k`, so the only
//! allocations that scale with the sweep are the retained results.

use crate::kmeans::{kmeans_with, KMeansConfig, KMeansResult, KMeansScratch};
use crate::matrix::Matrix;
use crate::project::distance_sq;

/// BIC score of a clustering (bigger is better).
///
/// Uses the X-means spherical-Gaussian likelihood with a pooled
/// maximum-likelihood variance.
///
/// # Panics
///
/// Panics if `data` is empty or the result does not match `data`.
pub fn bic(data: &Matrix, result: &KMeansResult) -> f64 {
    assert!(data.rows() > 0, "bic needs data");
    assert_eq!(data.rows(), result.assignments.len(), "result does not match data");
    let r = data.rows() as f64;
    let m = data.cols() as f64;
    let k = result.k as f64;

    // Pooled MLE variance.
    let sse: f64 = data
        .iter_rows()
        .zip(&result.assignments)
        .map(|(p, &a)| distance_sq(p, result.centroids.row(a)))
        .sum();
    let denom = (r - k).max(1.0) * m;
    let sigma2 = (sse / denom).max(1e-12);

    let sizes = result.sizes();
    let mut loglik = 0.0;
    for &n in &sizes {
        if n == 0 {
            continue;
        }
        let rn = n as f64;
        loglik += rn * (rn.ln() - r.ln())
            - rn * m / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rn - 1.0) * m / 2.0;
    }
    // Free parameters: k-1 mixing weights, k*m means, 1 variance.
    let params = (k - 1.0) + k * m + 1.0;
    loglik - params / 2.0 * r.ln()
}

/// Result of the k-selection sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct KSelection {
    /// The chosen clustering.
    pub result: KMeansResult,
    /// The chosen k.
    pub k: usize,
    /// BIC score per candidate k (index 0 ↦ k = 1).
    pub scores: Vec<f64>,
}

/// SimPoint's k-selection: cluster for each `k` in `1..=k_max`, score
/// with [`bic`], and return the smallest `k` whose score is at least
/// `threshold` (default 0.9) *of the best score* — the criterion of the
/// original SimPoint (Sherwood et al., ASPLOS 2002). When the best
/// score is not positive the ratio is meaningless, so the selection
/// falls back to covering `threshold` of the min-to-max spread.
///
/// # Panics
///
/// Panics if `data` is empty, `k_max` is zero, or `threshold` is outside
/// `[0, 1]`.
///
/// # Example
///
/// ```
/// use mlpa_phase::bic::choose_k;
/// use mlpa_phase::kmeans::KMeansConfig;
/// use mlpa_phase::matrix::Matrix;
///
/// use mlpa_isa::rng::SplitMix64;
///
/// // Two well-separated noisy groups: the sweep settles on k = 2.
/// let mut rng = SplitMix64::new(1);
/// let mut data: Vec<Vec<f64>> = (0..30).map(|_| vec![rng.next_gauss()]).collect();
/// data.extend((0..30).map(|_| vec![50.0 + rng.next_gauss()]));
/// let sel = choose_k(&Matrix::from_rows(&data), 6, 0.9, &KMeansConfig::default());
/// assert_eq!(sel.k, 2);
/// ```
pub fn choose_k(data: &Matrix, k_max: usize, threshold: f64, cfg: &KMeansConfig) -> KSelection {
    assert!(data.rows() > 0, "choose_k needs data");
    assert!(k_max > 0, "k_max must be positive");
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");

    let k_hi = k_max.min(data.rows());
    let _span = mlpa_obs::span("phase.bic.sweep");
    mlpa_obs::add("phase.bic.sweeps", 1);
    mlpa_obs::add("phase.bic.candidates", k_hi as u64);
    let mut scratch = KMeansScratch::new();
    let mut candidates: Vec<(KMeansResult, f64)> = Vec::with_capacity(k_hi);
    for k in 1..=k_hi {
        let r = kmeans_with(data, k, cfg, &mut scratch);
        let s = bic(data, &r);
        candidates.push((r, s));
    }
    let lo = candidates.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
    let hi = candidates.iter().map(|(_, s)| *s).fold(f64::NEG_INFINITY, f64::max);
    let cut = if hi > 0.0 {
        threshold * hi
    } else if (hi - lo).abs() < 1e-12 {
        lo
    } else {
        lo + threshold * (hi - lo)
    };

    let scores: Vec<f64> = candidates.iter().map(|(_, s)| *s).collect();
    let pick =
        candidates.iter().position(|(_, s)| *s >= cut).expect("at least the max clears the cut");
    let (result, _) = candidates.swap_remove(pick);
    KSelection { k: result.k, result, scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;
    use mlpa_isa::rng::SplitMix64;

    fn blobs(centers: &[[f64; 2]], per: usize, spread: f64, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let mut data = Matrix::with_capacity(centers.len() * per, 2);
        for c in centers {
            for _ in 0..per {
                data.push_row(&[
                    c[0] + rng.next_gauss() * spread,
                    c[1] + rng.next_gauss() * spread,
                ]);
            }
        }
        data
    }

    #[test]
    fn recovers_true_k_for_separated_blobs() {
        for true_k in 2..=4usize {
            let centers: Vec<[f64; 2]> =
                (0..true_k).map(|i| [20.0 * i as f64, 10.0 * (i % 2) as f64]).collect();
            let data = blobs(&centers, 30, 0.4, 7);
            let sel = choose_k(&data, 8, 0.9, &KMeansConfig::default());
            assert_eq!(sel.k, true_k, "failed to recover k = {true_k}");
        }
    }

    #[test]
    fn one_blob_yields_k1() {
        let data = blobs(&[[0.0, 0.0]], 60, 0.5, 3);
        let sel = choose_k(&data, 6, 0.9, &KMeansConfig::default());
        assert_eq!(sel.k, 1);
    }

    #[test]
    fn bic_prefers_true_k() {
        let data = blobs(&[[0.0, 0.0], [30.0, 0.0], [0.0, 30.0]], 40, 0.5, 5);
        let rows = data.to_rows();
        let cfg = KMeansConfig::default();
        let b2 = bic(&data, &kmeans(&rows, 2, &cfg));
        let b3 = bic(&data, &kmeans(&rows, 3, &cfg));
        let b7 = bic(&data, &kmeans(&rows, 7, &cfg));
        assert!(b3 > b2, "k=3 should beat k=2: {b3} vs {b2}");
        assert!(b3 > b7, "k=3 should beat overfit k=7: {b3} vs {b7}");
    }

    #[test]
    fn k_max_caps_selection() {
        let centers: Vec<[f64; 2]> = (0..6).map(|i| [25.0 * i as f64, 0.0]).collect();
        let data = blobs(&centers, 20, 0.3, 11);
        let sel = choose_k(&data, 3, 0.9, &KMeansConfig::default());
        assert!(sel.k <= 3);
    }

    #[test]
    fn scores_has_one_entry_per_candidate() {
        let data = blobs(&[[0.0, 0.0], [9.0, 9.0]], 20, 0.3, 2);
        let sel = choose_k(&data, 5, 0.9, &KMeansConfig::default());
        assert_eq!(sel.scores.len(), 5);
    }

    #[test]
    fn fewer_points_than_kmax() {
        let data = Matrix::from_rows(&[vec![0.0], vec![100.0]]);
        let sel = choose_k(&data, 30, 0.9, &KMeansConfig::default());
        assert!(sel.k <= 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = choose_k(&Matrix::from_rows(&[vec![0.0]]), 2, 1.5, &KMeansConfig::default());
    }
}
