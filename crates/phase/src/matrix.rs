//! Flat, row-major numeric storage for the clustering kernels.
//!
//! The phase classifier used to shuttle `Vec<Vec<f64>>` around: one heap
//! allocation per point and per centroid, with every distance evaluation
//! chasing a pointer per row. [`Matrix`] replaces that with a single
//! contiguous buffer — rows are `cols`-length slices carved out of one
//! allocation, so a nearest-centroid scan walks memory linearly and the
//! Lloyd update writes into reusable scratch instead of reallocating
//! `vec![vec![0.0; dim]; k]` every iteration.
//!
//! The numeric semantics are identical to the nested-vector code: a row
//! is an ordinary `&[f64]`, and [`distance_sq`](crate::project::distance_sq)
//! over two rows performs exactly the same operations in the same order
//! as it did over two `Vec<f64>`s (a property test pins this).

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64` in one allocation.
///
/// # Example
///
/// ```
/// use mlpa_phase::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// An empty matrix with `cols` columns and row capacity for `rows`,
    /// ready for [`push_row`](Matrix::push_row).
    pub fn with_capacity(rows: usize, cols: usize) -> Matrix {
        Matrix { data: Vec::with_capacity(rows * cols), rows: 0, cols }
    }

    /// Copy a slice of equal-length vectors into one contiguous matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::with_capacity(rows.len(), cols);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.cols()`.
    pub fn push_row(&mut self, src: &[f64]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(src);
        self.rows += 1;
    }

    /// Overwrite row `i` with `src`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `src.len() != self.cols()`.
    pub fn set_row(&mut self, i: usize, src: &[f64]) {
        self.row_mut(i).copy_from_slice(src);
    }

    /// Drop all rows, keeping the allocation (and the column count) for
    /// reuse as scratch.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Reshape into an all-zero `rows × cols` scratch buffer, reusing
    /// the existing allocation when it is large enough.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Iterate over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        // `chunks_exact(0)` panics, so give the empty matrix a chunk
        // size that yields nothing.
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Squared Euclidean distance between row `i` of `self` and row `j`
    /// of `other` — same arithmetic, in the same order, as
    /// [`distance_sq`](crate::project::distance_sq) on the row slices.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or an index is out of range.
    #[inline]
    pub fn row_distance_sq(&self, i: usize, other: &Matrix, j: usize) -> f64 {
        crate::project::distance_sq(self.row(i), other.row(j))
    }

    /// Copy the matrix back out as nested vectors (diagnostics,
    /// interop with row-oriented consumers).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(<[f64]>::to_vec).collect()
    }
}

impl Default for Matrix {
    fn default() -> Matrix {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data", &self.data)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_rows() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = Matrix::from_rows(&rows);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn mutation_and_scratch_reuse() {
        let mut m = Matrix::zeros(2, 2);
        m.set_row(0, &[1.0, 2.0]);
        m.row_mut(1)[1] = 7.0;
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[0.0, 7.0]);
        m.reset_zeroed(3, 2);
        assert_eq!(m.rows(), 3);
        assert!(m.iter_rows().all(|r| r == [0.0, 0.0]));
        m.clear();
        assert_eq!(m.rows(), 0);
        m.push_row(&[9.0, 9.0]);
        assert_eq!(m.row(0), &[9.0, 9.0]);
    }

    #[test]
    fn row_distance_matches_slice_distance() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.row_distance_sq(0, &b, 0), 25.0);
        assert_eq!(a.row_distance_sq(1, &a, 1), 0.0);
    }

    #[test]
    fn empty_matrix_iterates_nothing() {
        let m = Matrix::with_capacity(0, 0);
        assert_eq!(m.iter_rows().count(), 0);
        assert_eq!(Matrix::from_rows(&[]).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
