//! Interval profiling: slicing an execution into intervals and
//! collecting one (projected, normalised) basic-block vector per
//! interval.
//!
//! Two slicers are provided, matching the paper's two granularities:
//!
//! * [`FixedLengthProfiler`] — fixed-size intervals (SimPoint's 10 M /
//!   our scaled 10 k instructions);
//! * [`BoundaryProfiler`] — variable-length intervals cut at every entry
//!   of a chosen loop-header block (COASTS's outer-loop iterations).
//!
//! Both are [`Observer`]s for the functional simulator, so profiling is
//! a single functional pass.

use crate::project::RandomProjection;
use mlpa_isa::{BlockId, Instruction};
use mlpa_sim::functional::Observer;

/// One profiled interval: where it lies in the trace and its signature
/// vector (projected, L1-normalised BBV).
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Position in execution order (0-based).
    pub index: usize,
    /// First instruction (global index).
    pub start: u64,
    /// Length in instructions.
    pub len: u64,
    /// Projected, normalised BBV signature.
    pub vector: Vec<f64>,
}

impl Interval {
    /// One-past-the-end instruction index.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// The paper's "position": the interval's *end* over the program's
    /// total instruction count.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn position(&self, total: u64) -> f64 {
        assert!(total > 0, "total instruction count must be positive");
        self.end() as f64 / total as f64
    }
}

/// Shared accumulation machinery for both profilers.
///
/// The signature is accumulated **directly in the projected space**:
/// `add` performs `dim` fused multiply-adds against the block's cached
/// projection row instead of bumping one slot of a raw
/// `num_blocks`-dimensional BBV. Projection is linear, so this is
/// bit-identical to materialising the raw BBV and projecting at flush
/// (all contributions are integer instruction counts, which `f64` sums
/// exactly in any order — `kernel_properties.rs` pins the equivalence).
/// The payoff: profiler state shrinks from `O(num_blocks)` to
/// `O(dim)` and a flush costs `O(dim)` instead of the old
/// `O(num_blocks × dim)` projection sweep.
///
/// Normalisation to relative frequencies (SimPoint's treatment)
/// happens *after* projection: dividing the projected vector by the
/// interval length equals projecting the normalised BBV, again by
/// linearity.
#[derive(Debug)]
struct Accumulator {
    /// Projected-space accumulator (`dim` floats).
    acc: Vec<f64>,
    count: u64,
    start: u64,
    intervals: Vec<Interval>,
}

impl Accumulator {
    fn new(dim: usize) -> Accumulator {
        Accumulator { acc: vec![0.0; dim], count: 0, start: 0, intervals: Vec::new() }
    }

    #[inline]
    fn add(&mut self, proj: &RandomProjection, id: BlockId, insts: u64) {
        proj.accumulate(id.index(), insts as f64, &mut self.acc);
        self.count += insts;
    }

    fn flush(&mut self) {
        if self.count == 0 {
            return;
        }
        let inv = 1.0 / self.count as f64;
        let vector: Vec<f64> = self.acc.iter().map(|v| v * inv).collect();
        self.intervals.push(Interval {
            index: self.intervals.len(),
            start: self.start,
            len: self.count,
            vector,
        });
        self.start += self.count;
        self.count = 0;
        self.acc.fill(0.0);
    }
}

/// Profiler for fixed-length intervals (block-granular: an interval ends
/// at the first block boundary at or past the target length).
///
/// # Example
///
/// ```
/// use mlpa_phase::{interval::FixedLengthProfiler, project::RandomProjection};
/// use mlpa_sim::FunctionalSim;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
/// let mut prof = FixedLengthProfiler::new(&proj, 10_000);
/// FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
/// let intervals = prof.finish();
/// assert!(intervals.len() > 10);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct FixedLengthProfiler<'a> {
    proj: &'a RandomProjection,
    interval_len: u64,
    acc: Accumulator,
}

impl<'a> FixedLengthProfiler<'a> {
    /// Create a profiler cutting intervals of `interval_len`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(proj: &'a RandomProjection, interval_len: u64) -> FixedLengthProfiler<'a> {
        assert!(interval_len > 0, "interval length must be positive");
        FixedLengthProfiler { proj, interval_len, acc: Accumulator::new(proj.dim()) }
    }

    /// Record one executed block of `insts` instructions — the raw form
    /// of the [`Observer`] hook, usable without constructing instruction
    /// slices (benchmarks, synthetic streams, property tests).
    #[inline]
    pub fn record(&mut self, id: BlockId, insts: u64) {
        self.acc.add(self.proj, id, insts);
        if self.acc.count >= self.interval_len {
            self.acc.flush();
        }
    }

    /// Flush the trailing partial interval and return all intervals.
    pub fn finish(mut self) -> Vec<Interval> {
        self.acc.flush();
        self.acc.intervals
    }
}

impl Observer for FixedLengthProfiler<'_> {
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], _first: u64) {
        self.record(id, insts.len() as u64);
    }
}

/// Profiler for variable-length intervals cut at every entry of a chosen
/// header block (the coarse, loop-iteration granularity of COASTS).
///
/// The prologue before the first header entry becomes the first
/// interval; the epilogue after the last entry becomes the last.
#[derive(Debug)]
pub struct BoundaryProfiler<'a> {
    proj: &'a RandomProjection,
    header: BlockId,
    acc: Accumulator,
    seen_header: bool,
    has_prologue: bool,
}

impl<'a> BoundaryProfiler<'a> {
    /// Create a profiler cutting at every execution of `header`.
    pub fn new(proj: &'a RandomProjection, header: BlockId) -> BoundaryProfiler<'a> {
        BoundaryProfiler {
            proj,
            header,
            acc: Accumulator::new(proj.dim()),
            seen_header: false,
            has_prologue: false,
        }
    }

    /// Record one executed block of `insts` instructions — the raw form
    /// of the [`Observer`] hook (see
    /// [`FixedLengthProfiler::record`](FixedLengthProfiler::record)).
    #[inline]
    pub fn record(&mut self, id: BlockId, insts: u64) {
        if id == self.header {
            if !self.seen_header {
                self.seen_header = true;
                self.has_prologue = self.acc.count > 0;
            }
            self.acc.flush();
        }
        self.acc.add(self.proj, id, insts);
    }

    /// The boundary block.
    pub fn header(&self) -> BlockId {
        self.header
    }

    /// Whether instructions executed before the first header entry, i.e.
    /// whether the first interval is a prologue rather than an iteration
    /// instance. COASTS excludes the prologue from phase classification:
    /// it is not an iteration of the cyclic structure, and selecting it
    /// as a representative would let a few thousand setup instructions
    /// stand in for a whole phase.
    pub fn has_prologue(&self) -> bool {
        self.has_prologue
    }

    /// Flush the trailing interval and return all intervals.
    pub fn finish(mut self) -> Vec<Interval> {
        self.acc.flush();
        self.acc.intervals
    }
}

impl Observer for BoundaryProfiler<'_> {
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], _first: u64) {
        self.record(id, insts.len() as u64);
    }
}

/// Check the structural invariants of a profiled interval list: dense
/// 0-based indices, contiguous coverage starting at 0, positive lengths.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_intervals(intervals: &[Interval]) -> Result<(), String> {
    let mut expect_start = 0u64;
    for (i, iv) in intervals.iter().enumerate() {
        if iv.index != i {
            return Err(format!("interval {i} has index {}", iv.index));
        }
        if iv.len == 0 {
            return Err(format!("interval {i} is empty"));
        }
        if iv.start != expect_start {
            return Err(format!(
                "interval {i} starts at {} but previous ended at {expect_start}",
                iv.start
            ));
        }
        expect_start = iv.end();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_sim::FunctionalSim;
    use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};

    fn compiled() -> CompiledBenchmark {
        CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap()
    }

    fn total_insts(cb: &CompiledBenchmark) -> u64 {
        let mut f = FunctionalSim::new(cb.program());
        f.run(WorkloadStream::new(cb), &mut ()).instructions
    }

    #[test]
    fn fixed_profiler_covers_whole_trace() {
        let cb = compiled();
        let total = total_insts(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut prof = FixedLengthProfiler::new(&proj, 10_000);
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
        let ivs = prof.finish();
        validate_intervals(&ivs).unwrap();
        assert_eq!(ivs.iter().map(|i| i.len).sum::<u64>(), total);
        // Roughly total/10k intervals (block-boundary overshoot aside).
        let expect = total / 10_000;
        assert!((ivs.len() as i64 - expect as i64).unsigned_abs() <= expect / 5 + 2);
        // Every interval at least the target length except possibly last.
        for iv in &ivs[..ivs.len() - 1] {
            assert!(iv.len >= 10_000);
            assert!(iv.len < 10_200, "overshoot bounded by a block");
        }
    }

    #[test]
    fn vectors_are_normalised() {
        // The projected vector of an interval equals the projection of
        // its relative-frequency BBV; its magnitude is bounded by the
        // max |±1| row sums, i.e. each component lies in [-1, 1].
        let cb = compiled();
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut prof = FixedLengthProfiler::new(&proj, 5_000);
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
        for iv in prof.finish() {
            for &v in &iv.vector {
                assert!((-1.0..=1.0).contains(&v), "component {v} out of range");
            }
        }
    }

    #[test]
    fn boundary_profiler_cuts_at_header_entries() {
        let cb = compiled();
        let total = total_insts(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut prof = BoundaryProfiler::new(&proj, cb.outer_header());
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
        let ivs = prof.finish();
        validate_intervals(&ivs).unwrap();
        assert_eq!(ivs.iter().map(|i| i.len).sum::<u64>(), total);
        // One interval per script entry plus the init prologue; the tail
        // (no header entry after it) merges into the final iteration.
        let outer = cb.spec().script.len();
        assert_eq!(ivs.len(), outer + 1, "prologue + iterations (tail merged)");
    }

    #[test]
    fn interval_position_uses_end() {
        let iv = Interval { index: 0, start: 50, len: 50, vector: vec![] };
        assert!((iv.position(200) - 0.5).abs() < 1e-12);
        assert_eq!(iv.end(), 100);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_len_rejected() {
        let proj = RandomProjection::new(4, 2, 0);
        let _ = FixedLengthProfiler::new(&proj, 0);
    }

    #[test]
    fn validate_catches_gaps() {
        let good = vec![
            Interval { index: 0, start: 0, len: 10, vector: vec![] },
            Interval { index: 1, start: 10, len: 5, vector: vec![] },
        ];
        validate_intervals(&good).unwrap();
        let gap = vec![
            Interval { index: 0, start: 0, len: 10, vector: vec![] },
            Interval { index: 1, start: 11, len: 5, vector: vec![] },
        ];
        assert!(validate_intervals(&gap).is_err());
        let empty = vec![Interval { index: 0, start: 0, len: 0, vector: vec![] }];
        assert!(validate_intervals(&empty).is_err());
    }

    #[test]
    fn same_phase_intervals_have_similar_vectors() {
        // Coarse intervals of a single-phase benchmark should cluster
        // tightly: compare consecutive outer iterations.
        let cb = compiled();
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut prof = BoundaryProfiler::new(&proj, cb.outer_header());
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
        let ivs = prof.finish();
        // Skip prologue and epilogue.
        let body = &ivs[1..ivs.len() - 1];
        let d = crate::project::distance_sq(&body[1].vector, &body[2].vector);
        // Distance between same-phase iterations is small relative to
        // the vectors' own norms.
        let norm: f64 = body[1].vector.iter().map(|v| v * v).sum();
        assert!(d < norm * 0.1, "same-phase distance {d} vs norm {norm}");
    }
}
