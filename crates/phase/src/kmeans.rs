//! k-means clustering with k-means++ seeding and multiple restarts — the
//! phase classifier SimPoint and COASTS share.

use crate::project::distance_sq;
use mlpa_isa::rng::SplitMix64;

/// Result of one k-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Number of clusters (some may be empty only if there were fewer
    /// points than `k`; empty clusters are dissolved otherwise).
    pub k: usize,
}

impl KMeansResult {
    /// Points per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of random restarts (best inertia wins).
    pub restarts: usize,
    /// Lloyd-iteration cap per restart.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { restarts: 5, max_iters: 100, seed: 0x4B4D4541 }
    }
}

/// Run k-means on `data` with `k` clusters.
///
/// If `k >= data.len()`, every point becomes its own cluster.
///
/// # Panics
///
/// Panics if `data` is empty, `k` is zero, or the points have unequal
/// dimensionality.
///
/// # Example
///
/// ```
/// use mlpa_phase::kmeans::{kmeans, KMeansConfig};
///
/// let data = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let r = kmeans(&data, 2, &KMeansConfig::default());
/// assert_eq!(r.assignments[0], r.assignments[1]);
/// assert_eq!(r.assignments[2], r.assignments[3]);
/// assert_ne!(r.assignments[0], r.assignments[2]);
/// ```
pub fn kmeans(data: &[Vec<f64>], k: usize, cfg: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "k must be positive");
    let dim = data[0].len();
    assert!(data.iter().all(|p| p.len() == dim), "inconsistent dimensionality");

    if k >= data.len() {
        // Degenerate: every point its own cluster.
        return KMeansResult {
            assignments: (0..data.len()).collect(),
            centroids: data.to_vec(),
            inertia: 0.0,
            k: data.len(),
        };
    }

    let mut best: Option<KMeansResult> = None;
    let base = SplitMix64::new(cfg.seed);
    for r in 0..cfg.restarts.max(1) {
        let mut rng = base.fork(r as u64);
        let result = lloyd(data, k, cfg.max_iters, &mut rng);
        if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    best.expect("at least one restart ran")
}

fn lloyd(data: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut SplitMix64) -> KMeansResult {
    let mut centroids = plus_plus_seed(data, k, rng);
    let mut assignments = vec![0usize; data.len()];

    for _ in 0..max_iters {
        let mut changed = false;
        // Assign.
        for (i, p) in data.iter().enumerate() {
            let a = nearest(p, &centroids).0;
            if a != assignments[i] {
                assignments[i] = a;
                changed = true;
            }
        }
        // Update.
        let dim = data[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from
                // its centroid.
                let far = data
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = distance_sq(a, &centroids[assignments[0]]);
                        let db = distance_sq(b, &centroids[assignments[0]]);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty data");
                centroids[c] = data[far].clone();
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = data.iter().zip(&assignments).map(|(p, &a)| distance_sq(p, &centroids[a])).sum();
    KMeansResult { assignments, centroids, inertia, k }
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// drawn with probability proportional to squared distance from the
/// nearest existing centroid.
fn plus_plus_seed(data: &[Vec<f64>], k: usize, rng: &mut SplitMix64) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.range_usize(data.len())].clone());
    let mut d2: Vec<f64> = data.iter().map(|p| distance_sq(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.range_usize(data.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.push(data[idx].clone());
        for (i, p) in data.iter().enumerate() {
            let d = distance_sq(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Index and squared distance of the nearest centroid.
pub fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = distance_sq(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs in 2-D.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(99);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut data = Vec::new();
        for c in centers {
            for _ in 0..40 {
                data.push(vec![c[0] + rng.next_gauss() * 0.5, c[1] + rng.next_gauss() * 0.5]);
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let r = kmeans(&data, 3, &KMeansConfig::default());
        // All points of a blob share one label; labels across blobs
        // differ.
        for blob in 0..3 {
            let first = r.assignments[blob * 40];
            for i in 0..40 {
                assert_eq!(r.assignments[blob * 40 + i], first, "blob {blob} split");
            }
        }
        let mut labels: Vec<usize> = (0..3).map(|b| r.assignments[b * 40]).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let data = blobs();
        let r = kmeans(&data, 3, &KMeansConfig::default());
        for (p, &a) in data.iter().zip(&r.assignments) {
            assert_eq!(nearest(p, &r.centroids).0, a);
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = blobs();
        let cfg = KMeansConfig::default();
        let i1 = kmeans(&data, 1, &cfg).inertia;
        let i3 = kmeans(&data, 3, &cfg).inertia;
        let i6 = kmeans(&data, 6, &cfg).inertia;
        assert!(i3 < i1 * 0.2, "3 clusters should slash inertia: {i3} vs {i1}");
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = KMeansConfig::default();
        assert_eq!(kmeans(&data, 3, &cfg), kmeans(&data, 3, &cfg));
    }

    #[test]
    fn degenerate_k_ge_n() {
        let data = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&data, 5, &KMeansConfig::default());
        assert_eq!(r.k, 2);
        assert_eq!(r.inertia, 0.0);
        assert_eq!(r.assignments, vec![0, 1]);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let r = kmeans(&data, 1, &KMeansConfig::default());
        assert_eq!(r.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    fn sizes_sum_to_n() {
        let data = blobs();
        let r = kmeans(&data, 3, &KMeansConfig::default());
        assert_eq!(r.sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_data_panics() {
        let _ = kmeans(&[], 1, &KMeansConfig::default());
    }

    #[test]
    fn identical_points_collapse() {
        let data = vec![vec![5.0, 5.0]; 10];
        let r = kmeans(&data, 3, &KMeansConfig::default());
        assert!(r.inertia < 1e-12);
    }
}
