//! k-means clustering with k-means++ seeding and multiple restarts — the
//! phase classifier SimPoint and COASTS share.
//!
//! The hot path runs Lloyd's algorithm over the flat row-major
//! [`Matrix`] with Hamerly-style triangle-inequality pruning: per point
//! we keep an upper bound on the (Euclidean) distance to its assigned
//! centroid and a lower bound on the distance to the second-closest
//! centroid, and skip the nearest-centroid scan whenever the bounds
//! prove the assignment cannot change. All *decisive* arithmetic —
//! seeding, exact distance evaluation, the centroid update, and the
//! final inertia sum — is performed in exactly the same operations and
//! order as the naive implementation in [`crate::reference`], so the
//! pruned path produces identical assignments, centroids, and inertia;
//! a `#[cfg(test)]` cross-check asserts this on every restart, and
//! `kernel_properties.rs` pins it on randomised inputs. Per-call
//! scratch buffers ([`KMeansScratch`]) are reused across restarts and
//! across the BIC k-sweep instead of reallocating `vec![vec![0.0; dim]; k]`
//! every iteration.
//!
//! Bound maintenance after a centroid update follows Hamerly (2010):
//! if centroid `c` moved by `δ(c)`, then `upper += δ(assigned)` and
//! `lower -= max_{c ≠ assigned} δ(c)` remain valid bounds by the
//! triangle inequality. A relative slack of [`BOUND_SLACK`] is folded
//! into every comparison so floating-point rounding can only cause a
//! harmless extra exact recompute, never a wrong skip.

use crate::matrix::Matrix;
use crate::project::distance_sq;
use mlpa_isa::rng::SplitMix64;

/// Relative safety margin on the Hamerly skip test. Rounding error in
/// the maintained bounds is ~1 ulp (≈1e-16 relative) per update; a
/// 1e-12 relative margin dwarfs it, and the cost of the margin is at
/// worst a redundant exact distance evaluation.
const BOUND_SLACK: f64 = 1e-12;

/// Result of one k-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids: row `c` is centroid `c`.
    pub centroids: Matrix,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Number of clusters (some may be empty only if there were fewer
    /// points than `k`; empty clusters are dissolved otherwise).
    pub k: usize,
}

impl KMeansResult {
    /// Points per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of random restarts (best inertia wins).
    pub restarts: usize,
    /// Lloyd-iteration cap per restart.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { restarts: 5, max_iters: 100, seed: 0x4B4D4541 }
    }
}

/// Reusable scratch for [`kmeans_with`]: centroid storage, Lloyd-update
/// accumulators, and the Hamerly bound arrays. One instance can be
/// shared across restarts, across the BIC k-sweep, and across repeated
/// clusterings of different data — every call resizes what it needs and
/// reuses the allocations.
#[derive(Debug, Default)]
pub struct KMeansScratch {
    centroids: Matrix,
    sums: Matrix,
    counts: Vec<usize>,
    prev: Matrix,
    delta: Vec<f64>,
    s_half: Vec<f64>,
    upper: Vec<f64>,
    lower: Vec<f64>,
    assignments: Vec<usize>,
    d2: Vec<f64>,
    dirty: Vec<bool>,
}

impl KMeansScratch {
    /// A fresh scratch (all buffers empty until first use).
    pub fn new() -> KMeansScratch {
        KMeansScratch::default()
    }
}

/// Run k-means on `data` with `k` clusters.
///
/// Convenience wrapper over [`kmeans_with`] that copies the points into
/// a contiguous [`Matrix`] and allocates fresh scratch. Hot callers
/// (the BIC sweep, the fine pass) should build the `Matrix` once and
/// reuse a [`KMeansScratch`].
///
/// If `k >= data.len()`, every point becomes its own cluster.
///
/// # Panics
///
/// Panics if `data` is empty, `k` is zero, or the points have unequal
/// dimensionality.
///
/// # Example
///
/// ```
/// use mlpa_phase::kmeans::{kmeans, KMeansConfig};
///
/// let data = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let r = kmeans(&data, 2, &KMeansConfig::default());
/// assert_eq!(r.assignments[0], r.assignments[1]);
/// assert_eq!(r.assignments[2], r.assignments[3]);
/// assert_ne!(r.assignments[0], r.assignments[2]);
/// ```
pub fn kmeans(data: &[Vec<f64>], k: usize, cfg: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs at least one point");
    kmeans_with(&Matrix::from_rows(data), k, cfg, &mut KMeansScratch::new())
}

/// Run k-means on a contiguous point matrix (one point per row),
/// reusing `scratch` for all intermediate buffers.
///
/// Produces results identical to [`kmeans`] on the same points.
///
/// # Panics
///
/// Panics if `data` has no rows or `k` is zero.
pub fn kmeans_with(
    data: &Matrix,
    k: usize,
    cfg: &KMeansConfig,
    scratch: &mut KMeansScratch,
) -> KMeansResult {
    assert!(data.rows() > 0, "kmeans needs at least one point");
    assert!(k > 0, "k must be positive");
    let _span = mlpa_obs::span("phase.kmeans");

    if k >= data.rows() {
        // Degenerate: every point its own cluster.
        return KMeansResult {
            assignments: (0..data.rows()).collect(),
            centroids: data.clone(),
            inertia: 0.0,
            k: data.rows(),
        };
    }

    let mut best: Option<KMeansResult> = None;
    let base = SplitMix64::new(cfg.seed);
    for r in 0..cfg.restarts.max(1) {
        let mut rng = base.fork(r as u64);
        let result = lloyd_pruned(data, k, cfg.max_iters, &mut rng, scratch);
        #[cfg(test)]
        {
            // Pruning is an optimisation, not a semantic change: every
            // restart must reproduce the naive Lloyd's result exactly.
            let naive = crate::reference::lloyd_naive(
                &data.to_rows(),
                k,
                cfg.max_iters,
                &mut base.fork(r as u64),
            );
            assert_eq!(result, naive, "pruned restart {r} diverged from naive Lloyd's");
        }
        if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    best.expect("at least one restart ran")
}

/// Lloyd's algorithm with Hamerly pruning. Assignment-identical to
/// [`crate::reference::lloyd_naive`] (see the module docs for the
/// argument); the skip test only ever avoids *recomputing* a
/// nearest-centroid scan whose outcome the bounds prove unchanged.
fn lloyd_pruned(
    data: &Matrix,
    k: usize,
    max_iters: usize,
    rng: &mut SplitMix64,
    scratch: &mut KMeansScratch,
) -> KMeansResult {
    let n = data.rows();
    let KMeansScratch {
        centroids,
        sums,
        counts,
        prev,
        delta,
        s_half,
        upper,
        lower,
        assignments,
        d2,
        dirty,
    } = scratch;

    plus_plus_seed(data, k, rng, centroids, d2);
    assignments.clear();
    assignments.resize(n, 0);
    // Per-cluster membership sums and counts persist across iterations;
    // a cluster is "dirty" when its membership changed and its sum must
    // be re-accumulated. Everything starts dirty (stale scratch).
    sums.reset_zeroed(k, data.cols());
    counts.clear();
    counts.resize(k, 0);
    dirty.clear();
    dirty.resize(k, true);
    upper.clear();
    upper.resize(n, 0.0);
    lower.clear();
    lower.resize(n, 0.0);
    // Bounds start unknown; the first iteration does a full
    // nearest-centroid scan, after which they are maintained
    // incrementally (an empty-cluster reseed is just a large centroid
    // motion and propagates through the bounds like any other).
    let mut bounds_valid = false;

    // Local tallies flushed to the obs counters once per call: the
    // assign loop is the hottest code in the crate, so it must never
    // touch a shared atomic per point.
    let (mut obs_iters, mut obs_pruned, mut obs_scanned, mut obs_reseeds) =
        (0u64, 0u64, 0u64, 0u64);

    for _ in 0..max_iters {
        let mut changed = false;
        obs_iters += 1;

        // Assign.
        if bounds_valid {
            // s_half[c]: half the distance from centroid c to its
            // nearest other centroid. If upper[i] ≤ s_half[assigned],
            // no other centroid can be closer (triangle inequality).
            s_half.clear();
            for c in 0..k {
                let mut min_d = f64::INFINITY;
                for o in 0..k {
                    if o != c {
                        let d = centroids.row_distance_sq(c, centroids, o);
                        if d < min_d {
                            min_d = d;
                        }
                    }
                }
                s_half.push(0.5 * min_d.sqrt());
            }
            for i in 0..n {
                let a = assignments[i];
                let bound = s_half[a].max(lower[i]) * (1.0 - BOUND_SLACK);
                if upper[i] <= bound {
                    obs_pruned += 1;
                    continue; // assignment provably unchanged
                }
                // Tighten the upper bound with one exact distance
                // before paying for the full scan.
                upper[i] = distance_sq(data.row(i), centroids.row(a)).sqrt();
                if upper[i] <= bound {
                    obs_pruned += 1;
                    continue;
                }
                obs_scanned += 1;
                let (na, d1, d2nd) = nearest2(data.row(i), centroids);
                if na != a {
                    dirty[a] = true;
                    dirty[na] = true;
                    assignments[i] = na;
                    changed = true;
                }
                upper[i] = d1.sqrt();
                lower[i] = d2nd.sqrt();
            }
        } else {
            for i in 0..n {
                let (na, d1, d2nd) = nearest2(data.row(i), centroids);
                if na != assignments[i] {
                    dirty[assignments[i]] = true;
                    dirty[na] = true;
                    assignments[i] = na;
                    changed = true;
                }
                upper[i] = d1.sqrt();
                lower[i] = d2nd.sqrt();
            }
            obs_scanned += n as u64;
            bounds_valid = true;
        }

        // Update (same arithmetic as the naive path).
        let reseeded =
            update_centroids(data, assignments, k, centroids, sums, counts, prev, delta, dirty);
        if reseeded {
            // Assignments must be refreshed against the reseeded
            // centroid even if none changed this iteration.
            changed = true;
            obs_reseeds += 1;
        }
        // Propagate centroid motion into the bounds: the assigned
        // centroid moved at most delta[a] closer/farther, every other
        // centroid at most the largest delta among them. A reseed
        // teleport is just a large delta — the triangle inequality
        // holds regardless of why a centroid moved, so the bounds stay
        // valid (merely loose near the reseeded cluster).
        let (argmax, d_max, d_second) = top_two(delta);
        for i in 0..n {
            let a = assignments[i];
            upper[i] = (upper[i] + delta[a]) * (1.0 + BOUND_SLACK);
            let drop = if a == argmax { d_second } else { d_max };
            lower[i] = (lower[i] - drop) * (1.0 - BOUND_SLACK);
        }

        if !changed {
            break;
        }
    }

    if mlpa_obs::is_enabled() {
        mlpa_obs::add("phase.kmeans.iterations", obs_iters);
        mlpa_obs::add("phase.kmeans.points_pruned", obs_pruned);
        mlpa_obs::add("phase.kmeans.points_scanned", obs_scanned);
        mlpa_obs::add("phase.kmeans.reseeds", obs_reseeds);
        // Distribution of Lloyd iterations needed per restart —
        // convergence-behaviour drift shows up here before it shows up
        // in wall clock.
        mlpa_obs::hist_record("phase.kmeans.iters_per_restart", "n", obs_iters);
    }

    let inertia = (0..n).map(|i| distance_sq(data.row(i), centroids.row(assignments[i]))).sum();
    KMeansResult { assignments: assignments.clone(), centroids: centroids.clone(), inertia, k }
}

/// Recompute every centroid as the mean of its assigned points,
/// reseeding empty clusters with the point farthest from its own
/// assigned centroid. Returns whether any cluster was reseeded;
/// `delta[c]` holds the Euclidean distance each centroid moved
/// (including reseed teleports).
///
/// This is the *shared semantics* both the pruned path and
/// [`crate::reference::lloyd_naive`] implement: sums accumulated in
/// point order, per-element division by the count, clusters visited in
/// index order (so a reseed sees lower-index centroids already updated
/// and higher-index ones still stale, exactly like the original code).
///
/// As an optimisation, `sums`/`counts` persist across iterations and
/// only `dirty` clusters — those whose membership changed since the
/// last update — are re-accumulated. A clean cluster's recomputation
/// would add the same points in the same order, reproducing its sum
/// bit-for-bit, so skipping it cannot change any result; its centroid
/// does not move and its `delta` is exactly `0.0`. An empty cluster is
/// reseeded on every update whether dirty or not, as the naive path
/// does.
#[allow(clippy::too_many_arguments)]
fn update_centroids(
    data: &Matrix,
    assignments: &[usize],
    k: usize,
    centroids: &mut Matrix,
    sums: &mut Matrix,
    counts: &mut [usize],
    prev: &mut Matrix,
    delta: &mut Vec<f64>,
    dirty: &mut [bool],
) -> bool {
    prev.clone_from(centroids);
    for c in 0..k {
        if dirty[c] {
            sums.row_mut(c).fill(0.0);
            counts[c] = 0;
        }
    }
    for (i, &a) in assignments.iter().enumerate() {
        if dirty[a] {
            counts[a] += 1;
            for (s, &x) in sums.row_mut(a).iter_mut().zip(data.row(i)) {
                *s += x;
            }
        }
    }
    let mut reseeded = false;
    for c in 0..k {
        if counts[c] == 0 {
            // Re-seed an empty cluster with the point farthest from its
            // own assigned centroid. Marked dirty so its teleport shows
            // up in `delta` below.
            let far = farthest_from_own_centroid(data, assignments, centroids);
            centroids.set_row(c, data.row(far));
            dirty[c] = true;
            reseeded = true;
        } else if dirty[c] {
            let cnt = counts[c] as f64;
            for (dst, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                *dst = s / cnt;
            }
        }
    }
    delta.clear();
    for (c, &is_dirty) in dirty.iter().enumerate().take(k) {
        delta.push(if is_dirty { centroids.row_distance_sq(c, prev, c).sqrt() } else { 0.0 });
    }
    dirty.fill(false);
    reseeded
}

/// Index of the point with the largest distance to its own assigned
/// centroid; ties resolve to the highest index (the `max_by` the
/// original implementation used returns the last maximum).
fn farthest_from_own_centroid(data: &Matrix, assignments: &[usize], centroids: &Matrix) -> usize {
    let mut far = 0;
    let mut best = f64::NEG_INFINITY;
    for (i, &a) in assignments.iter().enumerate() {
        let d = distance_sq(data.row(i), centroids.row(a));
        if d >= best {
            best = d;
            far = i;
        }
    }
    far
}

/// Largest and second-largest centroid movement, with the index of the
/// largest (for points assigned to it, the relevant "other centroid"
/// motion is the second largest).
fn top_two(delta: &[f64]) -> (usize, f64, f64) {
    let mut argmax = 0;
    let mut d_max = f64::NEG_INFINITY;
    let mut d_second = f64::NEG_INFINITY;
    for (c, &d) in delta.iter().enumerate() {
        if d > d_max {
            d_second = d_max;
            d_max = d;
            argmax = c;
        } else if d > d_second {
            d_second = d;
        }
    }
    (argmax, d_max.max(0.0), d_second.max(0.0))
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// drawn with probability proportional to squared distance from the
/// nearest existing centroid. Consumes the RNG in exactly the same
/// sequence as [`crate::reference`]'s seeding.
fn plus_plus_seed(
    data: &Matrix,
    k: usize,
    rng: &mut SplitMix64,
    centroids: &mut Matrix,
    d2: &mut Vec<f64>,
) {
    let n = data.rows();
    centroids.reset_zeroed(0, data.cols());
    centroids.push_row(data.row(rng.range_usize(n)));
    d2.clear();
    for i in 0..n {
        d2.push(distance_sq(data.row(i), centroids.row(0)));
    }
    while centroids.rows() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.range_usize(n)
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.push_row(data.row(idx));
        let last = centroids.rows() - 1;
        for (i, best) in d2.iter_mut().enumerate().take(n) {
            let d = distance_sq(data.row(i), centroids.row(last));
            if d < *best {
                *best = d;
            }
        }
    }
}

/// Index and squared distance of the nearest centroid.
///
/// Ties are deterministic: the comparison is strict (`<`), so the
/// **lowest-index** centroid among equally-near ones wins. This is what
/// lets the pruned assignment loop be asserted identical to the naive
/// one.
pub fn nearest(p: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..centroids.rows() {
        let d = distance_sq(p, centroids.row(c));
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// Like [`nearest`], but also returns the squared distance to the
/// second-closest centroid (the seed of the Hamerly lower bound). Same
/// lowest-index-wins tie rule.
fn nearest2(p: &[f64], centroids: &Matrix) -> (usize, f64, f64) {
    let mut best = (0usize, f64::INFINITY);
    let mut second = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = distance_sq(p, centroids.row(c));
        if d < best.1 {
            second = best.1;
            best = (c, d);
        } else if d < second {
            second = d;
        }
    }
    (best.0, best.1, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs in 2-D.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(99);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut data = Vec::new();
        for c in centers {
            for _ in 0..40 {
                data.push(vec![c[0] + rng.next_gauss() * 0.5, c[1] + rng.next_gauss() * 0.5]);
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let r = kmeans(&data, 3, &KMeansConfig::default());
        // All points of a blob share one label; labels across blobs
        // differ.
        for blob in 0..3 {
            let first = r.assignments[blob * 40];
            for i in 0..40 {
                assert_eq!(r.assignments[blob * 40 + i], first, "blob {blob} split");
            }
        }
        let mut labels: Vec<usize> = (0..3).map(|b| r.assignments[b * 40]).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn assignments_are_nearest_centroid() {
        let data = blobs();
        let r = kmeans(&data, 3, &KMeansConfig::default());
        for (p, &a) in data.iter().zip(&r.assignments) {
            assert_eq!(nearest(p, &r.centroids).0, a);
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = blobs();
        let cfg = KMeansConfig::default();
        let i1 = kmeans(&data, 1, &cfg).inertia;
        let i3 = kmeans(&data, 3, &cfg).inertia;
        let i6 = kmeans(&data, 6, &cfg).inertia;
        assert!(i3 < i1 * 0.2, "3 clusters should slash inertia: {i3} vs {i1}");
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = KMeansConfig::default();
        assert_eq!(kmeans(&data, 3, &cfg), kmeans(&data, 3, &cfg));
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        let data = Matrix::from_rows(&blobs());
        let cfg = KMeansConfig::default();
        let mut scratch = KMeansScratch::new();
        let first = kmeans_with(&data, 3, &cfg, &mut scratch);
        // Dirty the scratch with a different-shaped problem, then rerun.
        let _ = kmeans_with(&data, 7, &cfg, &mut scratch);
        let again = kmeans_with(&data, 3, &cfg, &mut scratch);
        assert_eq!(first, again);
    }

    #[test]
    fn degenerate_k_ge_n() {
        let data = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&data, 5, &KMeansConfig::default());
        assert_eq!(r.k, 2);
        assert_eq!(r.inertia, 0.0);
        assert_eq!(r.assignments, vec![0, 1]);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let r = kmeans(&data, 1, &KMeansConfig::default());
        assert_eq!(r.centroids.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn sizes_sum_to_n() {
        let data = blobs();
        let r = kmeans(&data, 3, &KMeansConfig::default());
        assert_eq!(r.sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_data_panics() {
        let _ = kmeans(&[], 1, &KMeansConfig::default());
    }

    #[test]
    fn identical_points_collapse() {
        let data = vec![vec![5.0, 5.0]; 10];
        let r = kmeans(&data, 3, &KMeansConfig::default());
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn nearest_breaks_ties_by_lowest_index() {
        // p is equidistant from both centroids; index 0 must win.
        let centroids = Matrix::from_rows(&[vec![0.0], vec![2.0]]);
        assert_eq!(nearest(&[1.0], &centroids), (0, 1.0));
        let (a, d1, d2nd) = nearest2(&[1.0], &centroids);
        assert_eq!((a, d1, d2nd), (0, 1.0, 1.0));
        // Three-way tie, shuffled order: still the lowest index.
        let three = Matrix::from_rows(&[vec![2.0], vec![0.0], vec![2.0]]);
        assert_eq!(nearest(&[1.0], &three).0, 0);
    }

    #[test]
    fn reseed_picks_farthest_from_own_centroid() {
        // Regression for the historical bug where the farthest-point
        // search measured every candidate against the *first point's*
        // centroid instead of each point's own. Cluster 0 = {0, 1, 8}
        // (mean 3, farthest member 8.0 at d² = 25); cluster 1 =
        // {100, 101, 102} (mean 101, all within d² ≤ 1); cluster 2 is
        // empty. The correct reseed is 8.0; the buggy search — every
        // distance taken to cluster 0's centroid — would have picked
        // 102.0 (d² = 99² from 3).
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![8.0],
            vec![100.0],
            vec![101.0],
            vec![102.0],
        ]);
        let assignments = [0, 0, 0, 1, 1, 1];
        let mut centroids = Matrix::from_rows(&[vec![3.0], vec![101.0], vec![50.0]]);
        let (mut sums, mut counts, mut prev, mut delta) =
            (Matrix::zeros(3, 1), vec![0usize; 3], Matrix::default(), Vec::new());
        let mut dirty = vec![true; 3];
        let reseeded = update_centroids(
            &data,
            &assignments,
            3,
            &mut centroids,
            &mut sums,
            &mut counts,
            &mut prev,
            &mut delta,
            &mut dirty,
        );
        assert!(reseeded);
        assert_eq!(centroids.row(0), &[3.0]);
        assert_eq!(centroids.row(1), &[101.0]);
        assert_eq!(centroids.row(2), &[8.0], "reseed must pick the true farthest point");
    }

    #[test]
    fn reseed_exercised_end_to_end() {
        // Duplicate-heavy data with k = 3 forces empty clusters and
        // reseeds on (nearly) every Lloyd iteration; the cfg(test)
        // cross-check inside kmeans_with verifies the pruned path stays
        // identical to naive throughout.
        let mut data = vec![vec![0.0, 0.0]; 8];
        data.push(vec![10.0, 10.0]);
        let r = kmeans(&data, 3, &KMeansConfig::default());
        assert_eq!(r.sizes().iter().sum::<usize>(), 9);
    }
}
