//! Phase-*sequence* analysis: once intervals are classified into phases,
//! the label sequence itself carries structure — run lengths, a
//! transition matrix, and next-phase predictability. This is the
//! phase-behaviour tooling of the literature the paper builds on (Hind
//! et al.'s phase-shift classification [2]; Sherwood et al.'s phase
//! prediction), and it is what the suite's calibration tests use to
//! verify that generated programs *have* the run structure the paper's
//! benchmarks exhibit.

use std::collections::HashMap;

/// Summary of a classified phase sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceAnalysis {
    /// Number of phases (max label + 1).
    pub num_phases: usize,
    /// Total sequence length.
    pub len: usize,
    /// Number of maximal same-phase runs.
    pub num_runs: usize,
    /// Mean run length.
    pub mean_run_len: f64,
    /// Transition counts: `transitions[from][to]`, self-transitions
    /// excluded.
    pub transitions: Vec<Vec<u64>>,
    /// Per-phase occupancy (fraction of intervals).
    pub occupancy: Vec<f64>,
}

impl SequenceAnalysis {
    /// Analyse a phase-label sequence.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use mlpa_phase::sequence::SequenceAnalysis;
    ///
    /// let a = SequenceAnalysis::of(&[0, 0, 1, 1, 0, 0]);
    /// assert_eq!(a.num_phases, 2);
    /// assert_eq!(a.num_runs, 3);
    /// assert_eq!(a.mean_run_len, 2.0);
    /// ```
    pub fn of(labels: &[usize]) -> SequenceAnalysis {
        assert!(!labels.is_empty(), "cannot analyse an empty sequence");
        let num_phases = labels.iter().copied().max().expect("non-empty") + 1;
        let mut transitions = vec![vec![0u64; num_phases]; num_phases];
        let mut occupancy = vec![0f64; num_phases];
        let mut num_runs = 1usize;
        for (i, &l) in labels.iter().enumerate() {
            occupancy[l] += 1.0;
            if i > 0 && labels[i - 1] != l {
                transitions[labels[i - 1]][l] += 1;
                num_runs += 1;
            }
        }
        for o in &mut occupancy {
            *o /= labels.len() as f64;
        }
        SequenceAnalysis {
            num_phases,
            len: labels.len(),
            num_runs,
            mean_run_len: labels.len() as f64 / num_runs as f64,
            transitions,
            occupancy,
        }
    }

    /// Stationarity check: whether each phase's earliest occurrence lies
    /// within the first `frac` of the sequence — the structural property
    /// COASTS's earliest-instance selection depends on.
    pub fn phases_recur_early(&self, labels: &[usize], frac: f64) -> bool {
        let cutoff = (labels.len() as f64 * frac).ceil() as usize;
        let mut firsts = vec![usize::MAX; self.num_phases];
        for (i, &l) in labels.iter().enumerate() {
            if firsts[l] == usize::MAX {
                firsts[l] = i;
            }
        }
        firsts.into_iter().filter(|&f| f != usize::MAX).all(|f| f < cutoff)
    }
}

/// A last-value / Markov hybrid next-phase predictor (Sherwood et al.,
/// ISCA 2003 style): predicts the next interval's phase from the current
/// one using learned transition frequencies, defaulting to "same phase
/// again" until evidence accumulates.
#[derive(Debug, Clone, Default)]
pub struct PhasePredictor {
    counts: HashMap<(usize, usize), u64>,
    last: Option<usize>,
}

impl PhasePredictor {
    /// New, untrained predictor.
    pub fn new() -> PhasePredictor {
        PhasePredictor::default()
    }

    /// Predict the phase of the next interval (before observing it).
    /// Untrained or unseen states predict "same as current".
    pub fn predict(&self) -> Option<usize> {
        let cur = self.last?;
        let mut best = (cur, 0u64);
        for (&(from, to), &n) in &self.counts {
            if from == cur && n > best.1 {
                best = (to, n);
            }
        }
        // "Stay" is the default hypothesis: it must strictly lose to a
        // learned transition to be overridden.
        let stay = self.counts.get(&(cur, cur)).copied().unwrap_or(0);
        Some(if best.1 > stay { best.0 } else { cur })
    }

    /// Observe the actual phase of the next interval; returns whether
    /// the prediction (if any) was correct.
    pub fn observe(&mut self, phase: usize) -> Option<bool> {
        let correct = self.predict().map(|p| p == phase);
        if let Some(last) = self.last {
            *self.counts.entry((last, phase)).or_insert(0) += 1;
        }
        self.last = Some(phase);
        correct
    }

    /// Run over a whole sequence, returning prediction accuracy over the
    /// second half (after warm-up).
    ///
    /// # Panics
    ///
    /// Panics if `labels` has fewer than four elements.
    pub fn accuracy_on(labels: &[usize]) -> f64 {
        assert!(labels.len() >= 4, "sequence too short to evaluate");
        let mut p = PhasePredictor::new();
        let half = labels.len() / 2;
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, &l) in labels.iter().enumerate() {
            if let Some(ok) = p.observe(l) {
                if i >= half {
                    total += 1;
                    correct += usize::from(ok);
                }
            }
        }
        correct as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_counts_runs_and_occupancy() {
        let a = SequenceAnalysis::of(&[0, 0, 0, 1, 1, 2, 0, 0]);
        assert_eq!(a.num_phases, 3);
        assert_eq!(a.num_runs, 4);
        assert!((a.mean_run_len - 2.0).abs() < 1e-12);
        assert!((a.occupancy[0] - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(a.transitions[0][1], 1);
        assert_eq!(a.transitions[1][2], 1);
        assert_eq!(a.transitions[2][0], 1);
        assert_eq!(a.transitions[1][0], 0);
    }

    #[test]
    fn early_recurrence_check() {
        let labels = [0, 1, 2, 0, 1, 2, 0, 1, 2];
        let a = SequenceAnalysis::of(&labels);
        assert!(a.phases_recur_early(&labels, 0.34));
        let late = [0, 0, 0, 0, 0, 0, 0, 0, 1];
        let b = SequenceAnalysis::of(&late);
        assert!(!b.phases_recur_early(&late, 0.5));
    }

    #[test]
    fn predictor_learns_cyclic_pattern() {
        // A strict cycle 0,1,2,0,1,2… is fully predictable.
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let acc = PhasePredictor::accuracy_on(&labels);
        assert!(acc > 0.95, "cyclic accuracy {acc}");
    }

    #[test]
    fn predictor_exploits_run_structure() {
        // Runs of 8 (the suite's widened structure): "stay" is right
        // 7/8 of the time; the learned transitions handle the rest
        // imperfectly but accuracy must clear the stay-only baseline.
        let labels: Vec<usize> = (0..160).map(|i| (i / 8) % 4).collect();
        let acc = PhasePredictor::accuracy_on(&labels);
        assert!(acc >= 7.0 / 8.0 - 0.02, "run-structured accuracy {acc}");
    }

    #[test]
    fn untrained_predictor_is_honest() {
        let mut p = PhasePredictor::new();
        assert_eq!(p.predict(), None);
        assert_eq!(p.observe(1), None);
        assert_eq!(p.predict(), Some(1), "defaults to stay");
    }

    #[test]
    fn works_on_real_coasts_assignments() {
        // End-to-end: classify a real suite benchmark's coarse intervals
        // and verify the designed run structure shows through.
        use crate::simpoint::SimPointConfig;
        use mlpa_sim::FunctionalSim;
        use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};

        let spec = suite::benchmark_with_iters("swim", 4).expect("swim").scaled(0.1);
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        let proj = crate::project::RandomProjection::new(cb.program().num_blocks(), 15, 7);
        let mut prof = crate::interval::BoundaryProfiler::new(&proj, cb.outer_header());
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
        let intervals = prof.finish();
        let body = &intervals[1..intervals.len() - 1];
        let mut data = crate::matrix::Matrix::with_capacity(body.len(), 15);
        for iv in body {
            data.push_row(&iv.vector);
        }
        let sel = crate::bic::choose_k(&data, 4, 0.9, &SimPointConfig::fine_10m().kmeans);
        let a = SequenceAnalysis::of(&sel.result.assignments);
        // swim cycles three phases in runs of 4 (widen factor).
        assert!(a.mean_run_len >= 3.0, "mean run length {}", a.mean_run_len);
        assert!(a.phases_recur_early(&sel.result.assignments, 0.4));
        let acc = PhasePredictor::accuracy_on(&sel.result.assignments);
        assert!(acc > 0.6, "real-sequence predictability {acc}");
    }
}
