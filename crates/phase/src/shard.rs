//! Segment-sharded profiling: split one whole-trace profiling pass
//! into per-segment shards whose merged output is **bit-identical** to
//! the monolithic pass.
//!
//! The decomposition rests on two facts:
//!
//! 1. **BBV accumulation is exact integer arithmetic.** Signatures are
//!    accumulated in the projected space against ±1 Rademacher rows
//!    ([`RandomProjection`]), so every partial sum is an integer with
//!    magnitude bounded by the trace length (far below 2⁵³). `f64`
//!    represents and adds such integers exactly, which makes the
//!    accumulation associative: summing per-segment partial vectors
//!    equals the monolithic left-to-right sum bit-for-bit.
//!    Normalisation (`× 1/len`) happens once, at merge, with the same
//!    operands as the monolithic flush.
//! 2. **The per-block profiling state is cheap to reconstruct.** What a
//!    profiler knows at trace position *S* beyond its accumulators is
//!    tiny: the fixed-length slicer needs the start of the interval
//!    spanning *S* and how much of it is consumed; the loop monitor
//!    needs the live loop stack and previous block; the boundary slicer
//!    needs the position of the last header entry. The `*Tracker` types
//!    recompute exactly that state with an O(1)-per-block walk over the
//!    prefix — no vectors, no hash maps, no attribution — so a shard
//!    aligns itself with the global trace for a fraction of the cost of
//!    profiling the prefix.
//!
//! A shard therefore emits *un-normalised pieces* ([`RawInterval`])
//! keyed by the global start of the interval they contribute to. A
//! segment boundary that splits an interval produces two (or, for
//! segments shorter than one interval, a chain of) pieces with equal
//! `start`; [`merge_fine`] coalesces them by exact addition before
//! normalising. Loop tallies are additive counters merged per header
//! ([`merge_loops`]), with `min_depth` taken only over shards that
//! actually pushed the header (a shard that merely continued iterating
//! a loop entered before its segment has no depth observation).
//!
//! The drivers that partition a trace into segments and run shards on
//! worker threads live in `mlpa-core`; everything here is
//! stream-agnostic and consumes `(BlockId, len)` records.

use crate::interval::Interval;
use crate::loops::{CyclicStructure, LoopProfile};
use crate::project::RandomProjection;
use mlpa_isa::{BlockId, Program};
use std::collections::HashMap;

/// An un-normalised contribution to one profiled interval: the piece a
/// single shard saw of the interval starting at global instruction
/// `start`.
#[derive(Debug, Clone, PartialEq)]
pub struct RawInterval {
    /// Global start of the interval this piece belongs to.
    pub start: u64,
    /// Instructions this shard contributed to the interval.
    pub len: u64,
    /// Un-normalised projected-space accumulator over those
    /// instructions (exact integer components).
    pub acc: Vec<f64>,
}

// ---------------------------------------------------------------------
// Fixed-length (fine) intervals
// ---------------------------------------------------------------------

/// Prefix tracker for the fixed-length slicer: after feeding it every
/// block before a segment, it knows where the interval spanning the
/// segment start begins and how much of it is already consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FineCutTracker {
    interval_len: u64,
    /// Global start of the currently open interval.
    start: u64,
    /// Instructions consumed in the open interval.
    count: u64,
}

impl FineCutTracker {
    /// Track cuts of `interval_len`-instruction intervals.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(interval_len: u64) -> FineCutTracker {
        assert!(interval_len > 0, "interval length must be positive");
        FineCutTracker { interval_len, start: 0, count: 0 }
    }

    /// Observe one block of `insts` instructions (the id is irrelevant
    /// to cut positions).
    #[inline]
    pub fn record(&mut self, insts: u64) {
        self.count += insts;
        if self.count >= self.interval_len {
            self.start += self.count;
            self.count = 0;
        }
    }

    /// Global start of the currently open interval.
    pub fn interval_start(&self) -> u64 {
        self.start
    }

    /// Instructions already consumed in the open interval.
    pub fn consumed(&self) -> u64 {
        self.count
    }
}

/// Shard-local fixed-length profiler: the counterpart of
/// [`FixedLengthProfiler`](crate::interval::FixedLengthProfiler) that
/// starts mid-trace (seeded by a [`FineCutTracker`]) and emits
/// [`RawInterval`] pieces instead of finished intervals.
#[derive(Debug)]
pub struct ShardFineProfiler<'a> {
    proj: &'a RandomProjection,
    interval_len: u64,
    acc: Vec<f64>,
    /// Instructions this shard added to the open interval.
    local_len: u64,
    /// Total instructions in the open interval, prefix-consumed
    /// included — the quantity the global cut rule tests.
    global_count: u64,
    piece_start: u64,
    pieces: Vec<RawInterval>,
}

impl<'a> ShardFineProfiler<'a> {
    /// Create a shard profiler aligned at `entry`'s position.
    pub fn new(
        proj: &'a RandomProjection,
        interval_len: u64,
        entry: &FineCutTracker,
    ) -> ShardFineProfiler<'a> {
        assert_eq!(entry.interval_len, interval_len, "tracker/profiler interval mismatch");
        ShardFineProfiler {
            proj,
            interval_len,
            acc: vec![0.0; proj.dim()],
            local_len: 0,
            global_count: entry.consumed(),
            piece_start: entry.interval_start(),
            pieces: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.local_len > 0 {
            let acc = std::mem::replace(&mut self.acc, vec![0.0; self.proj.dim()]);
            self.pieces.push(RawInterval { start: self.piece_start, len: self.local_len, acc });
        }
        self.piece_start += self.global_count;
        self.global_count = 0;
        self.local_len = 0;
    }

    /// Record one executed block of `insts` instructions.
    #[inline]
    pub fn record(&mut self, id: BlockId, insts: u64) {
        self.proj.accumulate(id.index(), insts as f64, &mut self.acc);
        self.global_count += insts;
        self.local_len += insts;
        if self.global_count >= self.interval_len {
            self.flush();
        }
    }

    /// Close the trailing piece and return all pieces in trace order.
    pub fn finish(mut self) -> Vec<RawInterval> {
        if self.local_len > 0 {
            let acc = std::mem::take(&mut self.acc);
            self.pieces.push(RawInterval { start: self.piece_start, len: self.local_len, acc });
        }
        self.pieces
    }
}

/// Merge per-shard piece lists (in segment order) into the final
/// interval list, bit-identical to the monolithic profiler's output.
///
/// Consecutive pieces with equal `start` are contributions to the same
/// interval split by one or more segment boundaries; their lengths and
/// accumulators add exactly (integer components), after which
/// normalisation uses the same `× 1/len` the monolithic flush does.
pub fn merge_fine<I>(shards: I) -> Vec<Interval>
where
    I: IntoIterator<Item = Vec<RawInterval>>,
{
    let mut out: Vec<Interval> = Vec::new();
    let mut cur: Option<RawInterval> = None;
    for piece in shards.into_iter().flatten() {
        match &mut cur {
            Some(c) if c.start == piece.start => {
                c.len += piece.len;
                for (a, b) in c.acc.iter_mut().zip(&piece.acc) {
                    *a += b;
                }
            }
            _ => {
                if let Some(done) = cur.replace(piece) {
                    push_interval(&mut out, done);
                }
            }
        }
    }
    if let Some(done) = cur {
        push_interval(&mut out, done);
    }
    out
}

fn push_interval(out: &mut Vec<Interval>, raw: RawInterval) {
    debug_assert!(raw.len > 0, "empty merged interval");
    let inv = 1.0 / raw.len as f64;
    let vector: Vec<f64> = raw.acc.iter().map(|v| v * inv).collect();
    out.push(Interval { index: out.len(), start: raw.start, len: raw.len, vector });
}

// ---------------------------------------------------------------------
// Loop profiling
// ---------------------------------------------------------------------

/// Prefix tracker for the loop monitor: replays the stack transitions
/// of [`LoopMonitor`](crate::loops::LoopMonitor) — back-edge detection,
/// address-ordered pops, pushes — without statistics or attribution, so
/// it is O(1) amortised per block and allocation-light.
#[derive(Debug, Clone)]
pub struct LoopStackTracker<'p> {
    program: &'p Program,
    /// `(header, header_addr)` frames, outermost first.
    stack: Vec<(BlockId, u64)>,
    prev: Option<BlockId>,
}

impl<'p> LoopStackTracker<'p> {
    /// Start tracking at the beginning of the trace.
    pub fn new(program: &'p Program) -> LoopStackTracker<'p> {
        LoopStackTracker { program, stack: Vec::new(), prev: None }
    }

    /// Observe one block.
    #[inline]
    pub fn record(&mut self, id: BlockId) {
        if let Some(prev) = self.prev {
            if self.program.is_backward(prev, id) {
                let target_addr = self.program.block(id).addr;
                while let Some(&(_, addr)) = self.stack.last() {
                    if addr > target_addr {
                        self.stack.pop();
                    } else {
                        break;
                    }
                }
                match self.stack.last() {
                    Some(&(h, _)) if h == id => {}
                    _ => self.stack.push((id, target_addr)),
                }
            }
        }
        self.prev = Some(id);
    }
}

/// Per-shard tallies for one cyclic structure. The counters are plain
/// sums; `min_depth` is `None` when the shard never pushed the header
/// (it only iterated or attributed to a loop entered before its
/// segment), so merging takes the minimum over actual observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLoopStats {
    /// The loop-header block.
    pub header: BlockId,
    /// Instructions attributed while the loop was live in this shard.
    pub coverage_insts: u64,
    /// Back edges observed in this shard.
    pub back_edges: u64,
    /// Entries observed in this shard.
    pub entries: u64,
    /// Minimum push depth observed in this shard, if any.
    pub min_depth: Option<usize>,
}

/// One shard's loop-profile contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLoopProfile {
    /// Per-structure tallies, sorted by header for determinism.
    pub stats: Vec<ShardLoopStats>,
    /// Instructions observed by this shard.
    pub total_insts: u64,
}

/// A live loop frame with the shard-local instruction count at the
/// moment it started receiving attribution (push, or shard entry for
/// seeded frames).
#[derive(Debug, Clone, Copy)]
struct ShardFrame {
    header: BlockId,
    addr: u64,
    start: u64,
}

/// Shard-local loop monitor: [`LoopMonitor`](crate::loops::LoopMonitor)
/// seeded with the live stack a [`LoopStackTracker`] reconstructed over
/// the segment's prefix.
///
/// Unlike the monolithic monitor — which walks the live stack on every
/// block to attribute instructions (O(depth) hash lookups per block) —
/// this one is O(1) amortised per block: a frame's coverage over one
/// live episode is the contiguous instruction range from its push to
/// its pop, so each frame carries a snapshot of the shard-local count
/// at push and settles `count_at_pop − count_at_push` when popped (or
/// at [`ShardLoopMonitor::finish`] if still live). The settled sums
/// equal the monolithic per-block attribution term for term, so the
/// merge stays bit-identical while the sharded pass drops the
/// profiling bottleneck.
#[derive(Debug)]
pub struct ShardLoopMonitor<'p> {
    program: &'p Program,
    stack: Vec<ShardFrame>,
    stats: HashMap<BlockId, ShardLoopStats>,
    prev: Option<BlockId>,
    total_insts: u64,
}

impl<'p> ShardLoopMonitor<'p> {
    /// Continue monitoring from `entry`'s position.
    pub fn new(entry: LoopStackTracker<'p>) -> ShardLoopMonitor<'p> {
        // Seeded frames need stats entries up front: iteration and
        // settling hit existing entries, exactly as in the monolithic
        // monitor where every live frame was pushed (and thus
        // registered) earlier in the trace. They start attributing at
        // shard-local count 0.
        let mut stats = HashMap::new();
        for &(h, _) in &entry.stack {
            stats.insert(
                h,
                ShardLoopStats {
                    header: h,
                    coverage_insts: 0,
                    back_edges: 0,
                    entries: 0,
                    min_depth: None,
                },
            );
        }
        let stack = entry
            .stack
            .iter()
            .map(|&(header, addr)| ShardFrame { header, addr, start: 0 })
            .collect();
        ShardLoopMonitor { program: entry.program, stack, stats, prev: entry.prev, total_insts: 0 }
    }

    /// Observe one block of `insts` instructions.
    #[inline]
    pub fn record(&mut self, id: BlockId, insts: u64) {
        // The monolithic monitor pops before attributing the block, so
        // a popped frame's episode ends at the count *before* this
        // block, while a pushed frame's episode starts there (it does
        // receive this block's instructions).
        let before = self.total_insts;
        self.total_insts += insts;
        if let Some(prev) = self.prev {
            if self.program.is_backward(prev, id) {
                let target_addr = self.program.block(id).addr;
                while let Some(top) = self.stack.last() {
                    if top.addr > target_addr {
                        let f = self.stack.pop().expect("just peeked");
                        self.stats
                            .get_mut(&f.header)
                            .expect("live frame has stats")
                            .coverage_insts += before - f.start;
                    } else {
                        break;
                    }
                }
                match self.stack.last() {
                    Some(top) if top.header == id => {
                        let s = self.stats.get_mut(&id).expect("live frame has stats");
                        s.back_edges += 1;
                    }
                    _ => {
                        let depth = self.stack.len();
                        let e = self.stats.entry(id).or_insert(ShardLoopStats {
                            header: id,
                            coverage_insts: 0,
                            back_edges: 0,
                            entries: 0,
                            min_depth: None,
                        });
                        e.entries += 1;
                        e.back_edges += 1;
                        e.min_depth = Some(e.min_depth.map_or(depth, |d| d.min(depth)));
                        self.stack.push(ShardFrame {
                            header: id,
                            addr: target_addr,
                            start: before,
                        });
                    }
                }
            }
        }
        self.prev = Some(id);
    }

    /// Finish the shard and return its tallies.
    pub fn finish(mut self) -> ShardLoopProfile {
        // Settle the episodes still open at the segment's end: a live
        // frame was attributed everything from its snapshot onward.
        for f in &self.stack {
            self.stats.get_mut(&f.header).expect("live frame has stats").coverage_insts +=
                self.total_insts - f.start;
        }
        let mut stats: Vec<ShardLoopStats> = self.stats.into_values().collect();
        stats.sort_by_key(|s| s.header);
        // A seeded frame the shard neither pushed nor attributed to is
        // impossible (seeded frames are live, so the very first block
        // attributes to them) — but an empty segment produces no
        // records at all; drop tallies that observed nothing so empty
        // shards merge as no-ops.
        stats.retain(|s| {
            s.coverage_insts > 0 || s.back_edges > 0 || s.entries > 0 || s.min_depth.is_some()
        });
        ShardLoopProfile { stats, total_insts: self.total_insts }
    }
}

/// Merge per-shard loop tallies (in segment order) into a
/// [`LoopProfile`] bit-identical to the monolithic monitor's: counters
/// add, `min_depth` is the minimum over shards that pushed the header,
/// and the final sort is the monolithic one (depth, coverage
/// descending, header).
pub fn merge_loops<I>(shards: I) -> LoopProfile
where
    I: IntoIterator<Item = ShardLoopProfile>,
{
    let mut stats: HashMap<BlockId, CyclicStructure> = HashMap::new();
    let mut total_insts = 0u64;
    for shard in shards {
        total_insts += shard.total_insts;
        for s in shard.stats {
            let e = stats.entry(s.header).or_insert(CyclicStructure {
                header: s.header,
                coverage_insts: 0,
                back_edges: 0,
                entries: 0,
                min_depth: usize::MAX,
            });
            e.coverage_insts += s.coverage_insts;
            e.back_edges += s.back_edges;
            e.entries += s.entries;
            if let Some(d) = s.min_depth {
                e.min_depth = e.min_depth.min(d);
            }
        }
    }
    let mut structures: Vec<CyclicStructure> = stats.into_values().collect();
    // Every structure was pushed in the shard that first discovered it
    // (a frame live at a segment boundary was pushed inside an earlier
    // segment, by induction down to shard 0's empty seed stack).
    debug_assert!(structures.iter().all(|s| s.min_depth != usize::MAX));
    structures.sort_by(|a, b| {
        a.min_depth
            .cmp(&b.min_depth)
            .then(b.coverage_insts.cmp(&a.coverage_insts))
            .then(a.header.cmp(&b.header))
    });
    LoopProfile { structures, total_insts }
}

// ---------------------------------------------------------------------
// Boundary (loop-iteration) intervals
// ---------------------------------------------------------------------

/// Prefix tracker for the boundary slicer: where the interval spanning
/// the segment start begins (the last header entry before it, or 0),
/// how much is consumed, and where the first header entry of the trace
/// lies if the prefix contains one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryTracker {
    header: BlockId,
    start: u64,
    count: u64,
    first_header_pos: Option<u64>,
}

impl BoundaryTracker {
    /// Track intervals cut at entries of `header`.
    pub fn new(header: BlockId) -> BoundaryTracker {
        BoundaryTracker { header, start: 0, count: 0, first_header_pos: None }
    }

    /// Observe one block of `insts` instructions.
    #[inline]
    pub fn record(&mut self, id: BlockId, insts: u64) {
        if id == self.header {
            if self.first_header_pos.is_none() {
                self.first_header_pos = Some(self.start + self.count);
            }
            self.start += self.count;
            self.count = 0;
        }
        self.count += insts;
    }
}

/// Shard-local boundary profiler seeded by a [`BoundaryTracker`]; emits
/// [`RawInterval`] pieces plus the global position of the first header
/// entry the shard itself observed (for the merged prologue flag).
#[derive(Debug)]
pub struct ShardBoundaryProfiler<'a> {
    proj: &'a RandomProjection,
    header: BlockId,
    acc: Vec<f64>,
    local_len: u64,
    global_count: u64,
    piece_start: u64,
    pieces: Vec<RawInterval>,
    first_header_pos: Option<u64>,
}

impl<'a> ShardBoundaryProfiler<'a> {
    /// Create a shard profiler aligned at `entry`'s position.
    pub fn new(proj: &'a RandomProjection, entry: &BoundaryTracker) -> ShardBoundaryProfiler<'a> {
        ShardBoundaryProfiler {
            proj,
            header: entry.header,
            acc: vec![0.0; proj.dim()],
            local_len: 0,
            global_count: entry.count,
            piece_start: entry.start,
            pieces: Vec::new(),
            first_header_pos: None,
        }
    }

    /// Record one executed block of `insts` instructions.
    #[inline]
    pub fn record(&mut self, id: BlockId, insts: u64) {
        if id == self.header {
            if self.first_header_pos.is_none() {
                self.first_header_pos = Some(self.piece_start + self.global_count);
            }
            if self.local_len > 0 {
                let acc = std::mem::replace(&mut self.acc, vec![0.0; self.proj.dim()]);
                self.pieces.push(RawInterval { start: self.piece_start, len: self.local_len, acc });
            }
            self.piece_start += self.global_count;
            self.global_count = 0;
            self.local_len = 0;
        }
        self.proj.accumulate(id.index(), insts as f64, &mut self.acc);
        self.global_count += insts;
        self.local_len += insts;
    }

    /// Close the trailing piece and return `(pieces, first header
    /// position this shard observed)`.
    pub fn finish(mut self) -> (Vec<RawInterval>, Option<u64>) {
        if self.local_len > 0 {
            let acc = std::mem::take(&mut self.acc);
            self.pieces.push(RawInterval { start: self.piece_start, len: self.local_len, acc });
        }
        (self.pieces, self.first_header_pos)
    }
}

/// Merge per-shard boundary pieces (in segment order) into the final
/// `(intervals, has_prologue)` pair, bit-identical to the monolithic
/// [`BoundaryProfiler`](crate::interval::BoundaryProfiler): pieces
/// merge like fine intervals, and the trace has a prologue iff the
/// earliest header entry any shard observed lies past position 0.
pub fn merge_boundary<I>(shards: I) -> (Vec<Interval>, bool)
where
    I: IntoIterator<Item = (Vec<RawInterval>, Option<u64>)>,
{
    let mut pieces = Vec::new();
    let mut first_header: Option<u64> = None;
    for (shard_pieces, pos) in shards {
        if first_header.is_none() {
            first_header = pos;
        }
        pieces.push(shard_pieces);
    }
    (merge_fine(pieces), first_header.is_some_and(|p| p > 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{validate_intervals, BoundaryProfiler, FixedLengthProfiler};
    use crate::loops::LoopMonitor;
    use mlpa_isa::stream::InstructionStream;
    use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};

    fn block_seq(cb: &CompiledBenchmark) -> Vec<(BlockId, u64)> {
        let mut s = WorkloadStream::new(cb);
        let mut scratch = Vec::new();
        let mut seq = Vec::new();
        while let Some(m) = s.next_block_meta(&mut scratch) {
            seq.push((m.id, m.insts));
        }
        seq
    }

    fn compiled() -> CompiledBenchmark {
        CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap()
    }

    /// Split `seq` at block indices `cuts` and profile each segment
    /// with tracker-seeded shard profilers.
    fn shard_fine(
        seq: &[(BlockId, u64)],
        cuts: &[usize],
        proj: &RandomProjection,
        len: u64,
    ) -> Vec<Interval> {
        let mut bounds = vec![0];
        bounds.extend_from_slice(cuts);
        bounds.push(seq.len());
        let mut shards = Vec::new();
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut tracker = FineCutTracker::new(len);
            for &(_, n) in &seq[..lo] {
                tracker.record(n);
            }
            let mut prof = ShardFineProfiler::new(proj, len, &tracker);
            for &(id, n) in &seq[lo..hi] {
                prof.record(id, n);
            }
            shards.push(prof.finish());
        }
        merge_fine(shards)
    }

    #[test]
    fn fine_shards_merge_bit_identical() {
        let cb = compiled();
        let seq = block_seq(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut mono = FixedLengthProfiler::new(&proj, 10_000);
        for &(id, n) in &seq {
            mono.record(id, n);
        }
        let expect = mono.finish();
        validate_intervals(&expect).unwrap();

        let n = seq.len();
        for cuts in [vec![], vec![n / 2], vec![n / 7, n / 3, n / 2, 2 * n / 3, n - 1]] {
            let got = shard_fine(&seq, &cuts, &proj, 10_000);
            assert_eq!(got, expect, "cuts {cuts:?}");
        }
    }

    #[test]
    fn fine_shards_handle_segments_inside_one_interval() {
        // Consecutive cuts one block apart force segments far smaller
        // than an interval: chains of same-start pieces must coalesce.
        let cb = compiled();
        let seq = block_seq(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut mono = FixedLengthProfiler::new(&proj, 50_000);
        for &(id, n) in &seq {
            mono.record(id, n);
        }
        let expect = mono.finish();
        let cuts: Vec<usize> = (100..140).collect();
        assert_eq!(shard_fine(&seq, &cuts, &proj, 50_000), expect);
    }

    #[test]
    fn loop_shards_merge_bit_identical() {
        let cb = compiled();
        let seq = block_seq(&cb);
        use mlpa_sim::functional::Observer;
        let mut mono = LoopMonitor::new(cb.program());
        for &(id, n) in &seq {
            // Drive the monitor's transition logic with a synthesized
            // slice of the right length (contents are irrelevant).
            let insts = vec![mlpa_isa::Instruction::nop(); n as usize];
            mono.on_block(id, &insts, 0);
        }
        let expect = mono.finish();

        let n = seq.len();
        for cuts in [vec![n / 2], vec![1, 2, n / 5, n / 2, n - 2]] {
            let mut bounds = vec![0];
            bounds.extend_from_slice(&cuts);
            bounds.push(n);
            let mut shards = Vec::new();
            for w in bounds.windows(2) {
                let mut tracker = LoopStackTracker::new(cb.program());
                for &(id, _) in &seq[..w[0]] {
                    tracker.record(id);
                }
                let mut mon = ShardLoopMonitor::new(tracker);
                for &(id, len) in &seq[w[0]..w[1]] {
                    mon.record(id, len);
                }
                shards.push(mon.finish());
            }
            let got = merge_loops(shards);
            assert_eq!(got, expect, "cuts {cuts:?}");
        }
    }

    #[test]
    fn boundary_shards_merge_bit_identical() {
        let cb = compiled();
        let seq = block_seq(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let header = cb.outer_header();
        let mut mono = BoundaryProfiler::new(&proj, header);
        for &(id, n) in &seq {
            mono.record(id, n);
        }
        let expect_prologue = mono.has_prologue();
        let expect = mono.finish();

        let n = seq.len();
        for cuts in [vec![], vec![n / 3], vec![1, n / 4, n / 2, 3 * n / 4]] {
            let mut bounds = vec![0];
            bounds.extend_from_slice(&cuts);
            bounds.push(n);
            let mut shards = Vec::new();
            for w in bounds.windows(2) {
                let mut tracker = BoundaryTracker::new(header);
                for &(id, len) in &seq[..w[0]] {
                    tracker.record(id, len);
                }
                let mut prof = ShardBoundaryProfiler::new(&proj, &tracker);
                for &(id, len) in &seq[w[0]..w[1]] {
                    prof.record(id, len);
                }
                shards.push(prof.finish());
            }
            let (got, prologue) = merge_boundary(shards);
            assert_eq!(got, expect, "cuts {cuts:?}");
            assert_eq!(prologue, expect_prologue, "cuts {cuts:?}");
        }
    }

    #[test]
    fn empty_segments_merge_as_noops() {
        let cb = compiled();
        let seq = block_seq(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let mut mono = FixedLengthProfiler::new(&proj, 10_000);
        for &(id, n) in &seq {
            mono.record(id, n);
        }
        let expect = mono.finish();
        // Duplicate cut positions create zero-length segments.
        let n = seq.len();
        assert_eq!(shard_fine(&seq, &[n / 2, n / 2, n / 2], &proj, 10_000), expect);
    }
}
