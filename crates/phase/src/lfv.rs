//! Loop-frequency-vector (LFV) signatures — the alternative phase
//! metric of Lau, Schoenmackers & Calder (ISPASS 2004), which the paper
//! cites in §II: "using loop frequency vectors as a metric performed
//! almost as well as BBV in accuracy and could also yield fewer
//! distinct phases".
//!
//! Where a BBV counts instructions per *basic block*, an LFV counts
//! back-edge traversals per *loop header*. The vector is much lower
//! dimensional (loops ≪ blocks) and abstracts away straight-line code
//! layout, at the cost of some resolution.
//!
//! [`LfvProfiler`] is an [`Observer`] like the BBV profilers in
//! [`interval`](crate::interval); its intervals are directly usable by
//! [`simpoint::select`](crate::simpoint::select), so swapping the phase
//! metric is a one-line change. The `ablation_metric` bench compares
//! the two metrics end to end.
//!
//! Unlike the BBV profilers — which accumulate directly in the
//! 15-dimensional projected space (see DESIGN.md, "Kernel layout") —
//! the LFV profiler counts in its native header space: that space is
//! already small (loops ≪ blocks) and its dimensionality is only known
//! once profiling ends, so there is no projection to fold in.

use crate::interval::Interval;
use mlpa_isa::{BlockId, Instruction, Program};
use mlpa_sim::functional::Observer;

/// Fixed-length interval profiler collecting loop-frequency vectors.
///
/// Loop headers are discovered on the fly from backward transitions
/// (the same signal [`LoopMonitor`](crate::loops::LoopMonitor) uses);
/// each header gets a dimension in execution order of discovery. The
/// final vectors are padded to the full dimensionality and normalised
/// by interval instruction count, mirroring the BBV treatment.
///
/// # Example
///
/// ```
/// use mlpa_phase::lfv::LfvProfiler;
/// use mlpa_sim::FunctionalSim;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut prof = LfvProfiler::new(cb.program(), 10_000);
/// FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
/// let intervals = prof.finish();
/// assert!(!intervals.is_empty());
/// // LFVs are much lower-dimensional than the static block count.
/// assert!(intervals[0].vector.len() < cb.program().num_blocks());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct LfvProfiler<'p> {
    program: &'p Program,
    interval_len: u64,
    /// Dense loop-header index, keyed by block index.
    header_dim: Vec<Option<u32>>,
    num_headers: u32,
    /// Back-edge counts of the current interval, indexed by header dim.
    counts: Vec<f64>,
    count_insts: u64,
    start: u64,
    prev: Option<BlockId>,
    /// Raw per-interval (counts, start, len) records; vectors are padded
    /// to the final dimensionality in [`finish`](Self::finish).
    raw: Vec<(Vec<f64>, u64, u64)>,
}

impl<'p> LfvProfiler<'p> {
    /// Create a profiler cutting intervals of `interval_len`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(program: &'p Program, interval_len: u64) -> LfvProfiler<'p> {
        assert!(interval_len > 0, "interval length must be positive");
        LfvProfiler {
            program,
            interval_len,
            header_dim: vec![None; program.num_blocks()],
            num_headers: 0,
            counts: Vec::new(),
            count_insts: 0,
            start: 0,
            prev: None,
            raw: Vec::new(),
        }
    }

    /// Number of distinct loop headers discovered so far.
    pub fn num_headers(&self) -> usize {
        self.num_headers as usize
    }

    fn flush(&mut self) {
        if self.count_insts == 0 {
            return;
        }
        let counts = std::mem::take(&mut self.counts);
        self.raw.push((counts, self.start, self.count_insts));
        self.start += self.count_insts;
        self.count_insts = 0;
    }

    /// Flush the trailing interval and return all intervals, with
    /// vectors padded to the final header dimensionality and normalised
    /// by interval length.
    pub fn finish(mut self) -> Vec<Interval> {
        self.flush();
        let dim = self.num_headers as usize;
        self.raw
            .into_iter()
            .enumerate()
            .map(|(index, (mut counts, start, len))| {
                counts.resize(dim.max(1), 0.0);
                let inv = 1.0 / len as f64;
                for c in &mut counts {
                    *c *= inv;
                }
                Interval { index, start, len, vector: counts }
            })
            .collect()
    }
}

impl Observer for LfvProfiler<'_> {
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], _first: u64) {
        if let Some(prev) = self.prev {
            if self.program.is_backward(prev, id) {
                let dim = match self.header_dim[id.index()] {
                    Some(d) => d,
                    None => {
                        let d = self.num_headers;
                        self.header_dim[id.index()] = Some(d);
                        self.num_headers += 1;
                        d
                    }
                };
                if self.counts.len() <= dim as usize {
                    self.counts.resize(dim as usize + 1, 0.0);
                }
                // Weight back edges by the loop body executed since, the
                // LFV analogue of instruction-weighted BBVs; counting
                // raw edges would over-weight tiny inner loops.
                self.counts[dim as usize] += 1.0;
            }
        }
        self.prev = Some(id);
        self.count_insts += insts.len() as u64;
        if self.count_insts >= self.interval_len {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::validate_intervals;
    use crate::simpoint::{select, SimPointConfig};
    use mlpa_sim::FunctionalSim;
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};
    use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

    fn profile(cb: &CompiledBenchmark, len: u64) -> Vec<Interval> {
        let mut prof = LfvProfiler::new(cb.program(), len);
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
        prof.finish()
    }

    fn two_phase_cb() -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 50_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn intervals_tile_the_trace() {
        let cb = two_phase_cb();
        let ivs = profile(&cb, 10_000);
        validate_intervals(&ivs).unwrap();
        let mut f = FunctionalSim::new(cb.program());
        let total = f.run(WorkloadStream::new(&cb), &mut ()).instructions;
        assert_eq!(ivs.iter().map(|i| i.len).sum::<u64>(), total);
    }

    #[test]
    fn dimensionality_is_loop_count_not_block_count() {
        let cb = two_phase_cb();
        let ivs = profile(&cb, 10_000);
        let dim = ivs[0].vector.len();
        assert!(dim > 2, "at least outer + inner loops, got {dim}");
        assert!(
            dim < cb.program().num_blocks(),
            "LFV dim {dim} should be below block count {}",
            cb.program().num_blocks()
        );
        // All intervals share the padded dimensionality.
        assert!(ivs.iter().all(|iv| iv.vector.len() == dim));
        // On a realistic suite benchmark the gap is wide.
        let spec = mlpa_workloads::suite::benchmark_with_iters("eon", 1).expect("eon").scaled(0.05);
        let big = CompiledBenchmark::compile(&spec).unwrap();
        let big_ivs = profile(&big, 10_000);
        assert!(
            big_ivs[0].vector.len() * 2 < big.program().num_blocks(),
            "suite LFV dim {} vs {} blocks",
            big_ivs[0].vector.len(),
            big.program().num_blocks()
        );
    }

    #[test]
    fn lfv_yields_no_more_phases_than_bbv() {
        // The Lau et al. claim the paper cites: LFVs "yield fewer
        // distinct phases" at comparable accuracy. Compare cluster
        // counts under identical settings.
        let cb = two_phase_cb();
        let lfv_ivs = profile(&cb, 10_000);
        let lfv = select(&lfv_ivs, &SimPointConfig::fine_10m());

        let proj = crate::project::RandomProjection::new(cb.program().num_blocks(), 15, 42);
        let mut bbv_prof = crate::interval::FixedLengthProfiler::new(&proj, 10_000);
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut bbv_prof);
        let bbv = select(&bbv_prof.finish(), &SimPointConfig::fine_10m());

        assert!(
            lfv.k <= bbv.k + 2,
            "LFV found {} phases vs BBV's {} — should not exceed it materially",
            lfv.k,
            bbv.k
        );
        let w: f64 = lfv.points.iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vectors_are_normalised_by_length() {
        let cb = two_phase_cb();
        let ivs = profile(&cb, 10_000);
        for iv in &ivs {
            for &v in &iv.vector {
                assert!((0.0..1.0).contains(&v), "frequency {v} out of range");
            }
        }
    }

    #[test]
    fn deterministic() {
        let cb = two_phase_cb();
        assert_eq!(profile(&cb, 8_000), profile(&cb, 8_000));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        let cb = two_phase_cb();
        let _ = LfvProfiler::new(cb.program(), 0);
    }
}
