#![warn(missing_docs)]

//! Phase-analysis library for the `mlpa` sampling-simulation study.
//!
//! Everything between "a program trace" and "a set of weighted
//! simulation points" lives here:
//!
//! * [`project`] — the 15-dimensional random projection of basic-block
//!   vectors (BBVs);
//! * [`interval`] — slicing an execution into fixed-length
//!   (fine-grained) or loop-boundary (coarse-grained) intervals while
//!   collecting one signature vector per interval;
//! * [`loops`] — dynamic detection of cyclic program structures from
//!   backward branches, with coverage statistics (COASTS's boundary
//!   collection step);
//! * [`shard`] — segment-sharded variants of the profilers whose
//!   merged output is bit-identical to the monolithic passes, plus the
//!   cheap prefix trackers that align a shard mid-trace;
//! * [`matrix`] — flat row-major storage the clustering kernels run on;
//! * [`kmeans`] / [`bic`] — the phase classifier (Hamerly-pruned
//!   Lloyd's over contiguous storage) and SimPoint's BIC-based choice
//!   of the number of phases;
//! * [`reference`] — the naive clustering implementations kept as an
//!   executable specification and bench baseline;
//! * [`pca`] — principal components for visualising phase behaviour
//!   (the paper's Fig. 1);
//! * [`simpoint`] — representative selection (classic SimPoint,
//!   earliest-instance for COASTS, and the EarlySP variant).
//!
//! # Example: fine-grained SimPoint on a workload
//!
//! ```
//! use mlpa_phase::{
//!     interval::FixedLengthProfiler,
//!     project::RandomProjection,
//!     simpoint::{select, SimPointConfig},
//! };
//! use mlpa_sim::FunctionalSim;
//! use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
//!
//! let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
//! let proj = RandomProjection::new(cb.program().num_blocks(), 15, 42);
//! let mut prof = FixedLengthProfiler::new(&proj, 10_000);
//! FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut prof);
//! let points = select(&prof.finish(), &SimPointConfig::fine_10m());
//! assert!(!points.points.is_empty());
//! # Ok::<(), String>(())
//! ```

pub mod bic;
pub mod interval;
pub mod kmeans;
pub mod lfv;
pub mod loops;
pub mod matrix;
pub mod pca;
pub mod project;
pub mod reference;
pub mod sequence;
pub mod shard;
pub mod simpoint;
pub mod wss;

pub use interval::{BoundaryProfiler, FixedLengthProfiler, Interval};
pub use loops::{CyclicStructure, LoopMonitor, LoopProfile};
pub use matrix::Matrix;
pub use project::RandomProjection;
pub use simpoint::{select, Selection, SimPoint, SimPointConfig, SimPoints};
