//! Seeded random projection of basic-block vectors.
//!
//! SimPoint projects raw BBVs (one dimension per static basic block)
//! down to 15 dimensions with a random matrix before clustering; the
//! projection preserves relative distances (Johnson–Lindenstrauss) while
//! slashing the clustering cost. We use a ±1 Rademacher matrix, the
//! standard cheap choice.

use mlpa_isa::rng::SplitMix64;

/// The projection dimensionality used by SimPoint and this paper.
pub const DEFAULT_DIM: usize = 15;

/// A `num_blocks × dim` random ±1 projection matrix.
///
/// # Example
///
/// ```
/// use mlpa_phase::project::RandomProjection;
///
/// let p = RandomProjection::new(100, 15, 42);
/// let raw = vec![1.0; 100];
/// let v = p.project(&raw);
/// assert_eq!(v.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjection {
    /// Row-major `num_blocks × dim` of ±1 entries.
    matrix: Vec<f64>,
    num_blocks: usize,
    dim: usize,
}

impl RandomProjection {
    /// Build a projection for `num_blocks` input dimensions down to
    /// `dim`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` or `dim` is zero.
    pub fn new(num_blocks: usize, dim: usize, seed: u64) -> RandomProjection {
        assert!(num_blocks > 0, "num_blocks must be positive");
        assert!(dim > 0, "dim must be positive");
        let mut rng = SplitMix64::new(seed).fork(0x50524F4A);
        let matrix =
            (0..num_blocks * dim).map(|_| if rng.chance(0.5) { 1.0 } else { -1.0 }).collect();
        RandomProjection { matrix, num_blocks, dim }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Input dimensionality (static block count).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Project a raw BBV.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != self.num_blocks()`.
    pub fn project(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.num_blocks, "raw BBV dimensionality mismatch");
        let mut out = vec![0.0; self.dim];
        for (b, &x) in raw.iter().enumerate() {
            if x != 0.0 {
                self.accumulate(b, x, &mut out);
            }
        }
        out
    }

    /// The projection coefficients of input block `block` (row `block`
    /// of the matrix).
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.num_blocks()`.
    #[inline]
    pub fn block_row(&self, block: usize) -> &[f64] {
        &self.matrix[block * self.dim..(block + 1) * self.dim]
    }

    /// Fused multiply-add of `x` times block `block`'s projection row
    /// into `acc` — the *in-projection* form of BBV accumulation.
    ///
    /// The projection is linear, so accumulating each block observation
    /// directly in the projected space commutes with building the raw
    /// `num_blocks`-dimensional BBV and projecting it afterwards; with
    /// integer-valued contributions (instruction counts) the two paths
    /// are bit-identical, because every partial sum is an integer that
    /// `f64` represents exactly. This is what lets the interval
    /// profilers keep `dim` floats of state instead of `num_blocks`,
    /// and makes an interval flush `O(dim)` instead of
    /// `O(num_blocks × dim)`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.num_blocks()` or
    /// `acc.len() != self.dim()`.
    #[inline]
    pub fn accumulate(&self, block: usize, x: f64, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.dim, "accumulator dimensionality mismatch");
        for (o, &m) in acc.iter_mut().zip(self.block_row(block)) {
            *o += x * m;
        }
    }
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = RandomProjection::new(50, 15, 7);
        let b = RandomProjection::new(50, 15, 7);
        let raw: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(a.project(&raw), b.project(&raw));
        let c = RandomProjection::new(50, 15, 8);
        assert_ne!(a.project(&raw), c.project(&raw));
    }

    #[test]
    fn projection_is_linear() {
        let p = RandomProjection::new(20, 5, 1);
        let x: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let px = p.project(&x);
        let py = p.project(&y);
        let psum = p.project(&sum);
        for i in 0..5 {
            assert!((px[i] + py[i] - psum[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_maps_to_zero() {
        let p = RandomProjection::new(10, 4, 3);
        assert_eq!(p.project(&[0.0; 10]), vec![0.0; 4]);
    }

    #[test]
    fn distances_roughly_preserved() {
        // JL property, statistically: expected squared projected
        // distance equals dim × squared input distance for Rademacher
        // matrices (per-dimension variance = ||x−y||²). Check the
        // average over many vector pairs is within 30 %.
        let dim_in = 200;
        let dim_out = 15;
        let p = RandomProjection::new(dim_in, dim_out, 9);
        let mut rng = SplitMix64::new(77);
        let mut ratio_sum = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let x: Vec<f64> = (0..dim_in).map(|_| rng.next_f64()).collect();
            let y: Vec<f64> = (0..dim_in).map(|_| rng.next_f64()).collect();
            let d_in = distance_sq(&x, &y);
            let d_out = distance_sq(&p.project(&x), &p.project(&y));
            ratio_sum += d_out / (d_in * dim_out as f64);
        }
        let mean_ratio = ratio_sum / trials as f64;
        assert!((mean_ratio - 1.0).abs() < 0.3, "distance ratio {mean_ratio}");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_input_length_panics() {
        let p = RandomProjection::new(10, 4, 3);
        let _ = p.project(&[0.0; 9]);
    }

    #[test]
    fn distance_sq_basics() {
        assert_eq!(distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance_sq(&[], &[]), 0.0);
    }

    #[test]
    fn accumulate_matches_project() {
        // Integer-count contributions accumulated block-by-block equal
        // the batch projection of the raw BBV bit-for-bit.
        let p = RandomProjection::new(40, 7, 11);
        let mut rng = SplitMix64::new(5);
        let mut raw = vec![0.0; 40];
        let mut acc = vec![0.0; 7];
        for _ in 0..300 {
            let b = rng.range_usize(40);
            let insts = 1 + rng.range_u64(50);
            raw[b] += insts as f64;
            p.accumulate(b, insts as f64, &mut acc);
        }
        assert_eq!(acc, p.project(&raw));
    }

    #[test]
    fn block_row_entries_are_rademacher() {
        let p = RandomProjection::new(10, 6, 2);
        for b in 0..10 {
            assert!(p.block_row(b).iter().all(|&m| m == 1.0 || m == -1.0));
        }
    }
}
