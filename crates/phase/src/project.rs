//! Seeded random projection of basic-block vectors.
//!
//! SimPoint projects raw BBVs (one dimension per static basic block)
//! down to 15 dimensions with a random matrix before clustering; the
//! projection preserves relative distances (Johnson–Lindenstrauss) while
//! slashing the clustering cost. We use a ±1 Rademacher matrix, the
//! standard cheap choice.

use mlpa_isa::rng::SplitMix64;

/// The projection dimensionality used by SimPoint and this paper.
pub const DEFAULT_DIM: usize = 15;

/// A `num_blocks × dim` random ±1 projection matrix.
///
/// # Example
///
/// ```
/// use mlpa_phase::project::RandomProjection;
///
/// let p = RandomProjection::new(100, 15, 42);
/// let raw = vec![1.0; 100];
/// let v = p.project(&raw);
/// assert_eq!(v.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjection {
    /// Row-major `num_blocks × dim` of ±1 entries.
    matrix: Vec<f64>,
    num_blocks: usize,
    dim: usize,
}

impl RandomProjection {
    /// Build a projection for `num_blocks` input dimensions down to
    /// `dim`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` or `dim` is zero.
    pub fn new(num_blocks: usize, dim: usize, seed: u64) -> RandomProjection {
        assert!(num_blocks > 0, "num_blocks must be positive");
        assert!(dim > 0, "dim must be positive");
        let mut rng = SplitMix64::new(seed).fork(0x50524F4A);
        let matrix =
            (0..num_blocks * dim).map(|_| if rng.chance(0.5) { 1.0 } else { -1.0 }).collect();
        RandomProjection { matrix, num_blocks, dim }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Input dimensionality (static block count).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Project a raw BBV.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != self.num_blocks()`.
    pub fn project(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.num_blocks, "raw BBV dimensionality mismatch");
        let mut out = vec![0.0; self.dim];
        for (b, &x) in raw.iter().enumerate() {
            if x != 0.0 {
                let row = &self.matrix[b * self.dim..(b + 1) * self.dim];
                for (o, &m) in out.iter_mut().zip(row) {
                    *o += x * m;
                }
            }
        }
        out
    }
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = RandomProjection::new(50, 15, 7);
        let b = RandomProjection::new(50, 15, 7);
        let raw: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(a.project(&raw), b.project(&raw));
        let c = RandomProjection::new(50, 15, 8);
        assert_ne!(a.project(&raw), c.project(&raw));
    }

    #[test]
    fn projection_is_linear() {
        let p = RandomProjection::new(20, 5, 1);
        let x: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let px = p.project(&x);
        let py = p.project(&y);
        let psum = p.project(&sum);
        for i in 0..5 {
            assert!((px[i] + py[i] - psum[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_maps_to_zero() {
        let p = RandomProjection::new(10, 4, 3);
        assert_eq!(p.project(&[0.0; 10]), vec![0.0; 4]);
    }

    #[test]
    fn distances_roughly_preserved() {
        // JL property, statistically: expected squared projected
        // distance equals dim × squared input distance for Rademacher
        // matrices (per-dimension variance = ||x−y||²). Check the
        // average over many vector pairs is within 30 %.
        let dim_in = 200;
        let dim_out = 15;
        let p = RandomProjection::new(dim_in, dim_out, 9);
        let mut rng = SplitMix64::new(77);
        let mut ratio_sum = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let x: Vec<f64> = (0..dim_in).map(|_| rng.next_f64()).collect();
            let y: Vec<f64> = (0..dim_in).map(|_| rng.next_f64()).collect();
            let d_in = distance_sq(&x, &y);
            let d_out = distance_sq(&p.project(&x), &p.project(&y));
            ratio_sum += d_out / (d_in * dim_out as f64);
        }
        let mean_ratio = ratio_sum / trials as f64;
        assert!((mean_ratio - 1.0).abs() < 0.3, "distance ratio {mean_ratio}");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_input_length_panics() {
        let p = RandomProjection::new(10, 4, 3);
        let _ = p.project(&[0.0; 9]);
    }

    #[test]
    fn distance_sq_basics() {
        assert_eq!(distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance_sq(&[], &[]), 0.0);
    }
}
