//! Naive reference implementations of the clustering kernels.
//!
//! These are the pre-optimisation `Vec<Vec<f64>>` code paths, kept as an
//! executable specification: [`lloyd_naive`] allocates its accumulators
//! afresh every iteration and scans every centroid for every point, with
//! no pruning and no scratch reuse. The optimised kernels in
//! [`crate::kmeans`] are required to produce **identical** output —
//! a `#[cfg(test)]` assertion inside `kmeans_with` compares every
//! restart against [`lloyd_naive`], and `kernel_properties.rs` pins the
//! equivalence on randomised inputs. The bench harness also uses this
//! module as the "before" side of the `phase_pipeline` comparison.
//!
//! One deliberate deviation from the historical code: the empty-cluster
//! re-seed here measures each candidate against its **own** assigned
//! centroid. The original measured every candidate against the first
//! point's centroid — a bug, fixed in both this reference and the
//! optimised path so they stay comparable.

use crate::bic::KSelection;
use crate::kmeans::{KMeansConfig, KMeansResult};
use crate::matrix::Matrix;
use crate::project::distance_sq;
use mlpa_isa::rng::SplitMix64;

/// Naive k-means: k-means++ seeding, plain Lloyd's, multiple restarts.
/// Same contract (and same output) as [`crate::kmeans::kmeans`].
///
/// # Panics
///
/// Panics if `data` is empty or `k` is zero.
pub fn kmeans_naive(data: &[Vec<f64>], k: usize, cfg: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "k must be positive");

    if k >= data.len() {
        return KMeansResult {
            assignments: (0..data.len()).collect(),
            centroids: Matrix::from_rows(data),
            inertia: 0.0,
            k: data.len(),
        };
    }

    let mut best: Option<KMeansResult> = None;
    let base = SplitMix64::new(cfg.seed);
    for r in 0..cfg.restarts.max(1) {
        let mut rng = base.fork(r as u64);
        let result = lloyd_naive(data, k, cfg.max_iters, &mut rng);
        if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
            best = Some(result);
        }
    }
    best.expect("at least one restart ran")
}

/// One naive Lloyd's run: fresh `vec![vec![0.0; dim]; k]` accumulators
/// every iteration, full nearest-centroid scan for every point.
pub fn lloyd_naive(
    data: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut SplitMix64,
) -> KMeansResult {
    let mut centroids = plus_plus_seed_naive(data, k, rng);
    let mut assignments = vec![0usize; data.len()];

    for _ in 0..max_iters {
        let mut changed = false;
        // Assign.
        for (i, p) in data.iter().enumerate() {
            let a = nearest_naive(p, &centroids).0;
            if a != assignments[i] {
                assignments[i] = a;
                changed = true;
            }
        }
        // Update.
        let dim = data[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from
                // its own assigned centroid (last maximum wins on ties).
                let mut far = 0;
                let mut best = f64::NEG_INFINITY;
                for (i, &a) in assignments.iter().enumerate() {
                    let d = distance_sq(&data[i], &centroids[a]);
                    if d >= best {
                        best = d;
                        far = i;
                    }
                }
                centroids[c] = data[far].clone();
                changed = true;
            } else {
                let cnt = counts[c] as f64;
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / cnt;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = data.iter().zip(&assignments).map(|(p, &a)| distance_sq(p, &centroids[a])).sum();
    KMeansResult { assignments, centroids: Matrix::from_rows(&centroids), inertia, k }
}

/// k-means++ seeding over nested vectors; consumes the RNG in exactly
/// the same sequence as the optimised seeding.
fn plus_plus_seed_naive(data: &[Vec<f64>], k: usize, rng: &mut SplitMix64) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.range_usize(data.len())].clone());
    let mut d2: Vec<f64> = data.iter().map(|p| distance_sq(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.range_usize(data.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.push(data[idx].clone());
        for (i, p) in data.iter().enumerate() {
            let d = distance_sq(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Nearest centroid over nested vectors (strict `<`: lowest index wins).
fn nearest_naive(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = distance_sq(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// BIC score with the same formula as [`crate::bic::bic`], evaluated
/// against nested-vector data.
pub fn bic_naive(data: &[Vec<f64>], result: &KMeansResult) -> f64 {
    assert!(!data.is_empty(), "bic needs data");
    assert_eq!(data.len(), result.assignments.len(), "result does not match data");
    let r = data.len() as f64;
    let m = data[0].len() as f64;
    let k = result.k as f64;

    let sse: f64 = data
        .iter()
        .zip(&result.assignments)
        .map(|(p, &a)| distance_sq(p, result.centroids.row(a)))
        .sum();
    let denom = (r - k).max(1.0) * m;
    let sigma2 = (sse / denom).max(1e-12);

    let sizes = result.sizes();
    let mut loglik = 0.0;
    for &n in &sizes {
        if n == 0 {
            continue;
        }
        let rn = n as f64;
        loglik += rn * (rn.ln() - r.ln())
            - rn * m / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rn - 1.0) * m / 2.0;
    }
    let params = (k - 1.0) + k * m + 1.0;
    loglik - params / 2.0 * r.ln()
}

/// Naive k-selection sweep with the same selection rule as
/// [`crate::bic::choose_k`], built on [`kmeans_naive`] / [`bic_naive`].
pub fn choose_k_naive(
    data: &[Vec<f64>],
    k_max: usize,
    threshold: f64,
    cfg: &KMeansConfig,
) -> KSelection {
    assert!(!data.is_empty(), "choose_k needs data");
    assert!(k_max > 0, "k_max must be positive");
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");

    let k_hi = k_max.min(data.len());
    let mut candidates: Vec<(KMeansResult, f64)> = Vec::with_capacity(k_hi);
    for k in 1..=k_hi {
        let r = kmeans_naive(data, k, cfg);
        let s = bic_naive(data, &r);
        candidates.push((r, s));
    }
    let lo = candidates.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
    let hi = candidates.iter().map(|(_, s)| *s).fold(f64::NEG_INFINITY, f64::max);
    let cut = if hi > 0.0 {
        threshold * hi
    } else if (hi - lo).abs() < 1e-12 {
        lo
    } else {
        lo + threshold * (hi - lo)
    };

    let scores: Vec<f64> = candidates.iter().map(|(_, s)| *s).collect();
    let pick =
        candidates.iter().position(|(_, s)| *s >= cut).expect("at least the max clears the cut");
    let (result, _) = candidates.swap_remove(pick);
    KSelection { k: result.k, result, scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_kmeans_matches_optimised() {
        // The cfg(test) hook inside kmeans_with already cross-checks
        // per restart; this checks end-to-end best-of-restarts too.
        let mut rng = SplitMix64::new(4242);
        let data: Vec<Vec<f64>> =
            (0..60).map(|_| (0..4).map(|_| rng.next_gauss()).collect()).collect();
        let cfg = KMeansConfig::default();
        assert_eq!(kmeans_naive(&data, 4, &cfg), crate::kmeans::kmeans(&data, 4, &cfg));
    }

    #[test]
    fn naive_choose_k_matches_optimised() {
        let mut rng = SplitMix64::new(7);
        let mut data: Vec<Vec<f64>> =
            (0..25).map(|_| vec![rng.next_gauss(), rng.next_gauss()]).collect();
        data.extend((0..25).map(|_| vec![40.0 + rng.next_gauss(), rng.next_gauss()]));
        let cfg = KMeansConfig::default();
        let naive = choose_k_naive(&data, 5, 0.9, &cfg);
        let fast = crate::bic::choose_k(&Matrix::from_rows(&data), 5, 0.9, &cfg);
        assert_eq!(naive, fast);
    }
}
