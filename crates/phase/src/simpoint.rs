//! SimPoint selection: cluster interval signatures, pick one
//! representative interval per phase, weight it by the phase's share of
//! the execution.
//!
//! This is the pipeline of Sherwood et al. (ASPLOS 2002) /
//! Perelman et al. (PACT 2003), parameterised so it serves as
//!
//! * the paper's **10 M SimPoint baseline** (fixed-length intervals,
//!   `Kmax = 30`, closest-to-centroid selection),
//! * **COASTS**'s coarse second stage (loop-iteration intervals,
//!   `Kmax = 3`, earliest-instance selection), and
//! * the **EarlySP** variant (earliest interval within a distance
//!   tolerance of the centroid).

use crate::bic::{choose_k, KSelection};
use crate::interval::Interval;
use crate::kmeans::{nearest, KMeansConfig};
use crate::matrix::Matrix;
use crate::project::distance_sq;

/// How the representative interval of each cluster is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// The interval closest to the cluster centroid (classic SimPoint).
    Centroid,
    /// The earliest interval of the cluster (COASTS).
    Earliest,
    /// The earliest interval whose *squared* distance to the centroid is
    /// within `(1 + tolerance)` of the closest interval's (EarlySP,
    /// Perelman et al. PACT 2003).
    EarlySp {
        /// Relative squared-distance slack, e.g. `0.3`.
        tolerance: f64,
    },
}

/// Parameters of a SimPoint-style selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPointConfig {
    /// Maximum number of phases (clusters).
    pub k_max: usize,
    /// BIC threshold for choosing `k` (SimPoint default 0.9).
    pub bic_threshold: f64,
    /// k-means restarts / iteration cap / seed.
    pub kmeans: KMeansConfig,
    /// Representative choice.
    pub selection: Selection,
    /// When more intervals than this are profiled, the k-sweep clusters
    /// a deterministic stride subsample of this size and then assigns
    /// *all* intervals to the resulting centroids (SimPoint 3.0's
    /// sub-sampling, which keeps clustering cost bounded on long
    /// programs). Weights and representatives always use the full set.
    pub max_cluster_samples: usize,
}

impl SimPointConfig {
    /// The paper's fine-grained baseline: `Kmax = 30`,
    /// closest-to-centroid.
    pub fn fine_10m() -> SimPointConfig {
        SimPointConfig {
            k_max: 30,
            bic_threshold: 0.9,
            kmeans: KMeansConfig::default(),
            selection: Selection::Centroid,
            max_cluster_samples: 4_000,
        }
    }

    /// COASTS's coarse stage: `Kmax = 3`, earliest instance.
    pub fn coasts() -> SimPointConfig {
        SimPointConfig {
            k_max: 3,
            bic_threshold: 0.9,
            kmeans: KMeansConfig::default(),
            selection: Selection::Earliest,
            max_cluster_samples: 4_000,
        }
    }
}

/// One selected simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Index of the chosen interval in the profiled interval list.
    pub interval: usize,
    /// First instruction of the point (global index).
    pub start: u64,
    /// Length in instructions.
    pub len: u64,
    /// Weight of the phase this point represents (instruction-mass
    /// share; weights sum to 1).
    pub weight: f64,
    /// Cluster this point represents.
    pub cluster: usize,
}

/// The outcome of a SimPoint selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoints {
    /// Selected points, sorted by `start`.
    pub points: Vec<SimPoint>,
    /// Number of phases the BIC sweep settled on.
    pub k: usize,
    /// Number of profiled intervals.
    pub num_intervals: usize,
    /// Total instructions across all intervals.
    pub total_insts: u64,
    /// BIC score per candidate k (diagnostics).
    pub bic_scores: Vec<f64>,
    /// Cluster assignment of every profiled interval (indexed like the
    /// input interval list). This is the interval -> phase map accuracy
    /// attribution aggregates over.
    pub assignments: Vec<usize>,
}

impl SimPoints {
    /// Position (end-over-total) of the last simulation point — the
    /// quantity that bounds functional fast-forward time.
    pub fn last_position(&self) -> f64 {
        self.points
            .last()
            .map(|p| (p.start + p.len) as f64 / self.total_insts as f64)
            .unwrap_or(0.0)
    }

    /// Total instructions inside the selected points (detailed
    /// simulation volume).
    pub fn detailed_insts(&self) -> u64 {
        self.points.iter().map(|p| p.len).sum()
    }
}

/// Run the full selection over profiled intervals.
///
/// # Panics
///
/// Panics if `intervals` is empty or weights/geometry are inconsistent
/// (intervals must come from a profiler; see
/// [`validate_intervals`](crate::interval::validate_intervals)).
///
/// # Example
///
/// ```
/// use mlpa_phase::interval::Interval;
/// use mlpa_phase::simpoint::{select, SimPointConfig};
///
/// // Two alternating behaviours -> two phases, weights ~50/50.
/// let intervals: Vec<Interval> = (0..20)
///     .map(|i| Interval {
///         index: i,
///         start: 1000 * i as u64,
///         len: 1000,
///         vector: vec![if i % 2 == 0 { 1.0 } else { -1.0 }],
///     })
///     .collect();
/// let sp = select(&intervals, &SimPointConfig::fine_10m());
/// assert_eq!(sp.k, 2);
/// let w: f64 = sp.points.iter().map(|p| p.weight).sum();
/// assert!((w - 1.0).abs() < 1e-9);
/// ```
pub fn select(intervals: &[Interval], cfg: &SimPointConfig) -> SimPoints {
    assert!(!intervals.is_empty(), "no intervals to select from");
    // One contiguous copy of the signatures — the clustering kernels
    // operate on flat row-major storage.
    let dim = intervals[0].vector.len();
    let mut data = Matrix::with_capacity(intervals.len(), dim);
    for iv in intervals {
        data.push_row(&iv.vector);
    }

    // Cluster on a stride subsample when the interval count is large,
    // then extend the assignment to every interval.
    let cap = cfg.max_cluster_samples.max(cfg.k_max + 1);
    let (result, k, scores) = if data.rows() > cap {
        let stride = data.rows().div_ceil(cap);
        let mut sample = Matrix::with_capacity(data.rows().div_ceil(stride), dim);
        for i in (0..data.rows()).step_by(stride) {
            sample.push_row(data.row(i));
        }
        let KSelection { result: sub, k, scores } =
            choose_k(&sample, cfg.k_max, cfg.bic_threshold, &cfg.kmeans);
        let assignments = data.iter_rows().map(|p| nearest(p, &sub.centroids).0).collect();
        (
            crate::kmeans::KMeansResult {
                assignments,
                centroids: sub.centroids,
                inertia: sub.inertia,
                k: sub.k,
            },
            k,
            scores,
        )
    } else {
        let KSelection { result, k, scores } =
            choose_k(&data, cfg.k_max, cfg.bic_threshold, &cfg.kmeans);
        (result, k, scores)
    };

    let total_insts: u64 = intervals.iter().map(|iv| iv.len).sum();
    // Instruction mass per cluster (VLI-correct weighting).
    let mut mass = vec![0u64; k];
    for (iv, &a) in intervals.iter().zip(&result.assignments) {
        mass[a] += iv.len;
    }

    let mut points = Vec::with_capacity(k);
    for (c, &cluster_mass) in mass.iter().enumerate().take(k) {
        let members: Vec<usize> =
            (0..intervals.len()).filter(|&i| result.assignments[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let dist = |i: usize| distance_sq(&intervals[i].vector, result.centroids.row(c));
        let rep = match cfg.selection {
            Selection::Centroid => members
                .iter()
                .copied()
                .min_by(|&a, &b| dist(a).partial_cmp(&dist(b)).expect("finite distances"))
                .expect("non-empty cluster"),
            Selection::Earliest => members[0],
            Selection::EarlySp { tolerance } => {
                let best = members.iter().copied().map(dist).fold(f64::INFINITY, f64::min);
                let cut = best * (1.0 + tolerance.max(0.0)) + 1e-15;
                members
                    .iter()
                    .copied()
                    .find(|&i| dist(i) <= cut)
                    .expect("closest member always qualifies")
            }
        };
        let iv = &intervals[rep];
        points.push(SimPoint {
            interval: rep,
            start: iv.start,
            len: iv.len,
            weight: cluster_mass as f64 / total_insts as f64,
            cluster: c,
        });
    }
    points.sort_by_key(|p| p.start);

    SimPoints {
        points,
        k,
        num_intervals: intervals.len(),
        total_insts,
        bic_scores: scores,
        assignments: result.assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Intervals alternating between two distinct vectors, with phase B
    /// twice the length of phase A.
    fn two_phase_intervals() -> Vec<Interval> {
        let mut out = Vec::new();
        let mut start = 0u64;
        for i in 0..30 {
            let (vector, len) =
                if i % 2 == 0 { (vec![1.0, 0.0], 1_000) } else { (vec![0.0, 1.0], 2_000) };
            out.push(Interval { index: i, start, len, vector });
            start += len;
        }
        out
    }

    #[test]
    fn weights_reflect_instruction_mass() {
        let sp = select(&two_phase_intervals(), &SimPointConfig::fine_10m());
        assert_eq!(sp.k, 2);
        let mut ws: Vec<f64> = sp.points.iter().map(|p| p.weight).collect();
        ws.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((ws[0] - 1.0 / 3.0).abs() < 1e-9, "phase A third of mass");
        assert!((ws[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn earliest_selection_picks_first_instances() {
        let ivs = two_phase_intervals();
        let cfg = SimPointConfig { selection: Selection::Earliest, ..SimPointConfig::coasts() };
        let sp = select(&ivs, &cfg);
        // Earliest instances of the two phases are intervals 0 and 1.
        let mut picks: Vec<usize> = sp.points.iter().map(|p| p.interval).collect();
        picks.sort_unstable();
        assert_eq!(picks, vec![0, 1]);
        assert!(sp.last_position() < 0.1, "earliest points sit at the front");
    }

    #[test]
    fn centroid_selection_picks_typical_member() {
        // One cluster with an outlier: centroid selection avoids it.
        let mut ivs: Vec<Interval> = (0..10)
            .map(|i| Interval {
                index: i,
                start: 100 * i as u64,
                len: 100,
                vector: vec![1.0 + 0.01 * i as f64],
            })
            .collect();
        ivs[0].vector = vec![5.0]; // outlier is the earliest
                                   // Re-index starts remain contiguous; force k = 1 by kmax 1.
        let cfg = SimPointConfig {
            k_max: 1,
            selection: Selection::Centroid,
            ..SimPointConfig::fine_10m()
        };
        let sp = select(&ivs, &cfg);
        assert_eq!(sp.points.len(), 1);
        assert_ne!(sp.points[0].interval, 0, "outlier must not represent the cluster");
    }

    #[test]
    fn early_sp_trades_distance_for_position() {
        // Cluster members drift slightly; EarlySP with generous
        // tolerance picks an earlier member than strict centroid.
        let ivs: Vec<Interval> = (0..20)
            .map(|i| Interval {
                index: i,
                start: 100 * i as u64,
                len: 100,
                vector: vec![(i as f64) * 0.01],
            })
            .collect();
        let strict = select(
            &ivs,
            &SimPointConfig {
                k_max: 1,
                selection: Selection::Centroid,
                ..SimPointConfig::fine_10m()
            },
        );
        let early = select(
            &ivs,
            &SimPointConfig {
                k_max: 1,
                selection: Selection::EarlySp { tolerance: 1.0e4 },
                ..SimPointConfig::fine_10m()
            },
        );
        assert!(early.points[0].interval <= strict.points[0].interval);
        assert_eq!(early.points[0].interval, 0, "huge tolerance admits the first");
        // Zero tolerance degenerates to centroid selection.
        let zero = select(
            &ivs,
            &SimPointConfig {
                k_max: 1,
                selection: Selection::EarlySp { tolerance: 0.0 },
                ..SimPointConfig::fine_10m()
            },
        );
        assert_eq!(zero.points[0].interval, strict.points[0].interval);
    }

    #[test]
    fn points_sorted_and_weights_sum_to_one() {
        let sp = select(&two_phase_intervals(), &SimPointConfig::fine_10m());
        assert!(sp.points.windows(2).all(|w| w[0].start < w[1].start));
        let total: f64 = sp.points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(sp.detailed_insts(), sp.points.iter().map(|p| p.len).sum::<u64>());
    }

    #[test]
    fn kmax_one_yields_single_point() {
        let cfg = SimPointConfig { k_max: 1, ..SimPointConfig::fine_10m() };
        let sp = select(&two_phase_intervals(), &cfg);
        assert_eq!(sp.points.len(), 1);
        assert!((sp.points[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assignments_cover_every_interval() {
        let ivs = two_phase_intervals();
        let sp = select(&ivs, &SimPointConfig::fine_10m());
        assert_eq!(sp.assignments.len(), ivs.len());
        assert!(sp.assignments.iter().all(|&a| a < sp.k));
        // A representative's own interval belongs to the cluster it
        // represents.
        for p in &sp.points {
            assert_eq!(sp.assignments[p.interval], p.cluster);
        }
    }

    #[test]
    fn single_interval_program() {
        let ivs = vec![Interval { index: 0, start: 0, len: 500, vector: vec![1.0] }];
        let sp = select(&ivs, &SimPointConfig::coasts());
        assert_eq!(sp.points.len(), 1);
        assert_eq!(sp.last_position(), 1.0);
    }
}
