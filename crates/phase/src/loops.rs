//! Dynamic detection of cyclic program structures (loops) from the
//! block trace, following the classic backward-branch loop-stack
//! technique (as used by the profiling stages of SPM [Lau et al., CGO
//! 2006] and positional adaptation [Huang et al., ISCA 2003]).
//!
//! The detector watches block-to-block transitions:
//!
//! * a transition to a block at a **lower or equal address** is a back
//!   edge; its target is a loop header;
//! * on a back edge to `H`, every loop on the stack whose header lies at
//!   a higher address than `H` has necessarily been exited (a loop is a
//!   contiguous address range in our layouts) and is popped;
//! * if `H` is then on top of the stack this is a **new iteration** of
//!   that loop, otherwise `H` starts a **new loop**.
//!
//! Instructions are attributed to every loop currently on the stack, so
//! an outer loop's coverage includes its nested loops. COASTS selects
//! the *outermost* structure (minimum observed depth, maximum coverage)
//! among those with coverage ≥ 1 %, then slices the program at every
//! entry of that structure's header
//! ([`BoundaryProfiler`](crate::interval::BoundaryProfiler)).

use mlpa_isa::{BlockId, Instruction, Program};
use mlpa_sim::functional::Observer;
use std::collections::HashMap;

/// Statistics for one detected cyclic structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CyclicStructure {
    /// The loop-header block.
    pub header: BlockId,
    /// Instructions executed while this loop was live (nested loops
    /// included).
    pub coverage_insts: u64,
    /// Back-edge count (≈ iterations − 1 per entry).
    pub back_edges: u64,
    /// Number of distinct times the loop was entered.
    pub entries: u64,
    /// Minimum nesting depth at which this header was pushed (0 =
    /// outermost).
    pub min_depth: usize,
}

impl CyclicStructure {
    /// Coverage as a fraction of `total` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn coverage(&self, total: u64) -> f64 {
        assert!(total > 0, "total must be positive");
        self.coverage_insts as f64 / total as f64
    }
}

#[derive(Debug)]
struct Frame {
    header: BlockId,
    header_addr: u64,
}

/// The loop-profiling observer (pass 1 of COASTS).
#[derive(Debug)]
pub struct LoopMonitor<'p> {
    program: &'p Program,
    stack: Vec<Frame>,
    stats: HashMap<BlockId, CyclicStructure>,
    prev: Option<BlockId>,
    total_insts: u64,
}

impl<'p> LoopMonitor<'p> {
    /// Create a monitor for `program`.
    pub fn new(program: &'p Program) -> LoopMonitor<'p> {
        LoopMonitor {
            program,
            stack: Vec::new(),
            stats: HashMap::new(),
            prev: None,
            total_insts: 0,
        }
    }

    /// Total instructions observed.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// Finish profiling and return all detected structures, outermost
    /// (then most-covering) first.
    pub fn finish(self) -> LoopProfile {
        let mut structures: Vec<CyclicStructure> = self.stats.into_values().collect();
        structures.sort_by(|a, b| {
            a.min_depth
                .cmp(&b.min_depth)
                .then(b.coverage_insts.cmp(&a.coverage_insts))
                .then(a.header.cmp(&b.header))
        });
        LoopProfile { structures, total_insts: self.total_insts }
    }
}

impl Observer for LoopMonitor<'_> {
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], _first: u64) {
        let n = insts.len() as u64;
        self.total_insts += n;

        if let Some(prev) = self.prev {
            if self.program.is_backward(prev, id) {
                let target_addr = self.program.block(id).addr;
                // Pop every loop whose header lies above the target.
                while let Some(top) = self.stack.last() {
                    if top.header_addr > target_addr {
                        self.stack.pop();
                    } else {
                        break;
                    }
                }
                match self.stack.last() {
                    Some(top) if top.header == id => {
                        // New iteration of the current loop.
                        if let Some(s) = self.stats.get_mut(&id) {
                            s.back_edges += 1;
                        }
                    }
                    _ => {
                        // New loop discovered (or re-entered).
                        let depth = self.stack.len();
                        let entry = self.stats.entry(id).or_insert_with(|| CyclicStructure {
                            header: id,
                            coverage_insts: 0,
                            back_edges: 0,
                            entries: 0,
                            min_depth: depth,
                        });
                        entry.entries += 1;
                        entry.back_edges += 1;
                        entry.min_depth = entry.min_depth.min(depth);
                        self.stack
                            .push(Frame { header: id, header_addr: self.program.block(id).addr });
                    }
                }
            }
        }

        // Attribute this block's instructions to every live loop.
        for f in &self.stack {
            if let Some(s) = self.stats.get_mut(&f.header) {
                s.coverage_insts += n;
            }
        }
        self.prev = Some(id);
    }
}

/// The result of loop profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopProfile {
    /// Detected structures, outermost / most-covering first.
    pub structures: Vec<CyclicStructure>,
    /// Total instructions in the profiled trace.
    pub total_insts: u64,
}

impl LoopProfile {
    /// Structures with coverage at least `min_coverage` (the paper
    /// discards those under 1 %).
    pub fn significant(&self, min_coverage: f64) -> Vec<&CyclicStructure> {
        self.structures
            .iter()
            .filter(|s| self.total_insts > 0 && s.coverage(self.total_insts) >= min_coverage)
            .collect()
    }

    /// The structure COASTS slices at: the outermost (min depth), then
    /// most-covering, significant structure. `None` if nothing clears
    /// `min_coverage`.
    pub fn select_outermost(&self, min_coverage: f64) -> Option<&CyclicStructure> {
        // `structures` is already sorted outermost/most-covering first.
        self.significant(min_coverage).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_sim::FunctionalSim;
    use mlpa_workloads::{
        spec::{BenchmarkSpec, PhaseSpec, ScriptEntry},
        CompiledBenchmark, WorkloadStream,
    };

    fn profile(cb: &CompiledBenchmark) -> LoopProfile {
        let mut mon = LoopMonitor::new(cb.program());
        FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut mon);
        mon.finish()
    }

    #[test]
    fn detects_the_outer_loop_as_dominant() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let prof = profile(&cb);
        let sel = prof.select_outermost(0.01).expect("outer loop found");
        assert_eq!(sel.header, cb.outer_header(), "outer header dominates");
        assert_eq!(sel.min_depth, 0);
        assert!(
            sel.coverage(prof.total_insts) > 0.9,
            "outer loop covers most of the run: {}",
            sel.coverage(prof.total_insts)
        );
    }

    #[test]
    fn iteration_count_matches_script() {
        let spec = BenchmarkSpec {
            script: vec![ScriptEntry::new(0, 50_000); 12],
            ..BenchmarkSpec::default()
        };
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let prof = profile(&cb);
        let sel = prof.select_outermost(0.01).unwrap();
        // One entry, then a back edge per remaining outer iteration.
        assert_eq!(sel.entries, 1);
        assert_eq!(sel.back_edges, 12, "11 iteration back-edges + entry edge");
    }

    #[test]
    fn nested_structures_have_higher_depth() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let prof = profile(&cb);
        // Phase inner-loop headers sit at depth 1 under the outer loop.
        let inner = cb.phases()[0].header;
        let s = prof.structures.iter().find(|s| s.header == inner).expect("inner loop detected");
        assert!(s.min_depth >= 1, "inner loop depth {}", s.min_depth);
    }

    #[test]
    fn coverage_filter_discards_noise() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let prof = profile(&cb);
        let all = prof.structures.len();
        let sig = prof.significant(0.01).len();
        assert!(sig <= all);
        assert!(sig >= 1);
        // With an absurd threshold nothing survives.
        assert!(prof.select_outermost(1.1).is_none());
    }

    #[test]
    fn multi_phase_benchmark_still_selects_outer_header() {
        let spec = BenchmarkSpec {
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..10).map(|i| ScriptEntry::new(i % 2, 40_000)).collect(),
            ..BenchmarkSpec::default()
        };
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let prof = profile(&cb);
        assert_eq!(prof.select_outermost(0.01).unwrap().header, cb.outer_header());
    }

    #[test]
    fn total_insts_matches_functional_count() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let mut mon = LoopMonitor::new(cb.program());
        let stats = FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut mon);
        assert_eq!(mon.total_insts(), stats.instructions);
    }
}
