//! Property tests pinning the optimised numeric kernels to their naive
//! counterparts, in the randomised style of the workspace-level
//! `proptest_invariants`: every case is generated from a SplitMix64
//! fork of the case index, so a failure report identifies a fully
//! reproducible input.

use mlpa_isa::rng::SplitMix64;
use mlpa_isa::BlockId;
use mlpa_phase::kmeans::{kmeans, KMeansConfig};
use mlpa_phase::matrix::Matrix;
use mlpa_phase::project::{distance_sq, RandomProjection};
use mlpa_phase::reference;
use mlpa_phase::FixedLengthProfiler;

const CASES: u64 = 12;

/// Incremental in-projection accumulation (what the profilers do per
/// block) equals batch raw-BBV accumulation followed by one projection
/// and normalisation (what the old code did per flush). The contract is
/// 1e-9; because every contribution is an integer instruction count —
/// exactly representable and exactly summable in f64 — the paths are in
/// fact bit-identical, and the assertion demands that.
#[test]
fn incremental_accumulation_matches_batch_projection() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xACC0).fork(case);
        let num_blocks = 8 + rng.range_usize(120);
        let dim = 3 + rng.range_usize(13);
        let interval_len = 500 + rng.range_u64(2_000);
        let proj = RandomProjection::new(num_blocks, dim, 0xBEEF + case);

        let mut prof = FixedLengthProfiler::new(&proj, interval_len);
        // Model of the old implementation: a raw num_blocks-dim BBV,
        // flushed by the same block-granular rule, projected and then
        // normalised.
        let mut raw = vec![0.0; num_blocks];
        let mut count = 0u64;
        let mut expected: Vec<Vec<f64>> = Vec::new();
        let flush = |raw: &mut Vec<f64>, count: &mut u64, out: &mut Vec<Vec<f64>>| {
            if *count == 0 {
                return;
            }
            let inv = 1.0 / *count as f64;
            let mut v = proj.project(raw);
            for x in &mut v {
                *x *= inv;
            }
            out.push(v);
            raw.fill(0.0);
            *count = 0;
        };

        let events = 200 + rng.range_usize(800);
        for _ in 0..events {
            let b = rng.range_usize(num_blocks);
            let insts = 1 + rng.range_u64(40);
            prof.record(BlockId::new(b as u32), insts);
            raw[b] += insts as f64;
            count += insts;
            if count >= interval_len {
                flush(&mut raw, &mut count, &mut expected);
            }
        }
        flush(&mut raw, &mut count, &mut expected);

        let got = prof.finish();
        assert_eq!(got.len(), expected.len(), "case {case}: interval count");
        for (iv, exp) in got.iter().zip(&expected) {
            assert_eq!(&iv.vector, exp, "case {case}: interval {} signature", iv.index);
        }
    }
}

/// `Matrix::row_distance_sq` performs exactly the same arithmetic as
/// the slice-based `distance_sq` — bitwise, not approximately.
#[test]
fn matrix_distance_equals_slice_distance() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xD157).fork(case);
        let rows = 2 + rng.range_usize(30);
        let cols = 1 + rng.range_usize(16);
        let data: Vec<Vec<f64>> =
            (0..rows).map(|_| (0..cols).map(|_| rng.next_gauss() * 100.0).collect()).collect();
        let m = Matrix::from_rows(&data);
        for _ in 0..50 {
            let i = rng.range_usize(rows);
            let j = rng.range_usize(rows);
            let expect = distance_sq(&data[i], &data[j]);
            let got = m.row_distance_sq(i, &m, j);
            assert!(got == expect, "case {case}: rows ({i},{j}): {got} vs {expect}");
        }
    }
}

/// The Hamerly-pruned k-means produces identical assignments, centroids,
/// and inertia to the naive reference on randomised inputs — including
/// duplicate-heavy data that forces empty-cluster reseeds.
#[test]
fn pruned_kmeans_matches_naive_reference() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x4B4D).fork(case);
        let n = 20 + rng.range_usize(180);
        let dim = 1 + rng.range_usize(10);
        let k = 1 + rng.range_usize(8);
        let data: Vec<Vec<f64>> = if case % 3 == 0 {
            // Duplicate-heavy: a handful of distinct anchors repeated,
            // which collapses clusters and exercises the reseed path.
            let anchors: Vec<Vec<f64>> =
                (0..3).map(|_| (0..dim).map(|_| rng.next_gauss() * 5.0).collect()).collect();
            (0..n).map(|_| anchors[rng.range_usize(anchors.len())].clone()).collect()
        } else {
            (0..n).map(|_| (0..dim).map(|_| rng.next_gauss() * 10.0).collect()).collect()
        };
        let cfg = KMeansConfig { restarts: 3, max_iters: 60, seed: 0x5EED + case };
        let fast = kmeans(&data, k, &cfg);
        let naive = reference::kmeans_naive(&data, k, &cfg);
        assert_eq!(fast, naive, "case {case}: n={n} dim={dim} k={k}");
    }
}

/// The full BIC k-selection sweep (scratch-reusing, Matrix-based)
/// matches the naive sweep end to end: same chosen k, same scores, same
/// clustering.
#[test]
fn choose_k_matches_naive_reference() {
    for case in 0..4u64 {
        let mut rng = SplitMix64::new(0xB1C).fork(case);
        let clusters = 1 + rng.range_usize(3);
        let dim = 2 + rng.range_usize(4);
        let mut data: Vec<Vec<f64>> = Vec::new();
        for c in 0..clusters {
            let center: Vec<f64> = (0..dim).map(|_| 30.0 * c as f64 + rng.next_gauss()).collect();
            for _ in 0..25 {
                data.push(center.iter().map(|x| x + rng.next_gauss() * 0.5).collect());
            }
        }
        let cfg = KMeansConfig::default();
        let fast = mlpa_phase::bic::choose_k(&Matrix::from_rows(&data), 6, 0.9, &cfg);
        let naive = reference::choose_k_naive(&data, 6, 0.9, &cfg);
        assert_eq!(fast, naive, "case {case}");
    }
}
