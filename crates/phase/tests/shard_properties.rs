//! Property tests: segment-sharded profiling merges **bit-identical**
//! to the monolithic passes across random segment counts and
//! boundaries — including boundaries that split a fine interval and
//! segments far shorter than one interval.
//!
//! Randomness is driven by the repo's own `SplitMix64` (seeded, so
//! failures reproduce exactly), following the pattern of
//! `kernel_properties.rs`.

use mlpa_isa::rng::SplitMix64;
use mlpa_isa::stream::InstructionStream;
use mlpa_isa::BlockId;
use mlpa_phase::interval::{validate_intervals, BoundaryProfiler, FixedLengthProfiler, Interval};
use mlpa_phase::loops::{LoopMonitor, LoopProfile};
use mlpa_phase::project::RandomProjection;
use mlpa_phase::shard::{
    merge_boundary, merge_fine, merge_loops, BoundaryTracker, FineCutTracker, LoopStackTracker,
    ShardBoundaryProfiler, ShardFineProfiler, ShardLoopMonitor,
};
use mlpa_sim::functional::Observer;
use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

fn specs() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::default(),
        BenchmarkSpec {
            name: "shard-prop-multi".into(),
            seed: 11,
            init_insts: 2_000,
            tail_insts: 1_500,
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..6).map(|i| ScriptEntry::new(i % 2, 30_000)).collect(),
        },
        BenchmarkSpec {
            name: "shard-prop-tiny".into(),
            seed: 3,
            init_insts: 100,
            tail_insts: 50,
            phases: vec![PhaseSpec::default()],
            script: vec![ScriptEntry::new(0, 4_000); 2],
        },
    ]
}

fn block_seq(cb: &CompiledBenchmark) -> Vec<(BlockId, u64)> {
    let mut s = WorkloadStream::new(cb);
    let mut scratch = Vec::new();
    let mut seq = Vec::new();
    while let Some(m) = s.next_block_meta(&mut scratch) {
        seq.push((m.id, m.insts));
    }
    seq
}

/// Random cut positions (block indices) — may repeat (empty segments)
/// and may land anywhere, including mid-interval.
fn random_bounds(rng: &mut SplitMix64, n_blocks: usize) -> Vec<usize> {
    let n_cuts = rng.range_usize(9); // 0..=8 cuts -> 1..=9 segments
    let mut cuts: Vec<usize> = (0..n_cuts).map(|_| rng.range_usize(n_blocks + 1)).collect();
    cuts.sort_unstable();
    let mut bounds = vec![0];
    bounds.extend(cuts);
    bounds.push(n_blocks);
    bounds
}

fn mono_fine(seq: &[(BlockId, u64)], proj: &RandomProjection, len: u64) -> Vec<Interval> {
    let mut p = FixedLengthProfiler::new(proj, len);
    for &(id, n) in seq {
        p.record(id, n);
    }
    p.finish()
}

fn mono_loops(cb: &CompiledBenchmark, seq: &[(BlockId, u64)]) -> LoopProfile {
    let mut m = LoopMonitor::new(cb.program());
    for &(id, n) in seq {
        let insts = vec![mlpa_isa::Instruction::nop(); n as usize];
        m.on_block(id, &insts, 0);
    }
    m.finish()
}

fn mono_boundary(
    seq: &[(BlockId, u64)],
    proj: &RandomProjection,
    header: BlockId,
) -> (Vec<Interval>, bool) {
    let mut p = BoundaryProfiler::new(proj, header);
    for &(id, n) in seq {
        p.record(id, n);
    }
    let prologue = p.has_prologue();
    (p.finish(), prologue)
}

#[test]
fn sharded_profiling_equals_monolithic_for_random_boundaries() {
    let mut rng = SplitMix64::new(0x5348_4152_4450_524F);
    for spec in specs() {
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let seq = block_seq(&cb);
        let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
        let header = cb.outer_header();
        // Interval lengths chosen to exercise both "many blocks per
        // interval" and "interval spans many segments".
        for interval_len in [1_000u64, 10_000, 100_000] {
            let expect_fine = mono_fine(&seq, &proj, interval_len);
            validate_intervals(&expect_fine).unwrap();
            let expect_loops = mono_loops(&cb, &seq);
            let (expect_biv, expect_prologue) = mono_boundary(&seq, &proj, header);

            for _round in 0..6 {
                let bounds = random_bounds(&mut rng, seq.len());
                let mut fine_shards = Vec::new();
                let mut loop_shards = Vec::new();
                let mut boundary_shards = Vec::new();
                for w in bounds.windows(2) {
                    let (lo, hi) = (w[0], w[1]);
                    let mut fine_t = FineCutTracker::new(interval_len);
                    let mut loop_t = LoopStackTracker::new(cb.program());
                    let mut bnd_t = BoundaryTracker::new(header);
                    for &(id, n) in &seq[..lo] {
                        fine_t.record(n);
                        loop_t.record(id);
                        bnd_t.record(id, n);
                    }
                    let mut fine_p = ShardFineProfiler::new(&proj, interval_len, &fine_t);
                    let mut loop_m = ShardLoopMonitor::new(loop_t);
                    let mut bnd_p = ShardBoundaryProfiler::new(&proj, &bnd_t);
                    for &(id, n) in &seq[lo..hi] {
                        fine_p.record(id, n);
                        loop_m.record(id, n);
                        bnd_p.record(id, n);
                    }
                    fine_shards.push(fine_p.finish());
                    loop_shards.push(loop_m.finish());
                    boundary_shards.push(bnd_p.finish());
                }
                let bounds_dbg = bounds.clone();
                assert_eq!(
                    merge_fine(fine_shards),
                    expect_fine,
                    "fine mismatch: spec {} interval {interval_len} bounds {bounds_dbg:?}",
                    spec.name
                );
                assert_eq!(
                    merge_loops(loop_shards),
                    expect_loops,
                    "loop mismatch: spec {} bounds {bounds_dbg:?}",
                    spec.name
                );
                let (got_biv, got_prologue) = merge_boundary(boundary_shards);
                assert_eq!(
                    (got_biv, got_prologue),
                    (expect_biv.clone(), expect_prologue),
                    "boundary mismatch: spec {} bounds {bounds_dbg:?}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn single_block_segments_split_every_interval() {
    // The adversarial extreme: every segment holds exactly one block,
    // so every interval is assembled purely by piece coalescing.
    let cb = CompiledBenchmark::compile(&specs()[2]).unwrap();
    let seq = block_seq(&cb);
    let proj = RandomProjection::new(cb.program().num_blocks(), 15, 1);
    let interval_len = 1_000;
    let expect = mono_fine(&seq, &proj, interval_len);

    let mut shards = Vec::new();
    let mut tracker = FineCutTracker::new(interval_len);
    for &(id, n) in &seq {
        let mut p = ShardFineProfiler::new(&proj, interval_len, &tracker);
        p.record(id, n);
        shards.push(p.finish());
        tracker.record(n);
    }
    assert_eq!(merge_fine(shards), expect);
}
