//! Ablation: variable-length intervals (VLI) versus fixed-length
//! intervals at coarse granularity. The paper's §V-A argues that "the
//! variable length interval only makes the phase boundaries more
//! natural but does not gain performance" — what matters is the
//! *granularity*, not whether boundaries follow loop iterations. This
//! bench pits real COASTS (loop-iteration VLIs) against a fixed-length
//! coarse sampler using the same Kmax and earliest-instance selection.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::pipeline::{plan_from_points, profile_fixed};
use mlpa_core::prelude::*;
use mlpa_phase::simpoint::select;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_vli(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("facerec", 2).expect("facerec").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();
    let baseline = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let model = CostModel::paper_implied();

    // Mean outer-iteration size — the fixed-length sampler gets the
    // same granularity without the loop-boundary knowledge.
    let mean_iter = spec.script.iter().map(|e| e.insts).sum::<u64>() / spec.script.len() as u64;

    let mut group = c.benchmark_group("ablation_vli");
    group.sample_size(10);
    group.bench_function("fixed_coarse_facerec", |b| {
        let proj = ProjectionSettings::default().build(&cb);
        b.iter(|| {
            let ivs = profile_fixed(black_box(&cb), mean_iter, &proj);
            select(&ivs, &SimPointConfig::coasts())
        });
    });
    group.finish();

    println!("\nAblation: VLI (loop-boundary) vs fixed-length coarse intervals (facerec)");
    println!(
        "{:<26} {:>8} {:>9} {:>11} {:>9} {:>9}",
        "variant", "points", "detail%", "functional%", "dCPI%", "speedup"
    );

    let coasts_out = coasts(&cb, &CoastsConfig::default()).expect("coasts");
    let est = execute_plan(&cb, &config, &coasts_out.plan, WarmupMode::Warmed).estimate;
    let dev = est.deviation_from(&truth);
    println!(
        "{:<26} {:>8} {:>8.3}% {:>10.2}% {:>8.2}% {:>8.2}x",
        "COASTS (VLI iterations)",
        coasts_out.plan.len(),
        coasts_out.plan.detail_fraction() * 100.0,
        coasts_out.plan.functional_fraction() * 100.0,
        dev.cpi * 100.0,
        model.speedup(&baseline.plan, &coasts_out.plan)
    );

    for frac in [0.5f64, 1.0, 2.0] {
        let len = ((mean_iter as f64 * frac) as u64).max(10_000);
        let proj = ProjectionSettings::default().build(&cb);
        let ivs = profile_fixed(&cb, len, &proj);
        let sp = select(&ivs, &SimPointConfig::coasts());
        let plan = plan_from_points(&sp).expect("valid plan");
        let est = execute_plan(&cb, &config, &plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        println!(
            "{:<26} {:>8} {:>8.3}% {:>10.2}% {:>8.2}% {:>8.2}x",
            format!("fixed {:.1}x mean-iter", frac),
            plan.len(),
            plan.detail_fraction() * 100.0,
            plan.functional_fraction() * 100.0,
            dev.cpi * 100.0,
            model.speedup(&baseline.plan, &plan)
        );
    }
    println!(
        "(the paper's §V-A claim: similar cost profiles — granularity matters, boundaries don't)"
    );
}

criterion_group!(benches, bench_ablation_vli);
criterion_main!(benches);
