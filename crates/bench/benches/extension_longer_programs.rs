//! Extension: how the speedup scales with program length — the paper's
//! §I motivation ("the simulation time of SPEC2006 becomes about 10×
//! longer than that of SPEC2000 … a dire need for further improvement").
//!
//! Holding the phase structure fixed and multiplying the outer-iteration
//! count (what a longer reference input does to a loop-dominated
//! program), fine-grained SimPoint's cost grows linearly with program
//! length (functional time ∝ run length) while COASTS and multi-level
//! sampling keep their costs pinned to the early phase instances — so
//! their speedups *grow* with program length.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_longer_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_longer_programs");
    group.sample_size(10);
    {
        let spec = suite::benchmark_with_iters("gzip", 2).expect("gzip").scaled(0.5);
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        group.bench_function("multilevel_gzip_2x", |b| {
            b.iter(|| multilevel(black_box(&cb), &MultilevelConfig::default()).expect("runs"));
        });
    }
    group.finish();

    let model = CostModel::paper_implied();
    println!("\nExtension: speedup vs program length (gzip, iteration factor sweep)");
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "factor", "insts", "SP func%", "CO func%", "CO speedup", "ML speedup"
    );
    for factor in [1usize, 2, 4, 8] {
        let spec = suite::benchmark_with_iters("gzip", factor).expect("gzip").scaled(0.5);
        let cb = CompiledBenchmark::compile(&spec).expect("compiles");
        let fine = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .expect("baseline");
        let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
        let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");
        println!(
            "{:>7} {:>8.0}M {:>11.2}% {:>11.2}% {:>9.2}x {:>9.2}x",
            factor,
            fine.plan.total_insts() as f64 / 1e6,
            fine.plan.functional_fraction() * 100.0,
            co.plan.functional_fraction() * 100.0,
            model.speedup(&fine.plan, &co.plan),
            model.speedup(&fine.plan, &ml.plan),
        );
    }
    println!("(coarse methods pin their cost to early instances, so longer programs");
    println!(" widen the gap — the paper's SPEC2006 motivation)");
}

criterion_group!(benches, bench_longer_programs);
criterion_main!(benches);
