//! Ablation: the representative-selection policy at fine granularity.
//! The paper's §II observes that EarlySP (Perelman et al., PACT 2003)
//! "can only reduce some functional simulation time" — unlike COASTS,
//! which changes the *granularity* and collapses it. This bench runs
//! classic centroid selection, EarlySP at several tolerances, and pure
//! earliest-instance selection through the same fine-grained pipeline
//! and prints where the last simulation point lands versus the accuracy
//! paid.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_phase::simpoint::Selection;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_selection(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("twolf", 2).expect("twolf").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();
    let proj = ProjectionSettings::default();

    let mut group = c.benchmark_group("ablation_selection");
    group.sample_size(10);
    group.bench_function("earlysp_fine_twolf", |b| {
        let cfg = SimPointConfig {
            selection: Selection::EarlySp { tolerance: 0.3 },
            ..SimPointConfig::fine_10m()
        };
        b.iter(|| simpoint_baseline(black_box(&cb), FINE_INTERVAL, &cfg, &proj).expect("runs"));
    });
    group.finish();

    let coasts_out = coasts(&cb, &CoastsConfig::default()).expect("coasts");
    let baseline = simpoint_baseline(&cb, FINE_INTERVAL, &SimPointConfig::fine_10m(), &proj)
        .expect("baseline");
    let model = CostModel::paper_implied();

    println!("\nAblation: selection policy at fine granularity (twolf, reduced size)");
    println!(
        "{:<22} {:>8} {:>9} {:>11} {:>9} {:>9}",
        "policy", "points", "last-pos%", "functional%", "dCPI%", "speedup"
    );
    let policies: Vec<(String, Selection)> = vec![
        ("centroid (SimPoint)".into(), Selection::Centroid),
        ("EarlySP tol=0.1".into(), Selection::EarlySp { tolerance: 0.1 }),
        ("EarlySP tol=0.5".into(), Selection::EarlySp { tolerance: 0.5 }),
        ("EarlySP tol=2.0".into(), Selection::EarlySp { tolerance: 2.0 }),
        ("earliest".into(), Selection::Earliest),
    ];
    for (name, selection) in policies {
        let cfg = SimPointConfig { selection, ..SimPointConfig::fine_10m() };
        let out = simpoint_baseline(&cb, FINE_INTERVAL, &cfg, &proj).expect("runs");
        let est = execute_plan(&cb, &config, &out.plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        println!(
            "{:<22} {:>8} {:>8.1}% {:>10.2}% {:>8.2}% {:>8.2}x",
            name,
            out.plan.len(),
            out.plan.last_position() * 100.0,
            out.plan.functional_fraction() * 100.0,
            dev.cpi * 100.0,
            model.speedup(&baseline.plan, &out.plan)
        );
    }
    println!(
        "{:<22} {:>8} {:>8.1}% {:>10.2}%        —  {:>8.2}x   <- granularity, not policy",
        "COASTS (coarse)",
        coasts_out.plan.len(),
        coasts_out.plan.last_position() * 100.0,
        coasts_out.plan.functional_fraction() * 100.0,
        model.speedup(&baseline.plan, &coasts_out.plan)
    );
    println!(
        "(the paper's point: even aggressive EarlySP cannot match what coarse granularity buys)"
    );
}

criterion_group!(benches, bench_ablation_selection);
criterion_main!(benches);
