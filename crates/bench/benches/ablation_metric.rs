//! Ablation: the phase metric. The paper (§II, §IV-A) chooses BBVs,
//! citing Dhodapkar & Smith (BBV beats working-set signatures) and Lau
//! et al. (loop frequency vectors nearly match BBV with fewer phases).
//! This bench runs all three metrics through the identical selection
//! pipeline and compares phase counts and CPI accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::pipeline::plan_from_points;
use mlpa_core::prelude::*;
use mlpa_phase::interval::FixedLengthProfiler;
use mlpa_phase::lfv::LfvProfiler;
use mlpa_phase::simpoint::select;
use mlpa_phase::wss::WssProfiler;
use mlpa_phase::Interval;
use mlpa_sim::{FunctionalSim, MachineConfig};
use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};
use std::hint::black_box;

fn profile_bbv(cb: &CompiledBenchmark) -> Vec<Interval> {
    let proj = ProjectionSettings::default().build(cb);
    let mut prof = FixedLengthProfiler::new(&proj, FINE_INTERVAL);
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
    prof.finish()
}

fn profile_lfv(cb: &CompiledBenchmark) -> Vec<Interval> {
    let mut prof = LfvProfiler::new(cb.program(), FINE_INTERVAL);
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
    prof.finish()
}

fn profile_wss(cb: &CompiledBenchmark) -> Vec<Interval> {
    let mut prof = WssProfiler::new(FINE_INTERVAL, 32);
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
    prof.finish()
}

fn bench_ablation_metric(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("bzip2", 2).expect("bzip2").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();

    let mut group = c.benchmark_group("ablation_metric");
    group.sample_size(10);
    group.bench_function("bbv_profile_bzip2", |b| b.iter(|| profile_bbv(black_box(&cb))));
    group.bench_function("lfv_profile_bzip2", |b| b.iter(|| profile_lfv(black_box(&cb))));
    group.bench_function("wss_profile_bzip2", |b| b.iter(|| profile_wss(black_box(&cb))));
    group.finish();

    println!("\nAblation: phase metric comparison (bzip2, reduced size; identical selection)");
    println!(
        "{:>6} {:>7} {:>8} {:>9} {:>9} {:>9}",
        "metric", "dims", "phases", "points", "dCPI%", "dL1%"
    );
    for (name, intervals) in
        [("BBV", profile_bbv(&cb)), ("LFV", profile_lfv(&cb)), ("WSS", profile_wss(&cb))]
    {
        let sp = select(&intervals, &SimPointConfig::fine_10m());
        let plan = plan_from_points(&sp).expect("valid plan");
        let est = execute_plan(&cb, &config, &plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        println!(
            "{:>6} {:>7} {:>8} {:>9} {:>8.2}% {:>8.2}%",
            name,
            intervals[0].vector.len(),
            sp.k,
            plan.len(),
            dev.cpi * 100.0,
            dev.l1_hit_rate * 100.0
        );
    }
    println!("(expected, per the paper's citations: BBV most accurate; LFV close with fewer dims;");
    println!(" WSS blind to same-data/different-code phase changes)");
}

criterion_group!(benches, bench_ablation_metric);
criterion_main!(benches);
