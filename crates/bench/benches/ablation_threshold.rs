//! Ablation: the multi-level re-sampling threshold (the paper derives
//! 300 M = 10 M × Kmax; scaled here to 300 k). Sweeps the threshold and
//! prints detail share, functional share, CPI deviation, and speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_threshold(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("equake", 2).expect("equake").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();
    let baseline = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let model = CostModel::paper_implied();

    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(10);
    group.bench_function("multilevel_default_equake", |b| {
        b.iter(|| multilevel(black_box(&cb), &MultilevelConfig::default()).expect("runs"));
    });
    group.finish();

    println!("\nAblation: re-sample threshold sweep (equake, reduced size; paper 300k scaled)");
    println!(
        "{:>10} {:>7} {:>9} {:>11} {:>9} {:>9}",
        "threshold", "points", "detail%", "functional%", "dCPI%", "speedup"
    );
    for threshold in [0u64, 50_000, 150_000, 300_000, 1_000_000, u64::MAX] {
        let cfg = MultilevelConfig { threshold, ..MultilevelConfig::default() };
        let out = multilevel(&cb, &cfg).expect("multilevel runs");
        let est = execute_plan(&cb, &config, &out.plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        let label = if threshold == u64::MAX {
            "inf".to_owned()
        } else {
            format!("{}k", threshold / 1_000)
        };
        println!(
            "{:>10} {:>7} {:>8.3}% {:>10.2}% {:>8.2}% {:>8.2}x",
            label,
            out.plan.len(),
            out.plan.detail_fraction() * 100.0,
            out.plan.functional_fraction() * 100.0,
            dev.cpi * 100.0,
            model.speedup(&baseline.plan, &out.plan)
        );
    }
}

criterion_group!(benches, bench_ablation_threshold);
criterion_main!(benches);
