//! Table III bench: times the SimPoint baseline pipeline (the most
//! interval-heavy selection) and prints the simulation-point statistics
//! table.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_bench::{harness, report};
use mlpa_core::prelude::*;
use mlpa_workloads::CompiledBenchmark;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let exp =
        harness::Experiment::quick().select(&["gzip", "mcf", "art", "bzip2", "swim", "lucas"]);
    let spec = exp.suite.get("swim").expect("swim selected").clone();
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("simpoint_baseline_swim", |b| {
        b.iter(|| {
            simpoint_baseline(
                black_box(&cb),
                FINE_INTERVAL,
                &SimPointConfig::fine_10m(),
                &ProjectionSettings::default(),
            )
            .expect("baseline runs")
        });
    });
    group.finish();

    let results = exp.run(|_| {}).expect("suite runs");
    println!("\n{}", report::table3(&results));
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
