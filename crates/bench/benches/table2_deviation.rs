//! Table II bench: times plan execution (fast-forward + detailed
//! sampling + weighted combination) and prints the deviation table.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_bench::{harness, report};
use mlpa_core::prelude::*;
use mlpa_sim::MachineConfig;
use mlpa_workloads::CompiledBenchmark;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let exp =
        harness::Experiment::quick().select(&["gzip", "mcf", "art", "bzip2", "swim", "lucas"]);
    let spec = exp.suite.get("mcf").expect("mcf selected").clone();
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let plan = coasts(&cb, &CoastsConfig::default()).expect("coasts runs").plan;
    let config = MachineConfig::table1_base();

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("execute_coasts_plan_mcf", |b| {
        b.iter(|| execute_plan(black_box(&cb), &config, &plan, WarmupMode::Warmed));
    });
    group.finish();

    let results = exp.run(|_| {}).expect("suite runs");
    println!("\n{}", report::table2(&results));
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
