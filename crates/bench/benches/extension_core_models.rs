//! Extension: one plan, two cores. Sampling plans are built from BBVs
//! alone, so they are microarchitecture-independent — the same
//! multi-level plan should estimate an out-of-order *and* an in-order
//! core accurately. This is the property that makes sampling useful for
//! design-space exploration (the paper's Config A/B sensitivity study,
//! pushed across core types).

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_sim::functional::Warming;
use mlpa_sim::{FunctionalSim, InOrderSim, MachineConfig};
use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};
use std::hint::black_box;

/// Execute a plan against the in-order core with warmed fast-forward
/// (the in-order counterpart of `mlpa_core::execute_plan`).
fn execute_inorder(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
) -> mlpa_sim::MetricEstimate {
    let mut stream = WorkloadStream::new(cb);
    let mut func = FunctionalSim::new(cb.program());
    let mut sim = InOrderSim::new(*config, cb.program());
    let mut pos = 0u64;
    let mut parts = Vec::new();
    for p in plan.points() {
        let skip = p.start.saturating_sub(pos);
        let (hier, bu) = sim.warm_state_mut();
        pos += func.fast_forward(&mut stream, skip, &mut (), Warming::Warm, Some((hier, bu)));
        let m = sim.simulate(&mut stream, p.len);
        pos += m.instructions;
        parts.push((p.weight, m));
    }
    mlpa_sim::SimMetrics::weighted_estimate(parts)
}

fn ground_truth_inorder(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
) -> mlpa_sim::MetricEstimate {
    let mut sim = InOrderSim::new(*config, cb.program());
    sim.simulate(&mut WorkloadStream::new(cb), u64::MAX).estimate()
}

fn bench_core_models(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("mesa", 2).expect("mesa").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");

    let mut group = c.benchmark_group("extension_core_models");
    group.sample_size(10);
    group.bench_function("inorder_plan_execution_mesa", |b| {
        b.iter(|| execute_inorder(black_box(&cb), &config, &ml.plan));
    });
    group.finish();

    println!("\nExtension: one multi-level plan estimating two core models (mesa)");
    println!("{:<14} {:>10} {:>10} {:>8}", "core", "truth CPI", "est CPI", "dCPI%");
    let ooo_truth = ground_truth(&cb, &config).estimate();
    let ooo_est = execute_plan(&cb, &config, &ml.plan, WarmupMode::Warmed).estimate;
    println!(
        "{:<14} {:>10.3} {:>10.3} {:>7.2}%",
        "out-of-order",
        ooo_truth.cpi,
        ooo_est.cpi,
        ooo_est.deviation_from(&ooo_truth).cpi * 100.0
    );
    let io_truth = ground_truth_inorder(&cb, &config);
    let io_est = execute_inorder(&cb, &config, &ml.plan);
    println!(
        "{:<14} {:>10.3} {:>10.3} {:>7.2}%",
        "in-order",
        io_truth.cpi,
        io_est.cpi,
        io_est.deviation_from(&io_truth).cpi * 100.0
    );
    println!("(the plan was computed once, from BBVs only — no per-core re-analysis)");
}

criterion_group!(benches, bench_core_models);
criterion_main!(benches);
