//! Fig. 4 bench: times the full multi-level pipeline (COASTS plus
//! in-window fine re-sampling) and prints the multi-level-over-SimPoint
//! speedup rows.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_bench::{harness, report};
use mlpa_core::prelude::*;
use mlpa_workloads::CompiledBenchmark;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let exp = harness::Experiment::quick()
        .select(&["gzip", "mcf", "art", "bzip2", "swim", "lucas", "eon", "equake"]);
    let spec = exp.suite.get("gzip").expect("gzip selected").clone();
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("multilevel_selection_gzip", |b| {
        b.iter(|| multilevel(black_box(&cb), &MultilevelConfig::default()).expect("runs"));
    });
    group.finish();

    let results = exp.run(|_| {}).expect("suite runs");
    println!(
        "\n{}",
        report::figure_speedup(&results, harness::Method::Multilevel, &CostModel::paper_implied())
    );
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
