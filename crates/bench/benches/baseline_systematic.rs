//! Extra baseline: SMARTS-style systematic sampling vs the paper's
//! three methods. Systematic sampling achieves good accuracy with tiny
//! detail volume, but its units span the entire run — so its functional
//! cost is the worst of all four, which is precisely the cost COASTS's
//! earliest-instance selection eliminates.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_core::systematic::{sampling_error, systematic_plan, SystematicConfig};
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_baseline_systematic(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("crafty", 2).expect("crafty").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();
    let model = CostModel::paper_implied();

    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let total = fine.plan.total_insts();
    let sys_cfg = SystematicConfig { unit_len: 1_000, period: 150_000, offset: 75_000 };
    let sys = systematic_plan(total, &sys_cfg).expect("systematic plan");
    let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");

    let mut group = c.benchmark_group("baseline_systematic");
    group.sample_size(10);
    group.bench_function("execute_systematic_crafty", |b| {
        b.iter(|| execute_plan(black_box(&cb), &config, &sys, WarmupMode::Warmed));
    });
    group.finish();

    println!("\nExtra baseline: systematic (SMARTS-style) vs the paper's methods (crafty)");
    println!(
        "{:<22} {:>7} {:>9} {:>11} {:>9} {:>9}",
        "method", "points", "detail%", "functional%", "dCPI%", "speedup"
    );
    for (name, plan) in [
        ("10M SimPoint", &fine.plan),
        ("systematic 1k/150k", &sys),
        ("COASTS", &co.plan),
        ("multi-level", &ml.plan),
    ] {
        let out = execute_plan(&cb, &config, plan, WarmupMode::Warmed);
        let dev = out.estimate.deviation_from(&truth);
        println!(
            "{:<22} {:>7} {:>8.3}% {:>10.2}% {:>8.2}% {:>8.2}x",
            name,
            plan.len(),
            plan.detail_fraction() * 100.0,
            plan.functional_fraction() * 100.0,
            dev.cpi * 100.0,
            model.speedup(&fine.plan, plan)
        );
        if name.starts_with("systematic") {
            let e = sampling_error(&out.per_point);
            println!("{:<22} CLT ±95% half-width: {:.2}% of mean CPI", "", e.relative_ci95 * 100.0);
        }
    }
    println!("(systematic sampling is accurate but pays ~full-run functional cost — the");
    println!(
        " exact cost structure the paper's coarse-grained earliest-instance selection removes)"
    );
}

criterion_group!(benches, bench_baseline_systematic);
criterion_main!(benches);
