//! Ablation: warm vs cold fast-forward. At this repo's 1000× instruction
//! scale-down, cold-starting each simulation point amplifies the
//! cold-cache bias three orders of magnitude beyond the paper's regime —
//! this ablation makes the Table II mechanism visible: fine-grained
//! sampling (tiny points) degrades drastically without warm state while
//! coarse-grained sampling barely moves.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_warmup(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("gap", 2).expect("gap").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();

    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let co = coasts(&cb, &CoastsConfig::default()).expect("coasts");
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");

    let mut group = c.benchmark_group("ablation_warmup");
    group.sample_size(10);
    group.bench_function("warmed_ffwd_fine_gap", |b| {
        b.iter(|| execute_plan(black_box(&cb), &config, &fine.plan, WarmupMode::Warmed));
    });
    group.bench_function("cold_ffwd_fine_gap", |b| {
        b.iter(|| execute_plan(black_box(&cb), &config, &fine.plan, WarmupMode::Cold));
    });
    group.finish();

    println!("\nAblation: warm vs cold fast-forward (gap, reduced size)");
    println!("{:<22} {:>12} {:>12}", "method", "dCPI warm", "dCPI cold");
    for (name, plan) in
        [("10M SimPoint", &fine.plan), ("COASTS", &co.plan), ("Multi-level", &ml.plan)]
    {
        let warm =
            execute_plan(&cb, &config, plan, WarmupMode::Warmed).estimate.deviation_from(&truth);
        let cold =
            execute_plan(&cb, &config, plan, WarmupMode::Cold).estimate.deviation_from(&truth);
        println!("{:<22} {:>11.2}% {:>11.2}%", name, warm.cpi * 100.0, cold.cpi * 100.0);
    }
    println!("(cold bias hits small points hardest — the paper's Table II SimPoint L2 column)");
}

criterion_group!(benches, bench_ablation_warmup);
criterion_main!(benches);
