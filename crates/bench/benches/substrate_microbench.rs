//! Microbenchmarks of the simulator substrate itself: trace generation,
//! functional simulation, detailed simulation, cache accesses, k-means,
//! and the full phase-analysis pipeline (profile → project → cluster).
//! These are the quantities the cost model (`CostModel::measure`)
//! summarises into the detailed/functional ratio, plus the clustering
//! substrate the perf baseline (`results/BENCH_phase.json`) tracks.
//!
//! With `MLPA_BENCH_JSON=<path>` in the environment, the run writes a
//! machine-readable baseline of the phase-kernel benches (current vs
//! naive, with derived speedups) to `<path>` — see
//! `scripts/bench_phase.sh`. With `MLPA_BENCH_SMOKE=1`, every bench
//! runs a single sample (the CI smoke mode of the vendored shim).
//!
//! Every run calibrates the host **in this process** first
//! (`mlpa_obs::calibrate`): the probe's ns-per-unit price stamps each
//! emitted snapshot, and each bench also records
//! `normalized = mean_ns / probe_ns` — a machine-independent cost the
//! `bench-gate` binary compares across hosts. Derived speedups are
//! within-run by construction (both sides of every ratio measured in
//! this same process); the headline `detailed_sim` speedup additionally
//! comes from interleaved A/B rounds (the `ab_detailed` idiom) rather
//! than two separately-timed bench entries.

use criterion::{Criterion, Throughput};
use mlpa_isa::rng::SplitMix64;
use mlpa_isa::stream::drain_count;
use mlpa_isa::BlockId;
use mlpa_phase::bic::choose_k;
use mlpa_phase::kmeans::{kmeans, kmeans_with, KMeansConfig, KMeansResult, KMeansScratch};
use mlpa_phase::matrix::Matrix;
use mlpa_phase::project::RandomProjection;
use mlpa_phase::{reference, FixedLengthProfiler};
use mlpa_sim::cache::Cache;
use mlpa_sim::config::CacheConfig;
use mlpa_sim::reference as sim_reference;
use mlpa_sim::{DetailedSim, FunctionalSim, MachineConfig};
use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};
use std::hint::black_box;

/// Scale of the phase-pipeline benchmark: the fine pass of a mid-sized
/// benchmark — ≥ 1000 intervals over a realistic static-block count
/// (real programs carry thousands of basic blocks, most of them cold;
/// each interval touches only a few hundred).
const NUM_BLOCKS: usize = 32_768;
/// Hot working-set size per phase (see [`synth_events`]).
const HOT_BLOCKS: usize = 64;
const DIM: usize = 15;
const INTERVAL_LEN: u64 = 10_000;
const TARGET_INTERVALS: usize = 1_200;
/// Fixed fine-pass cluster count for the `phase_pipeline` benchmark.
const PIPELINE_K: usize = 10;
/// Sweep ceiling for the `phase_sweep` (BIC `choose_k`) benchmark.
const K_MAX: usize = 10;

/// Fastest of `n` timed calls, in nanoseconds.
fn best_of<R>(n: usize, f: &mut impl FnMut() -> R) -> f64 {
    (0..n.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            black_box(f());
            t0.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Interleaved A/B speedup (the `ab_detailed` idiom): rounds alternate
/// reference and current back-to-back, best-of-3 a side per round, and
/// the reported ratio is the **median** of the per-round ratios. Both
/// sides of each ratio run within microseconds of each other, so host
/// drift between separately-timed bench groups cannot leak into the
/// derived speedup. Smoke mode drops to one round, best-of-1.
fn ab_median_ratio<A, B>(mut reference: impl FnMut() -> A, mut current: impl FnMut() -> B) -> f64 {
    let smoke = std::env::var_os("MLPA_BENCH_SMOKE").is_some();
    let (rounds, reps) = if smoke { (1, 1) } else { (5, 3) };
    let mut ratios: Vec<f64> = (0..rounds)
        .map(|_| best_of(reps, &mut reference) / best_of(reps, &mut current).max(f64::MIN_POSITIVE))
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    ratios[ratios.len() / 2]
}

fn bench_substrate(c: &mut Criterion) -> f64 {
    let spec = suite::benchmark_with_iters("eon", 1).expect("eon").scaled(0.05);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let trace_len = drain_count(WorkloadStream::new(&cb)).instructions;

    // The optimized detailed simulator and the retained naive reference
    // must agree byte-for-byte before their cost is compared (same
    // pinning as the property tests, on the real bench workload).
    let run_current = || {
        let mut d = DetailedSim::new(MachineConfig::table1_base(), cb.program());
        d.simulate(&mut WorkloadStream::new(&cb), u64::MAX)
    };
    let run_reference = || {
        let mut d = sim_reference::DetailedSim::new(MachineConfig::table1_base(), cb.program());
        d.simulate(&mut WorkloadStream::new(&cb), u64::MAX)
    };
    assert_eq!(run_current(), run_reference(), "detailed-sim implementations disagree");

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace_len));
    group.bench_function("trace_generation", |b| {
        b.iter(|| drain_count(WorkloadStream::new(black_box(&cb))));
    });
    group.bench_function("functional_sim", |b| {
        b.iter(|| {
            let mut f = FunctionalSim::new(cb.program());
            f.run(WorkloadStream::new(&cb), &mut ())
        });
    });
    group.bench_function("detailed_sim", |b| {
        b.iter(run_current);
    });
    group.bench_function("detailed_sim_reference", |b| {
        b.iter(run_reference);
    });
    group.finish();

    // The headline detailed-sim speedup, measured interleaved so it is
    // immune to drift between the two bench entries above.
    let ab_detailed = ab_median_ratio(run_reference, run_current);
    println!("substrate/detailed_sim interleaved A/B speedup: {ab_detailed:.2}x");

    let mut cache_group = c.benchmark_group("cache");
    let accesses = 100_000u64;
    cache_group.throughput(Throughput::Elements(accesses));
    cache_group.bench_function("l1_random_access", |b| {
        let mut cache = Cache::new(CacheConfig { size: 16 * 1024, assoc: 4, line: 32, latency: 2 });
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            for _ in 0..accesses {
                let addr = rng.range_u64(1 << 20);
                black_box(cache.access(addr, false));
            }
        });
    });
    cache_group.finish();
    ab_detailed
}

/// The streaming profiling pass: `ProfilingContext::prepare` monolithic
/// versus segment-sharded under the chained driver (one metadata walk,
/// no instruction materialisation, O(1)-per-block shard profilers).
/// The two must merge bit-identically before their cost is compared —
/// the speedup this group derives is the paper-scale profiling win the
/// perf baseline tracks.
fn bench_streaming(c: &mut Criterion) {
    use mlpa_core::pipeline::{ProfilingContext, ProjectionSettings, ShardDriver, FINE_INTERVAL};
    let spec = suite::benchmark_with_iters("eon", 1).expect("eon").scaled(0.25);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let trace_len = drain_count(WorkloadStream::new(&cb)).instructions;
    let run = |shards: usize| {
        let mut ctx = ProfilingContext::new(&cb, ProjectionSettings::default(), FINE_INTERVAL);
        ctx.set_shards(shards);
        ctx.set_shard_driver(ShardDriver::Chained);
        ctx.prepare();
        (ctx.loop_profile().clone(), ctx.fine_intervals().to_vec())
    };
    assert_eq!(run(8), run(1), "sharded prepare diverged from the monolithic pass");

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace_len));
    group.bench_function("prepare_sharded8", |b| {
        b.iter(|| run(black_box(8)));
    });
    group.bench_function("prepare_monolithic", |b| {
        b.iter(|| run(black_box(1)));
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    // Clustered data with overlap, like projected BBV signatures: ten
    // anchor behaviours, each point a noisy draw around one of them.
    let mut rng = SplitMix64::new(7);
    let anchors: Vec<Vec<f64>> =
        (0..10).map(|_| (0..15).map(|_| 2.5 * rng.next_gauss()).collect()).collect();
    let data: Vec<Vec<f64>> = (0..2_000)
        .map(|_| {
            let a = &anchors[rng.range_usize(10)];
            a.iter().map(|&v| v + rng.next_gauss()).collect()
        })
        .collect();
    group.bench_function("k10_n2000_d15", |b| {
        b.iter(|| kmeans(black_box(&data), 10, &KMeansConfig::default()));
    });
    group.bench_function("k10_n2000_d15_naive", |b| {
        b.iter(|| reference::kmeans_naive(black_box(&data), 10, &KMeansConfig::default()));
    });
    group.finish();
}

/// A phase-structured synthetic block-event stream: four phases, each
/// with its own hot working set of [`HOT_BLOCKS`] basic blocks (real
/// programs concentrate execution in a few hot blocks out of thousands
/// of static ones), switching every 40 intervals. The hot-set bias
/// ramps from 0.70 to 0.95 across each phase block, modelling the
/// gradual warm-in after a phase transition; the rest of the events
/// scatter over the full block space as a cold tail. Noisy enough that
/// Lloyd's takes real iterations; structured enough that the BIC sweep
/// does real work.
fn synth_events(seed: u64) -> Vec<(u32, u64)> {
    let mut rng = SplitMix64::new(seed);
    let phases = 4usize;
    let total_insts = TARGET_INTERVALS as u64 * INTERVAL_LEN;
    let mut events = Vec::new();
    let mut insts = 0u64;
    while insts < total_insts {
        let interval_idx = insts / INTERVAL_LEN;
        let phase = ((interval_idx / 40) as usize) % phases;
        let warm_in = (interval_idx % 40) as f64 / 40.0;
        let bias = 0.80 + 0.15 * warm_in;
        let b = if rng.chance(bias) {
            phase * HOT_BLOCKS + rng.range_usize(HOT_BLOCKS)
        } else {
            rng.range_usize(NUM_BLOCKS)
        };
        let len = 10 + rng.range_u64(40);
        events.push((b as u32, len));
        insts += len;
    }
    events
}

/// In-projection profiling into contiguous row-major storage (the
/// current kernels).
fn profile_current(proj: &RandomProjection, events: &[(u32, u64)]) -> Matrix {
    let mut prof = FixedLengthProfiler::new(proj, INTERVAL_LEN);
    for &(b, n) in events {
        prof.record(BlockId::new(b), n);
    }
    let intervals = prof.finish();
    let mut data = Matrix::with_capacity(intervals.len(), proj.dim());
    for iv in &intervals {
        data.push_row(&iv.vector);
    }
    data
}

/// Pre-optimisation profiling: a raw `num_blocks`-dim BBV per interval,
/// projected and normalised at each flush, into nested-vector storage.
fn profile_naive(proj: &RandomProjection, events: &[(u32, u64)]) -> Vec<Vec<f64>> {
    let mut raw = vec![0.0; proj.num_blocks()];
    let mut count = 0u64;
    let mut data: Vec<Vec<f64>> = Vec::new();
    let flush = |raw: &mut Vec<f64>, count: &mut u64, data: &mut Vec<Vec<f64>>| {
        if *count == 0 {
            return;
        }
        let inv = 1.0 / *count as f64;
        let mut v = proj.project(raw);
        for x in &mut v {
            *x *= inv;
        }
        data.push(v);
        raw.fill(0.0);
        *count = 0;
    };
    for &(b, n) in events {
        raw[b as usize] += n as f64;
        count += n;
        if count >= INTERVAL_LEN {
            flush(&mut raw, &mut count, &mut data);
        }
    }
    flush(&mut raw, &mut count, &mut data);
    data
}

/// The current clustering pipeline (profile → project → k-means at the
/// fine-pass `k`): in-projection accumulation and the pruned Lloyd's.
fn pipeline_current(proj: &RandomProjection, events: &[(u32, u64)]) -> KMeansResult {
    let data = profile_current(proj, events);
    kmeans_with(&data, PIPELINE_K, &KMeansConfig::default(), &mut KMeansScratch::new())
}

/// The pre-optimisation pipeline on the same stream: per-flush
/// projection and the naive Lloyd's. Must produce a bit-identical
/// [`KMeansResult`].
fn pipeline_naive(proj: &RandomProjection, events: &[(u32, u64)]) -> KMeansResult {
    let data = profile_naive(proj, events);
    reference::kmeans_naive(&data, PIPELINE_K, &KMeansConfig::default())
}

/// The current BIC sweep (`choose_k`) over the profiled signatures.
fn sweep_current(proj: &RandomProjection, events: &[(u32, u64)]) -> usize {
    let data = profile_current(proj, events);
    choose_k(&data, K_MAX, 0.9, &KMeansConfig::default()).k
}

/// The pre-optimisation BIC sweep (`choose_k_naive`).
fn sweep_naive(proj: &RandomProjection, events: &[(u32, u64)]) -> usize {
    let data = profile_naive(proj, events);
    reference::choose_k_naive(&data, K_MAX, 0.9, &KMeansConfig::default()).k
}

fn bench_phase_pipeline(c: &mut Criterion) {
    let proj = RandomProjection::new(NUM_BLOCKS, DIM, 0xC0A5);
    let events = synth_events(0x5EED);
    // Both paths must agree before we compare their cost.
    assert_eq!(
        pipeline_current(&proj, &events),
        pipeline_naive(&proj, &events),
        "pipeline implementations disagree"
    );
    assert_eq!(
        sweep_current(&proj, &events),
        sweep_naive(&proj, &events),
        "k-sweep implementations disagree on k"
    );

    let mut group = c.benchmark_group("phase_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TARGET_INTERVALS as u64));
    group.bench_function("current", |b| {
        b.iter(|| pipeline_current(black_box(&proj), black_box(&events)));
    });
    group.bench_function("naive", |b| {
        b.iter(|| pipeline_naive(black_box(&proj), black_box(&events)));
    });
    group.finish();

    let mut sweep = c.benchmark_group("phase_sweep");
    sweep.sample_size(10);
    sweep.throughput(Throughput::Elements(TARGET_INTERVALS as u64));
    sweep.bench_function("current", |b| {
        b.iter(|| sweep_current(black_box(&proj), black_box(&events)));
    });
    sweep.bench_function("naive", |b| {
        b.iter(|| sweep_naive(black_box(&proj), black_box(&events)));
    });
    sweep.finish();
}

/// Instrumentation overhead on the hottest pipeline: the phase pass
/// with obs runtime-disabled (one relaxed load per call site; literally
/// nothing when the `obs` feature is compiled out) versus runtime-
/// enabled (only measurable when built with `--features obs`).
fn bench_obs_overhead(c: &mut Criterion) {
    let proj = RandomProjection::new(NUM_BLOCKS, DIM, 0xC0A5);
    let events = synth_events(0x5EED);
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TARGET_INTERVALS as u64));
    mlpa_obs::set_enabled(false);
    group.bench_function("pipeline_instrumentation_off", |b| {
        b.iter(|| pipeline_current(black_box(&proj), black_box(&events)));
    });
    // The histogram call sites in isolation: a local tally fed in a hot
    // loop, merged once — the contract every instrumented kernel
    // follows. Disabled (or compiled out) this must cost nothing
    // measurable; the tracked baseline pins it.
    group.bench_function("hist_sites_off", |b| {
        b.iter(|| {
            let mut t = mlpa_obs::HistTally::default();
            for i in 0..4096u64 {
                t.record(black_box(i));
            }
            mlpa_obs::hist_merge("bench.hist_sites", "n", &t);
        });
    });
    if cfg!(feature = "obs") {
        mlpa_obs::set_enabled(true);
        group.bench_function("pipeline_instrumentation_on", |b| {
            b.iter(|| pipeline_current(black_box(&proj), black_box(&events)));
        });
        group.bench_function("hist_sites_on", |b| {
            b.iter(|| {
                let mut t = mlpa_obs::HistTally::default();
                for i in 0..4096u64 {
                    t.record(black_box(i));
                }
                mlpa_obs::hist_merge("bench.hist_sites", "n", &t);
            });
        });
        mlpa_obs::set_enabled(false);
    }
    group.finish();
}

/// With `--features obs`, pin the enabled-mode overhead of the phase
/// pipeline below a few percent (skipped in `MLPA_BENCH_SMOKE` runs,
/// whose single samples are too noisy to compare).
fn assert_obs_overhead(measurements: &[criterion::Measurement]) {
    if !cfg!(feature = "obs") || std::env::var_os("MLPA_BENCH_SMOKE").is_some() {
        return;
    }
    let off = mean_of(measurements, "obs_overhead", "pipeline_instrumentation_off");
    let on = mean_of(measurements, "obs_overhead", "pipeline_instrumentation_on");
    if let (Some(off), Some(on)) = (off, on) {
        let overhead = on / off - 1.0;
        println!("obs enabled-mode pipeline overhead: {:+.2}%", overhead * 100.0);
        assert!(
            overhead < 0.05,
            "enabled-mode obs overhead {:.2}% exceeds the 5% budget \
             (off {off:.0} ns, on {on:.0} ns)",
            overhead * 100.0
        );
    }
}

/// Mean time of a recorded bench, by `group/id`.
fn mean_of(measurements: &[criterion::Measurement], group: &str, id: &str) -> Option<f64> {
    measurements.iter().find(|m| m.group == group && m.id == id).map(|m| m.mean_ns)
}

/// Emit the phase-kernel baseline as hand-formatted JSON (the workspace
/// is dependency-free; the values are flat numbers and simple strings).
/// v2 of the per-run schema adds the in-process `calibration` block,
/// the `host` metadata section, and per-bench `normalized` costs.
fn write_bench_json(
    path: &std::ffi::OsStr,
    measurements: &[criterion::Measurement],
    cal: &mlpa_obs::calibrate::MachineCalibration,
    ab_detailed: f64,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mlpa-bench-phase-v2\",\n");
    out.push_str(&format!(
        "  \"params\": {{ \"num_blocks\": {NUM_BLOCKS}, \"dim\": {DIM}, \"interval_len\": {INTERVAL_LEN}, \"intervals\": {TARGET_INTERVALS}, \"pipeline_k\": {PIPELINE_K}, \"k_max\": {K_MAX} }},\n"
    ));
    out.push_str(&format!("  \"calibration\": {},\n", cal.to_json()));
    out.push_str(&format!("  \"host\": {},\n", mlpa_obs::host_meta().to_value()));
    out.push_str("  \"benches\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}, \"samples\": {}, \"normalized\": {:.4} }}{comma}\n",
            m.group,
            m.id,
            m.mean_ns,
            m.min_ns,
            m.max_ns,
            m.samples,
            m.mean_ns / cal.probe_ns.max(f64::MIN_POSITIVE)
        ));
    }
    out.push_str("  ],\n");
    let [(_, pipeline), (_, sweep), (_, kmeans_speedup), (_, detailed), (_, streaming)] =
        derived_speedups(measurements, Some(ab_detailed));
    out.push_str(&format!(
        "  \"speedups\": {{ \"phase_pipeline\": {pipeline:.2}, \"phase_sweep\": {sweep:.2}, \"kmeans\": {kmeans_speedup:.2}, \"detailed_sim\": {detailed:.2}, \"streaming\": {streaming:.2} }}\n"
    ));
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("failed to write {}: {e}", path.to_string_lossy());
    } else {
        println!("wrote bench baseline to {}", path.to_string_lossy());
        println!(
            "speedups: phase_pipeline {pipeline:.2}x, phase_sweep {sweep:.2}x, \
             kmeans {kmeans_speedup:.2}x, detailed_sim {detailed:.2}x, streaming {streaming:.2}x"
        );
    }
}

/// The bench pairs each derived speedup is the ratio of — every pair is
/// measured within this one process (never across snapshots), which is
/// what makes the speedups comparable across hosts without any
/// normalization at all. Written into the trajectory as annotation.
const SPEEDUP_PAIRS: [(&str, &str); 5] = [
    ("phase_pipeline", "phase_pipeline/naive over phase_pipeline/current"),
    ("phase_sweep", "phase_sweep/naive over phase_sweep/current"),
    ("kmeans", "kmeans/k10_n2000_d15_naive over kmeans/k10_n2000_d15"),
    (
        "detailed_sim",
        "substrate/detailed_sim_reference over substrate/detailed_sim (interleaved A/B median)",
    ),
    ("streaming", "streaming/prepare_monolithic over streaming/prepare_sharded8"),
];

/// Derived kernel speedups (naive-over-current within-run ratios).
/// `ab_detailed`, when present, replaces the group-mean `detailed_sim`
/// ratio with the interleaved A/B measurement.
fn derived_speedups(
    measurements: &[criterion::Measurement],
    ab_detailed: Option<f64>,
) -> [(&'static str, f64); 5] {
    let ratio = |group: &str, naive: &str, current: &str| match (
        mean_of(measurements, group, naive),
        mean_of(measurements, group, current),
    ) {
        (Some(n), Some(c)) if c > 0.0 => n / c,
        _ => 0.0,
    };
    [
        ("phase_pipeline", ratio("phase_pipeline", "naive", "current")),
        ("phase_sweep", ratio("phase_sweep", "naive", "current")),
        ("kmeans", ratio("kmeans", "k10_n2000_d15_naive", "k10_n2000_d15")),
        (
            "detailed_sim",
            ab_detailed
                .unwrap_or_else(|| ratio("substrate", "detailed_sim_reference", "detailed_sim")),
        ),
        ("streaming", ratio("streaming", "prepare_monolithic", "prepare_sharded8")),
    ]
}

/// Append this run as one snapshot of the perf *trajectory*
/// (`BENCH.json` at the repo top level): prior snapshots — v1 raw-ns
/// ones included — are preserved verbatim, so the file records how
/// kernel cost and the derived speedups evolve change over change. New
/// snapshots are stamped with this run's in-process calibration and
/// host metadata, and each bench carries its machine-normalized cost;
/// the document schema advances to `mlpa-bench-suite-v2`. The snapshot
/// label comes from `MLPA_BENCH_LABEL` (defaulting to `snapshot-<n>`).
fn write_trajectory(
    path: &std::ffi::OsStr,
    measurements: &[criterion::Measurement],
    cal: &mlpa_obs::calibrate::MachineCalibration,
    ab_detailed: f64,
) {
    use mlpa_obs::calibrate::{BENCH_SUITE_SCHEMA, BENCH_SUITE_SCHEMA_V1};
    use mlpa_obs::json::{parse, Value};
    use std::collections::BTreeMap;

    let mut snapshots: Vec<String> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        let schema_of = |v: &Value| v.get("schema").and_then(Value::as_str).map(str::to_string);
        match parse(&text) {
            Ok(v)
                if matches!(
                    schema_of(&v).as_deref(),
                    Some(BENCH_SUITE_SCHEMA) | Some(BENCH_SUITE_SCHEMA_V1)
                ) =>
            {
                if let Some(arr) = v.get("snapshots").and_then(Value::as_arr) {
                    snapshots.extend(arr.iter().map(Value::to_string));
                }
            }
            _ => eprintln!(
                "ignoring unreadable trajectory at {} (rewriting fresh)",
                path.to_string_lossy()
            ),
        }
    }
    let label = std::env::var("MLPA_BENCH_LABEL")
        .unwrap_or_else(|_| format!("snapshot-{}", snapshots.len() + 1));

    let probe = cal.probe_ns.max(f64::MIN_POSITIVE);
    let benches: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Obj(BTreeMap::from([
                ("group".to_string(), Value::Str(m.group.clone())),
                ("id".to_string(), Value::Str(m.id.clone())),
                ("mean_ns".to_string(), Value::Num(m.mean_ns.round())),
                ("min_ns".to_string(), Value::Num(m.min_ns.round())),
                ("max_ns".to_string(), Value::Num(m.max_ns.round())),
                ("samples".to_string(), Value::Num(m.samples as f64)),
                ("normalized".to_string(), Value::Num((m.mean_ns / probe * 1e4).round() / 1e4)),
            ]))
        })
        .collect();
    let speedups = Value::Obj(
        derived_speedups(measurements, Some(ab_detailed))
            .into_iter()
            .map(|(k, v)| (k.to_string(), Value::Num((v * 100.0).round() / 100.0)))
            .collect(),
    );
    let snap = Value::Obj(BTreeMap::from([
        ("label".to_string(), Value::Str(label.clone())),
        ("calibration".to_string(), cal.to_value()),
        ("host".to_string(), mlpa_obs::host_meta().to_value()),
        ("benches".to_string(), Value::Arr(benches)),
        ("speedups".to_string(), speedups),
    ]));
    snapshots.push(snap.to_string());

    let pairs = Value::Obj(
        SPEEDUP_PAIRS.iter().map(|(k, v)| (k.to_string(), Value::Str(v.to_string()))).collect(),
    );
    let out = format!(
        "{{\n  \"schema\": \"{BENCH_SUITE_SCHEMA}\",\n  \"speedup_pairs\": {pairs},\n  \"snapshots\": [\n    {}\n  ]\n}}\n",
        snapshots.join(",\n    ")
    );
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("failed to write {}: {e}", path.to_string_lossy());
    } else {
        println!(
            "appended trajectory snapshot \"{label}\" ({} total) to {}",
            snapshots.len(),
            path.to_string_lossy()
        );
    }
}

fn main() {
    // Calibrate first, in this same process: probe and benches see the
    // same machine state, and every emitted artifact carries the stamp.
    let cal = mlpa_obs::calibrate::calibrate();
    println!(
        "machine calibration: {:.2} ns/unit (min {:.2}, dispersion {:.1}%) on {}",
        cal.probe_ns,
        cal.min_ns,
        cal.dispersion * 100.0,
        cal.fingerprint
    );
    let mut criterion = Criterion::default();
    let ab_detailed = bench_substrate(&mut criterion);
    bench_streaming(&mut criterion);
    bench_kmeans(&mut criterion);
    bench_phase_pipeline(&mut criterion);
    bench_obs_overhead(&mut criterion);
    let measurements = criterion::take_measurements();
    assert_obs_overhead(&measurements);
    if let Some(path) = std::env::var_os("MLPA_BENCH_JSON") {
        write_bench_json(&path, &measurements, &cal, ab_detailed);
    }
    if let Some(path) = std::env::var_os("MLPA_BENCH_TRAJECTORY") {
        write_trajectory(&path, &measurements, &cal, ab_detailed);
    }
}
