//! Microbenchmarks of the simulator substrate itself: trace generation,
//! functional simulation, detailed simulation, cache accesses, branch
//! prediction, k-means. These are the quantities the cost model
//! (`CostModel::measure`) summarises into the detailed/functional ratio.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlpa_isa::rng::SplitMix64;
use mlpa_isa::stream::drain_count;
use mlpa_phase::kmeans::{kmeans, KMeansConfig};
use mlpa_sim::cache::Cache;
use mlpa_sim::config::CacheConfig;
use mlpa_sim::{DetailedSim, FunctionalSim, MachineConfig};
use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("eon", 1).expect("eon").scaled(0.05);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let trace_len = drain_count(WorkloadStream::new(&cb)).instructions;

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace_len));
    group.bench_function("trace_generation", |b| {
        b.iter(|| drain_count(WorkloadStream::new(black_box(&cb))));
    });
    group.bench_function("functional_sim", |b| {
        b.iter(|| {
            let mut f = FunctionalSim::new(cb.program());
            f.run(WorkloadStream::new(&cb), &mut ())
        });
    });
    group.bench_function("detailed_sim", |b| {
        b.iter(|| {
            let mut d = DetailedSim::new(MachineConfig::table1_base(), cb.program());
            d.simulate(&mut WorkloadStream::new(&cb), u64::MAX)
        });
    });
    group.finish();

    let mut cache_group = c.benchmark_group("cache");
    let accesses = 100_000u64;
    cache_group.throughput(Throughput::Elements(accesses));
    cache_group.bench_function("l1_random_access", |b| {
        let mut cache = Cache::new(CacheConfig { size: 16 * 1024, assoc: 4, line: 32, latency: 2 });
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            for _ in 0..accesses {
                let addr = rng.range_u64(1 << 20);
                black_box(cache.access(addr, false));
            }
        });
    });
    cache_group.finish();

    let mut cluster_group = c.benchmark_group("kmeans");
    cluster_group.sample_size(10);
    let mut rng = SplitMix64::new(7);
    let data: Vec<Vec<f64>> =
        (0..2_000).map(|_| (0..15).map(|_| rng.next_gauss()).collect()).collect();
    cluster_group.bench_function("k10_n2000_d15", |b| {
        b.iter(|| kmeans(black_box(&data), 10, &KMeansConfig::default()));
    });
    cluster_group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
