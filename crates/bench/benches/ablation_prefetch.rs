//! Ablation: a next-line L1D prefetcher (not in Table I — SimpleScalar
//! has none). Two questions: how much does it change ground truth on a
//! streaming benchmark, and does the sampling methodology stay accurate
//! when the microarchitecture changes under a fixed plan? (It should:
//! plans are BBV-derived and config-independent.)

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_sim::config::PrefetchPolicy;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_prefetch(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("swim", 2).expect("swim").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let base = MachineConfig::table1_base();
    let mut with_pf = base;
    with_pf.prefetch = PrefetchPolicy::NextLine;
    let ml = multilevel(&cb, &MultilevelConfig::default()).expect("multilevel");

    let mut group = c.benchmark_group("ablation_prefetch");
    group.sample_size(10);
    group.bench_function("ground_truth_prefetch_swim", |b| {
        b.iter(|| ground_truth(black_box(&cb), &with_pf));
    });
    group.finish();

    println!("\nAblation: next-line L1D prefetch (swim — streaming FP, reduced size)");
    println!(
        "{:<18} {:>10} {:>8} {:>10} {:>8}",
        "config", "truth CPI", "L1 hit", "est CPI", "dCPI%"
    );
    for (name, config) in [("no prefetch", base), ("next-line", with_pf)] {
        let truth = ground_truth(&cb, &config).estimate();
        let est = execute_plan(&cb, &config, &ml.plan, WarmupMode::Warmed).estimate;
        println!(
            "{:<18} {:>10.3} {:>7.1}% {:>10.3} {:>7.2}%",
            name,
            truth.cpi,
            truth.l1_hit_rate * 100.0,
            est.cpi,
            est.deviation_from(&truth).cpi * 100.0
        );
    }
    println!("(a streaming benchmark gains substantially from next-line prefetch, and the");
    println!(" same BBV-derived plan estimates both machines — no re-analysis needed)");
}

criterion_group!(benches, bench_ablation_prefetch);
criterion_main!(benches);
