//! Fig. 1 bench: times the phase-curve computation (profiling + PCA +
//! selection at both granularities) and prints the resulting curves.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_bench::fig1;
use mlpa_workloads::suite;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("lucas", 2).expect("lucas exists").scaled(0.3);

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("lucas_phase_curves", |b| {
        b.iter(|| fig1::fig1(black_box(&spec)).expect("fig1 computes"));
    });
    group.finish();

    // Regenerate the figure itself once.
    let data = fig1::fig1(&spec).expect("fig1 computes");
    println!("\nFigure 1 (lucas, reduced size): fine-grained curve");
    println!("{}", fig1::to_ascii(&data.fine, 100, 12));
    println!("Figure 1 (lucas, reduced size): coarse-grained curve");
    println!("{}", fig1::to_ascii(&data.coarse, 100, 12));
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
