//! Fig. 3 bench: times the COASTS pipeline (loop profiling + iteration
//! BBVs + coarse clustering + earliest-instance selection) and prints
//! the COASTS-over-SimPoint speedup rows.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_bench::{harness, report};
use mlpa_core::prelude::*;
use mlpa_workloads::CompiledBenchmark;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let exp = harness::Experiment::quick()
        .select(&["gzip", "mcf", "art", "bzip2", "swim", "lucas", "eon", "equake"]);
    let spec = exp.suite.get("gzip").expect("gzip selected").clone();
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("coasts_selection_gzip", |b| {
        b.iter(|| coasts(black_box(&cb), &CoastsConfig::default()).expect("coasts runs"));
    });
    group.finish();

    // Regenerate the figure rows once (reduced suite).
    let results = exp.run(|_| {}).expect("suite runs");
    println!(
        "\n{}",
        report::figure_speedup(&results, harness::Method::Coasts, &CostModel::paper_implied())
    );
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
