//! Ablation: the BBV random-projection dimensionality (SimPoint and the
//! paper use 15). Sweeps the dimension and prints the chosen number of
//! fine phases and the CPI deviation of the resulting SimPoint plan.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_projection(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("vortex", 2).expect("vortex").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();

    let mut group = c.benchmark_group("ablation_projection");
    group.sample_size(10);
    group.bench_function("baseline_dim15_vortex", |b| {
        b.iter(|| {
            simpoint_baseline(
                black_box(&cb),
                FINE_INTERVAL,
                &SimPointConfig::fine_10m(),
                &ProjectionSettings::default(),
            )
            .expect("runs")
        });
    });
    group.finish();

    println!("\nAblation: projection dimension sweep (vortex, reduced size; paper dim = 15)");
    println!("{:>5} {:>7} {:>9} {:>9} {:>11}", "dim", "fine-k", "points", "dCPI%", "functional%");
    for dim in [2usize, 4, 8, 15, 32, 64] {
        let proj = ProjectionSettings { dim, ..ProjectionSettings::default() };
        let out = simpoint_baseline(&cb, FINE_INTERVAL, &SimPointConfig::fine_10m(), &proj)
            .expect("baseline runs");
        let est = execute_plan(&cb, &config, &out.plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        println!(
            "{:>5} {:>7} {:>9} {:>8.2}% {:>10.2}%",
            dim,
            out.simpoints.k,
            out.plan.len(),
            dev.cpi * 100.0,
            out.plan.functional_fraction() * 100.0
        );
    }
}

criterion_group!(benches, bench_ablation_projection);
criterion_main!(benches);
