//! Ablation: the coarse `Kmax` (the paper fixes it at 3 — what happens
//! at 1..6?). Prints, per `Kmax`: the number of points actually chosen,
//! the functional share, the CPI deviation, and the speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpa_core::prelude::*;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};
use std::hint::black_box;

fn bench_ablation_kmax(c: &mut Criterion) {
    let spec = suite::benchmark_with_iters("gzip", 2).expect("gzip").scaled(0.5);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");
    let config = MachineConfig::table1_base();
    let truth = ground_truth(&cb, &config).estimate();
    let baseline = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )
    .expect("baseline");
    let model = CostModel::paper_implied();

    let mut group = c.benchmark_group("ablation_kmax");
    group.sample_size(10);
    group.bench_function("coasts_kmax3_gzip", |b| {
        b.iter(|| coasts(black_box(&cb), &CoastsConfig::default()).expect("runs"));
    });
    group.finish();

    println!("\nAblation: coarse Kmax sweep (gzip, reduced size; paper default Kmax = 3)");
    println!("{:>5} {:>7} {:>11} {:>9} {:>9}", "Kmax", "points", "functional%", "dCPI%", "speedup");
    for k_max in 1..=6 {
        let mut cfg = CoastsConfig::default();
        cfg.selection.k_max = k_max;
        let out = coasts(&cb, &cfg).expect("coasts runs");
        let est = execute_plan(&cb, &config, &out.plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        println!(
            "{:>5} {:>7} {:>10.2}% {:>8.2}% {:>8.2}x",
            k_max,
            out.plan.len(),
            out.plan.functional_fraction() * 100.0,
            dev.cpi * 100.0,
            model.speedup(&baseline.plan, &out.plan)
        );
    }
}

criterion_group!(benches, bench_ablation_kmax);
criterion_main!(benches);
