//! Interleaved A/B of the optimized detailed simulator against the
//! retained naive reference on the bench workload. The two run
//! back-to-back in each round, so host-level noise (shared-tenancy
//! frequency drift) cancels out of the per-round ratio.

use mlpa_sim::{reference, DetailedSim, MachineConfig};
use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};
use std::time::Instant;

fn main() {
    let spec = suite::benchmark_with_iters("eon", 1).expect("eon").scaled(0.05);
    let cb = CompiledBenchmark::compile(&spec).expect("compiles");

    let time = |f: &mut dyn FnMut() -> u64| {
        let mut best = f64::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let c = f();
            let dt = t.elapsed().as_secs_f64();
            assert!(c > 0);
            best = best.min(dt);
        }
        best * 1e3
    };

    let mut ratios = Vec::new();
    for round in 0..5 {
        let fast = time(&mut || {
            let mut d = DetailedSim::new(MachineConfig::table1_base(), cb.program());
            d.simulate(&mut WorkloadStream::new(&cb), u64::MAX).cycles
        });
        let naive = time(&mut || {
            let mut d = reference::DetailedSim::new(MachineConfig::table1_base(), cb.program());
            d.simulate(&mut WorkloadStream::new(&cb), u64::MAX).cycles
        });
        let r = naive / fast;
        ratios.push(r);
        println!("round {round}: fast {fast:7.2} ms  naive {naive:7.2} ms  ratio {r:.3}");
    }
    ratios.sort_by(f64::total_cmp);
    println!("median ratio vs reference: {:.3}", ratios[ratios.len() / 2]);
}
