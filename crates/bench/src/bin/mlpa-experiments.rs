//! `mlpa-experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! mlpa-experiments [OPTIONS] [COMMANDS...]
//!
//! COMMANDS (default: all)
//!   configs      print Table I (both machine configurations)
//!   fig1         Fig. 1 phase curves for lucas (CSV + ASCII)
//!   fig3         Fig. 3 COASTS speedup over SimPoint
//!   fig4         Fig. 4 multi-level speedup over SimPoint
//!   table2       Table II deviation comparison
//!   table3       Table III simulation-point statistics
//!   motivation   §III-B coarse-phase statistics
//!   accuracy     per-coarse-phase error attribution (COASTS, Config A)
//!   all          everything above
//!
//! OPTIONS
//!   --quick           reduced suite (2x iterations, 0.5x sizes)
//!   --select a,b,c    only the named benchmarks
//!   --iters N         iteration factor (default 8; gcc unaffected)
//!   --scale F         size scale factor (default 1.0)
//!   --cold            cold fast-forward (no warming) — scale-amplified
//!   --jobs N          worker threads for the suite run (default 0 = all
//!                     cores); results are bit-identical for every N
//!   --shards N        trace segments per profiling pass (default 1 =
//!                     monolithic); shards profile concurrently without
//!                     materialising the prefix, and their merge is
//!                     bit-identical to the monolithic pass for every N
//!   --ratio R         cost-model ratio c_d/c_f (default: paper 32.5)
//!   --measured-ratio  also report speedups at the measured ratio
//!   --out DIR         output directory (default: results)
//!   --cache DIR       record pipeline artifacts (profiles, selections,
//!                     ground truths, plan executions) into a crash-safe
//!                     content-addressed store at DIR
//!   --resume          with --cache: also *reuse* stored artifacts, so a
//!                     repeated or interrupted run skips completed work;
//!                     results are bit-identical to an uncached run
//!   --quiet           errors only on stderr (tables still print)
//!   --verbose         extra per-step detail on stderr
//!   --progress        per-benchmark progress lines even under --quiet
//!   --obs PATH        stream JSONL observability events to PATH and
//!                     write <out>/RUN_REPORT.json (needs a build with
//!                     `--features obs`)
//!   --telemetry-ms N  background sampler interval for `sample` events
//!                     in the --obs stream (default 250; 0 disables the
//!                     sampler; only meaningful with --obs)
//!   --status-port N   serve live HTTP GET /metrics (Prometheus text)
//!                     and GET /status (JSON) on 127.0.0.1:N while the
//!                     run executes; 0 picks an ephemeral port. The
//!                     bound address is printed to stderr as
//!                     `status server listening on 127.0.0.1:PORT`
//!                     (needs a build with `--features obs`)
//! ```

use mlpa_bench::{fig1, harness, report};
use mlpa_core::prelude::*;
use mlpa_obs::{elog, info, progress, vlog};
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark, Suite};
use std::fs;
use std::path::PathBuf;

struct Options {
    commands: Vec<String>,
    quick: bool,
    select: Vec<String>,
    iters: usize,
    scale: f64,
    cold: bool,
    jobs: usize,
    shards: usize,
    ratio: f64,
    measured_ratio: bool,
    out: PathBuf,
    cache: Option<PathBuf>,
    resume: bool,
    quiet: bool,
    verbose: bool,
    progress: bool,
    obs: Option<PathBuf>,
    telemetry_ms: u64,
    status_port: Option<u16>,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        commands: Vec::new(),
        quick: false,
        select: Vec::new(),
        iters: suite::DEFAULT_ITER_FACTOR,
        scale: 1.0,
        cold: false,
        jobs: 0,
        shards: 1,
        ratio: 32.5,
        measured_ratio: false,
        out: PathBuf::from("results"),
        cache: None,
        resume: false,
        quiet: false,
        verbose: false,
        progress: false,
        obs: None,
        telemetry_ms: mlpa_obs::DEFAULT_SAMPLE_MS,
        status_port: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--cold" => o.cold = true,
            "--measured-ratio" => o.measured_ratio = true,
            "--quiet" => o.quiet = true,
            "--verbose" => o.verbose = true,
            "--progress" => o.progress = true,
            "--obs" => o.obs = Some(PathBuf::from(args.next().ok_or("--obs needs a value")?)),
            "--telemetry-ms" => {
                o.telemetry_ms = args
                    .next()
                    .ok_or("--telemetry-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--telemetry-ms: {e}"))?;
            }
            "--status-port" => {
                o.status_port = Some(
                    args.next()
                        .ok_or("--status-port needs a value")?
                        .parse()
                        .map_err(|e| format!("--status-port: {e}"))?,
                );
            }
            "--select" => {
                let v = args.next().ok_or("--select needs a value")?;
                o.select = v.split(',').map(str::to_owned).collect();
            }
            "--jobs" => {
                o.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--shards" => {
                o.shards = args
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--iters" => {
                o.iters = args
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--scale" => {
                o.scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--ratio" => {
                o.ratio = args
                    .next()
                    .ok_or("--ratio needs a value")?
                    .parse()
                    .map_err(|e| format!("--ratio: {e}"))?;
            }
            "--out" => o.out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--cache" => o.cache = Some(PathBuf::from(args.next().ok_or("--cache needs a value")?)),
            "--resume" => o.resume = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of mlpa-experiments.rs");
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => {
                const COMMANDS: [&str; 9] = [
                    "configs",
                    "fig1",
                    "fig3",
                    "fig4",
                    "table2",
                    "table3",
                    "motivation",
                    "accuracy",
                    "all",
                ];
                if !COMMANDS.contains(&cmd) {
                    return Err(format!(
                        "unknown command `{cmd}` (expected one of: {})",
                        COMMANDS.join(", ")
                    ));
                }
                o.commands.push(cmd.to_owned());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if o.quiet && o.verbose {
        return Err("--quiet and --verbose are mutually exclusive".into());
    }
    if o.resume && o.cache.is_none() {
        return Err("--resume needs --cache DIR (there is nothing to resume from)".into());
    }
    if o.commands.is_empty() {
        o.commands.push("all".into());
    }
    Ok(o)
}

fn build_suite(o: &Options) -> Suite {
    let (iters, scale) = if o.quick { (2, 0.5) } else { (o.iters, o.scale) };
    let mut s: Suite = suite::SPEC2000_NAMES
        .iter()
        .map(|n| {
            let spec = suite::benchmark_with_iters(n, iters).expect("known name");
            if (scale - 1.0).abs() > 1e-12 {
                spec.scaled(scale)
            } else {
                spec
            }
        })
        .collect();
    if !o.select.is_empty() {
        let names: Vec<&str> = o.select.iter().map(String::as_str).collect();
        s = s.select(&names);
    }
    s
}

fn main() {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            elog!("error", "{e}");
            std::process::exit(2);
        }
    };
    mlpa_obs::set_verbosity(if o.quiet {
        mlpa_obs::Verbosity::Quiet
    } else if o.verbose {
        mlpa_obs::Verbosity::Verbose
    } else {
        mlpa_obs::Verbosity::Normal
    });
    mlpa_obs::set_force_progress(o.progress);
    if o.obs.is_some() || o.status_port.is_some() {
        let cfg = mlpa_obs::ObsConfig {
            enabled: true,
            sink: o.obs.clone(),
            sample_ms: (o.telemetry_ms > 0).then_some(o.telemetry_ms),
        };
        if let Err(e) = mlpa_obs::init(&cfg) {
            elog!("error", "opening obs sink: {e}");
            std::process::exit(2);
        }
        if !mlpa_obs::is_enabled() {
            elog!(
                "obs",
                "this binary was built without `--features obs`; \
                 --obs / --status-port will record nothing"
            );
        }
    }
    if let Some(port) = o.status_port {
        // Degrade gracefully on a non-obs build, matching the warning
        // above: a server with nothing behind it would only serve
        // empty documents, so don't start one (serve_status would
        // return Unsupported anyway).
        if mlpa_obs::is_enabled() {
            match mlpa_obs::telemetry::serve_status(port) {
                // elog! so the bound address survives --quiet: CI parses
                // this line to find the ephemeral port.
                Ok(addr) => elog!("obs", "status server listening on {addr}"),
                Err(e) => {
                    elog!("error", "--status-port {port}: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            elog!("obs", "--status-port {port} ignored: rebuild with `--features obs`");
        }
    }
    let outcome = run(&o);
    mlpa_obs::telemetry::stop_status_server();
    if let Err(e) = outcome {
        elog!("error", "{e}");
        std::process::exit(1);
    }
}

fn run(o: &Options) -> Result<(), String> {
    mlpa_obs::telemetry::set_run_phase("setup");
    fs::create_dir_all(&o.out).map_err(|e| format!("creating {}: {e}", o.out.display()))?;
    let wants =
        |c: &str| o.commands.iter().any(|x| x == c) || o.commands.iter().any(|x| x == "all");
    let mut emitted: Vec<(String, String)> = Vec::new();
    fn print_and_keep(emitted: &mut Vec<(String, String)>, name: &str, text: String) {
        println!("{text}");
        emitted.push((name.to_owned(), text));
    }

    if wants("configs") {
        let mut t = String::from("Table I: CONFIGURATIONS\n");
        t.push_str(&format!("Part A (base):        {}\n", MachineConfig::table1_base()));
        t.push_str(&format!("Part B (sensitivity): {}\n", MachineConfig::table1_sensitivity()));
        print_and_keep(&mut emitted, "table1_configs.txt", t);
    }

    if wants("fig1") {
        let spec = build_suite(o)
            .get("lucas")
            .cloned()
            .ok_or("fig1 needs lucas in the suite (check --select)")?;
        info!("fig1", "computing phase curves for lucas...");
        let data = fig1::fig1(&spec)?;
        let mut t = String::from("Figure 1: PC1 of BBV signatures, lucas\n");
        t.push_str("(a) fine-grained (10k) intervals:\n");
        t.push_str(&fig1::to_ascii(&data.fine, 100, 14));
        t.push_str("(b) coarse-grained (outer-iteration) intervals:\n");
        t.push_str(&fig1::to_ascii(&data.coarse, 100, 14));
        print_and_keep(&mut emitted, "fig1_lucas.txt", t);
        emitted.push(("fig1_lucas.csv".into(), fig1::to_csv(&data)));
    }

    let need_suite_run =
        ["fig3", "fig4", "table2", "table3", "motivation", "accuracy"].iter().any(|c| wants(c));
    let mut attribution_json: Option<String> = None;
    if need_suite_run {
        let suite = build_suite(o);
        if suite.is_empty() {
            return Err(format!("--select {} matched no benchmarks", o.select.join(",")));
        }
        let cache = match &o.cache {
            Some(dir) => {
                let mut c = mlpa_core::ArtifactCache::open(dir)?;
                c.set_reuse(o.resume);
                info!(
                    "cache",
                    "artifact cache at {} ({})",
                    dir.display(),
                    if o.resume { "resume: reusing stored artifacts" } else { "record only" }
                );
                Some(std::sync::Arc::new(c))
            }
            None => None,
        };
        let exp = harness::Experiment {
            suite,
            warmup: if o.cold { WarmupMode::Cold } else { WarmupMode::Warmed },
            jobs: o.jobs,
            shards: o.shards.max(1),
            cache: cache.clone(),
            ..harness::Experiment::default()
        };
        info!(
            "suite",
            "running {} benchmarks x 3 methods x 2 configs on {} worker(s)...",
            exp.suite.len(),
            mlpa_core::effective_jobs(exp.jobs).min(exp.suite.len().max(1)),
        );
        mlpa_obs::telemetry::set_run_phase("benchmarks");
        let results = exp.run(|r| {
            progress!(
                "suite",
                "  {:>9}: {:>4.0}M insts, {:>5.1}s",
                r.name,
                r.total_insts as f64 / 1e6,
                r.elapsed
            );
        })?;
        mlpa_obs::telemetry::set_run_phase("report");
        vlog!("suite", "all benchmarks complete; building reports");
        if cache.is_some() && mlpa_obs::is_enabled() {
            info!(
                "cache",
                "artifact cache: {} hits, {} misses, {} stores, {} verify failures",
                mlpa_obs::counter_value("core.cache.hits"),
                mlpa_obs::counter_value("core.cache.misses"),
                mlpa_obs::counter_value("core.cache.stores"),
                mlpa_obs::counter_value("core.cache.verify_failures"),
            );
        }

        let mut models = vec![("paper-implied".to_owned(), CostModel::from_ratio(o.ratio))];
        if o.measured_ratio {
            let spec = exp.suite.iter().next().ok_or("empty suite")?;
            let cb = CompiledBenchmark::compile(spec)?;
            let m = CostModel::measure(&cb, &exp.configs[0], 2_000_000);
            info!("suite", "measured cost ratio r = {:.1}", m.ratio());
            models.push(("measured".to_owned(), m));
        }

        for (label, model) in &models {
            if wants("fig3") {
                let t = format!(
                    "[{label} cost model]\n{}",
                    report::figure_speedup(&results, harness::Method::Coasts, model)
                );
                print_and_keep(&mut emitted, &format!("fig3_coasts_speedup_{label}.txt"), t);
                emitted.push((
                    format!("fig3_coasts_speedup_{label}.csv"),
                    report::figure_speedup_csv(&results, harness::Method::Coasts, model),
                ));
            }
            if wants("fig4") {
                let t = format!(
                    "[{label} cost model]\n{}",
                    report::figure_speedup(&results, harness::Method::Multilevel, model)
                );
                print_and_keep(&mut emitted, &format!("fig4_multilevel_speedup_{label}.txt"), t);
                emitted.push((
                    format!("fig4_multilevel_speedup_{label}.csv"),
                    report::figure_speedup_csv(&results, harness::Method::Multilevel, model),
                ));
            }
        }
        if wants("table2") {
            print_and_keep(&mut emitted, "table2_deviation.txt", report::table2(&results));
        }
        if wants("table3") {
            print_and_keep(&mut emitted, "table3_stats.txt", report::table3(&results));
        }
        if wants("motivation") {
            print_and_keep(&mut emitted, "motivation.txt", report::motivation(&results));
        }
        if wants("accuracy") {
            print_and_keep(&mut emitted, "accuracy_report.txt", report::accuracy_report(&results));
        }
        attribution_json = Some(report::accuracy_json(&results));
        emitted.push(("full_results.csv".into(), report::full_csv(&results, &models[0].1)));
    }

    for (name, text) in &emitted {
        let path = o.out.join(name);
        fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        vlog!("done", "wrote {}", path.display());
    }
    info!("done", "wrote {} files to {}", emitted.len(), o.out.display());

    // The run report aggregates everything the instrumentation saw:
    // per-phase wall clock, per-worker utilization, counter totals.
    if o.obs.is_some() && mlpa_obs::is_enabled() {
        let path = o.out.join("RUN_REPORT.json");
        let mut extra: Vec<(String, String)> =
            attribution_json.into_iter().map(|j| ("attribution".to_string(), j)).collect();
        // Peak RSS and host identity are machine-dependent, so they
        // live in their own `resources` section that obs-diff does not
        // gate on — alongside wall-clock, they document the memory
        // footprint and the machine behind paper-scale
        // (--scale 1.0 --shards N) runs.
        let host = mlpa_obs::host_meta().to_value();
        let resources = match mlpa_obs::peak_rss_bytes() {
            Some(rss) => format!("{{\"peak_rss_bytes\": {rss}, \"host\": {host}}}"),
            None => format!("{{\"host\": {host}}}"),
        };
        extra.push(("resources".to_string(), resources));
        fs::write(&path, mlpa_obs::report().to_json_with(&extra))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        info!("obs", "wrote {}", path.display());
        mlpa_obs::finish();
    }
    mlpa_obs::telemetry::set_run_phase("done");
    Ok(())
}
