//! Fig. 1: how granularity changes the phase curves — first principal
//! component of per-interval BBV signatures at fine (10 k) versus
//! coarse (outer-loop iteration) granularity, with the selected
//! simulation points marked.

use mlpa_core::prelude::*;
use mlpa_phase::pca::principal_components;
use mlpa_workloads::{BenchmarkSpec, CompiledBenchmark};
use std::fmt::Write as _;

/// One curve point: interval number, first-PC score, and whether this
/// interval was selected as a simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Interval number in execution order.
    pub index: usize,
    /// First principal component of the interval's signature.
    pub pc1: f64,
    /// Selected as a simulation point?
    pub selected: bool,
}

/// Both curves of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Data {
    /// Fine-grained (fixed 10 k) curve, SimPoint selection marks.
    pub fine: Vec<CurvePoint>,
    /// Coarse-grained (iteration) curve, COASTS selection marks.
    pub coarse: Vec<CurvePoint>,
}

/// Compute Fig. 1's curves for a benchmark (the paper uses `lucas`).
///
/// # Errors
///
/// Propagates compilation/selection errors.
pub fn fig1(spec: &BenchmarkSpec) -> Result<Fig1Data, String> {
    let cb = CompiledBenchmark::compile(spec)?;
    let proj = ProjectionSettings::default();

    // Fine curve + SimPoint marks.
    let fine_out = simpoint_baseline(&cb, FINE_INTERVAL, &SimPointConfig::fine_10m(), &proj)?;
    let fine_ivs = mlpa_core::pipeline::profile_fixed(&cb, FINE_INTERVAL, &proj.build(&cb));
    let fine =
        curve(&fine_ivs, &fine_out.simpoints.points.iter().map(|p| p.interval).collect::<Vec<_>>());

    // Coarse curve + COASTS marks.
    let co = coasts(&cb, &CoastsConfig::default())?;
    let marks: Vec<usize> = co
        .plan
        .points()
        .iter()
        .filter_map(|p| co.intervals.iter().position(|iv| iv.start == p.start))
        .collect();
    let coarse = curve(&co.intervals, &marks);

    Ok(Fig1Data { fine, coarse })
}

fn curve(intervals: &[mlpa_phase::Interval], marks: &[usize]) -> Vec<CurvePoint> {
    let data: Vec<Vec<f64>> = intervals.iter().map(|iv| iv.vector.clone()).collect();
    let pca = principal_components(&data, 1, 0);
    let scores = pca.scores(&data, 0);
    scores
        .into_iter()
        .enumerate()
        .map(|(i, pc1)| CurvePoint { index: i, pc1, selected: marks.contains(&i) })
        .collect()
}

/// CSV rendering: `granularity,interval,pc1,selected`.
pub fn to_csv(data: &Fig1Data) -> String {
    let mut out = String::from("granularity,interval,pc1,selected\n");
    for (label, pts) in [("fine", &data.fine), ("coarse", &data.coarse)] {
        for p in pts {
            let _ = writeln!(out, "{label},{},{:.6},{}", p.index, p.pc1, u8::from(p.selected));
        }
    }
    out
}

/// ASCII rendering of one curve: a down-sampled strip chart with `*`
/// marking selected simulation points.
pub fn to_ascii(points: &[CurvePoint], width: usize, height: usize) -> String {
    if points.is_empty() {
        return String::from("(empty curve)\n");
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        lo = lo.min(p.pc1);
        hi = hi.max(p.pc1);
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let cols = width.min(points.len()).max(1);
    let per_col = points.len().div_ceil(cols);
    let mut grid = vec![vec![' '; cols]; height];
    for (c, chunk) in points.chunks(per_col).enumerate() {
        let avg: f64 = chunk.iter().map(|p| p.pc1).sum::<f64>() / chunk.len() as f64;
        let any_sel = chunk.iter().any(|p| p.selected);
        let row = ((hi - avg) / (hi - lo) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][c] = if any_sel { '*' } else { '.' };
    }
    let mut out = String::new();
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}");
    }
    let _ = writeln!(out, "+{}", "-".repeat(cols));
    let _ = writeln!(out, " x: interval number (downsampled), y: PC1; '*' = selected point");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_workloads::suite;

    fn lucas_small() -> BenchmarkSpec {
        suite::benchmark_with_iters("lucas", 4).expect("known").scaled(0.2)
    }

    #[test]
    fn fig1_computes_both_curves() {
        let d = fig1(&lucas_small()).unwrap();
        assert!(d.fine.len() > d.coarse.len() * 2, "fine curve must be denser");
        assert!(d.fine.iter().any(|p| p.selected));
        assert!(d.coarse.iter().any(|p| p.selected));
        // Smooth-coarse / chaotic-fine, the paper's Fig. 1 contrast:
        // the coarse curve is piecewise-flat (consecutive same-phase
        // iterations nearly identical — tiny *median* step), while the
        // fine curve carries persistent noise at every step.
        let median_step = |pts: &[CurvePoint]| {
            let spread = pts.iter().map(|p| p.pc1).fold(f64::NEG_INFINITY, f64::max)
                - pts.iter().map(|p| p.pc1).fold(f64::INFINITY, f64::min);
            let mut d: Vec<f64> = pts.windows(2).map(|w| (w[1].pc1 - w[0].pc1).abs()).collect();
            d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            d[d.len() / 2] / spread.max(1e-12)
        };
        let fine_m = median_step(&d.fine);
        let coarse_m = median_step(&d.coarse);
        assert!(
            fine_m > coarse_m,
            "fine median step {fine_m:.4} should exceed coarse {coarse_m:.4}"
        );
        // And the coarse selection sits earlier in the run than the
        // fine selection's last point.
        let last_sel = |pts: &[CurvePoint]| {
            pts.iter().rev().find(|p| p.selected).map(|p| p.index as f64 / pts.len() as f64)
        };
        let fine_last = last_sel(&d.fine).expect("fine has marks");
        let coarse_last = last_sel(&d.coarse).expect("coarse has marks");
        assert!(
            coarse_last < fine_last,
            "coarse last mark {coarse_last:.2} vs fine {fine_last:.2}"
        );
    }

    #[test]
    fn renderings_are_nonempty() {
        let d = fig1(&lucas_small()).unwrap();
        let csv = to_csv(&d);
        assert!(csv.lines().count() > d.coarse.len());
        assert!(csv.contains("fine,"));
        let art = to_ascii(&d.coarse, 60, 12);
        assert!(art.contains('*'));
        assert_eq!(to_ascii(&[], 10, 4), "(empty curve)\n");
    }
}
