//! The shared experiment driver: runs every sampling method on every
//! benchmark under both Table I configurations, producing the result
//! set all tables and figures are derived from.

use mlpa_core::prelude::*;
use mlpa_core::{
    attribute_segments, execute_plan_cached, ground_truth_cached, ground_truth_segmented_cached,
    AccuracyAttribution, CoastsOutcome, FineOutcome, MultilevelOutcome,
};
use mlpa_sim::{MachineConfig, MetricDeviation, MetricEstimate, SimMetrics};
use mlpa_workloads::{BenchmarkSpec, CompiledBenchmark, Suite};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// The three methods the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// 10 M (scaled 10 k) fixed-interval SimPoint, `Kmax = 30`.
    SimPoint,
    /// Coarse-grained earliest-instance sampling, `Kmax = 3`.
    Coasts,
    /// COASTS + fine re-sampling above the 300 k threshold.
    Multilevel,
}

impl Method {
    /// All methods, baseline first.
    pub const ALL: [Method; 3] = [Method::SimPoint, Method::Coasts, Method::Multilevel];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::SimPoint => "10M SimPoint",
            Method::Coasts => "COASTS",
            Method::Multilevel => "Multi-level Sampling",
        }
    }
}

/// Per-benchmark, per-method outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// The executable plan.
    pub plan: SimulationPlan,
    /// Estimates under Config A and Config B.
    pub estimates: [MetricEstimate; 2],
    /// Deviations from ground truth under Config A and Config B.
    pub deviations: [MetricDeviation; 2],
    /// Number of simulation points.
    pub points: usize,
    /// Mean point (interval) size in instructions.
    pub mean_interval: f64,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Trace length in instructions.
    pub total_insts: u64,
    /// Ground truth under Config A and Config B.
    pub truths: [MetricEstimate; 2],
    /// Results in [`Method::ALL`] order.
    pub methods: [MethodResult; 3],
    /// Number of coarse phases COASTS's BIC sweep settled on.
    pub coarse_k: usize,
    /// Position of the last coarse simulation point.
    pub coarse_last_position: f64,
    /// Fine SimPoint cluster count.
    pub fine_k: usize,
    /// Per-coarse-phase error decomposition of the COASTS estimate
    /// under Config A (the segmented-truth pass that produces it also
    /// supplies `truths[0]`, so attribution costs no extra simulation).
    pub attribution: AccuracyAttribution,
    /// Wall-clock seconds spent on this benchmark.
    pub elapsed: f64,
}

/// Experiment-wide settings.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Benchmarks to run.
    pub suite: Suite,
    /// Machine configurations (Config A, Config B).
    pub configs: [MachineConfig; 2],
    /// Warm-up policy during fast-forward (default: warmed; see
    /// [`WarmupMode`] docs for the scale argument).
    pub warmup: WarmupMode,
    /// COASTS parameters.
    pub coasts: CoastsConfig,
    /// Multi-level parameters.
    pub multilevel: MultilevelConfig,
    /// Fine-grained baseline parameters.
    pub fine: SimPointConfig,
    /// Fine interval length.
    pub fine_interval: u64,
    /// Worker threads for [`Experiment::run`]: `1` = serial (the
    /// default), `0` = every available core, `n` = a pool of `n`.
    /// Results are bit-identical for every value.
    pub jobs: usize,
    /// Trace segments per profiling pass (1 = monolithic). Each shard
    /// fast-forwards to its segment without materialising instructions
    /// and profiles only its slice; the merge is bit-identical to the
    /// monolithic pass, so this is purely a wall-clock/streaming knob
    /// for paper-scale traces.
    pub shards: usize,
    /// Optional artifact cache: profiling passes, selections, ground
    /// truths, and plan executions consult and populate it, so a
    /// repeated or resumed run skips completed work. Results are
    /// bit-identical with and without a cache.
    pub cache: Option<std::sync::Arc<mlpa_core::ArtifactCache>>,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            suite: Suite::spec2000(),
            configs: [MachineConfig::table1_base(), MachineConfig::table1_sensitivity()],
            warmup: WarmupMode::Warmed,
            coasts: CoastsConfig::default(),
            multilevel: MultilevelConfig::default(),
            fine: SimPointConfig::fine_10m(),
            fine_interval: FINE_INTERVAL,
            jobs: 1,
            shards: 1,
            cache: None,
        }
    }
}

impl Experiment {
    /// A scaled-down experiment for quick runs and Criterion benches:
    /// the full 26-benchmark suite at reduced iteration counts and
    /// sizes. Keeps every structural knob identical.
    pub fn quick() -> Experiment {
        let suite: Suite = mlpa_workloads::suite::SPEC2000_NAMES
            .iter()
            .map(|n| {
                mlpa_workloads::suite::benchmark_with_iters(n, 2).expect("known name").scaled(0.5)
            })
            .collect();
        Experiment { suite, ..Experiment::default() }
    }

    /// Restrict to the named benchmarks.
    #[must_use]
    pub fn select(mut self, names: &[&str]) -> Experiment {
        self.suite = self.suite.select(names);
        self
    }

    /// Run one benchmark through every method and both configs.
    ///
    /// # Errors
    ///
    /// Propagates compilation and selection errors (invalid spec, no
    /// cyclic structure).
    pub fn run_benchmark(&self, spec: &BenchmarkSpec) -> Result<BenchResult, String> {
        let _span = mlpa_obs::span_labeled("bench.benchmark", &spec.name);
        let t0 = std::time::Instant::now();
        let cb = CompiledBenchmark::compile(spec)?;

        // Plans, sharing one profiling context: the loop profile and
        // fine intervals come from a single combined functional pass,
        // the boundary pass runs once, and multi-level reuses the
        // COASTS selection instead of recomputing it.
        let mut ctx = ProfilingContext::new(&cb, self.coasts.projection, self.fine_interval);
        ctx.set_shards(self.shards);
        if let Some(cache) = &self.cache {
            ctx.set_cache(cache.clone());
        }
        ctx.prepare();
        let fine: FineOutcome = simpoint_baseline_with(&mut ctx, &self.fine)?;
        let co: CoastsOutcome = coasts_with(&mut ctx, &self.coasts)?;
        let ml: MultilevelOutcome = multilevel_with(&mut ctx, &self.multilevel)?;

        // Ground truths + estimates per config. Under Config A the
        // truth comes from a *segmented* detailed pass sliced at the
        // coarse interval boundaries: its per-segment statistics
        // telescope exactly to the single-pass totals (same cost, same
        // result) and additionally feed the accuracy attribution.
        let zero =
            MetricEstimate { cpi: 0.0, l1_hit_rate: 0.0, l2_hit_rate: 0.0, mispredict_rate: 0.0 };
        let mut truths = [zero; 2];
        let mut per_method: Vec<Vec<(MetricEstimate, MetricDeviation)>> = vec![Vec::new(); 3];
        let lens: Vec<u64> = co.intervals.iter().map(|iv| iv.len).collect();
        let mut segments_a: Vec<SimMetrics> = Vec::new();
        let mut coasts_outcome_a = None;
        for (ci, config) in self.configs.iter().enumerate() {
            let cache = self.cache.as_deref();
            let truth = if ci == 0 {
                segments_a = ground_truth_segmented_cached(cache, &cb, config, &lens);
                let mut whole = SimMetrics::default();
                for s in &segments_a {
                    whole += *s;
                }
                whole.estimate()
            } else {
                ground_truth_cached(cache, &cb, config).estimate()
            };
            truths[ci] = truth;
            for (mi, plan) in [&fine.plan, &co.plan, &ml.plan].into_iter().enumerate() {
                let out = execute_plan_cached(cache, &cb, config, plan, self.warmup, 1);
                let est = out.estimate;
                if ci == 0 && mi == 1 {
                    coasts_outcome_a = Some(out);
                }
                per_method[mi].push((est, est.deviation_from(&truth)));
            }
        }
        let attribution = attribute_segments(
            &spec.name,
            &co,
            &coasts_outcome_a.expect("COASTS ran under Config A"),
            &segments_a,
        );

        let mk = |plan: &SimulationPlan, rows: &[(MetricEstimate, MetricDeviation)]| MethodResult {
            plan: plan.clone(),
            estimates: [rows[0].0, rows[1].0],
            deviations: [rows[0].1, rows[1].1],
            points: plan.len(),
            mean_interval: plan.mean_point_len(),
        };

        Ok(BenchResult {
            name: spec.name.clone(),
            total_insts: fine.plan.total_insts(),
            truths,
            methods: [
                mk(&fine.plan, &per_method[0]),
                mk(&co.plan, &per_method[1]),
                mk(&ml.plan, &per_method[2]),
            ],
            coarse_k: co.simpoints.k,
            coarse_last_position: co.plan.last_position(),
            fine_k: fine.simpoints.k,
            attribution,
            elapsed: t0.elapsed().as_secs_f64(),
        })
    }

    /// Run the whole suite, calling `progress` after each benchmark.
    ///
    /// With [`Experiment::jobs`] > 1 (or 0 = all cores) benchmarks fan
    /// out across a bounded worker pool. Results are returned in suite
    /// order and are bit-identical to a serial run; `progress` is
    /// always invoked on the calling thread, in suite order, as soon as
    /// the corresponding prefix of benchmarks has completed.
    ///
    /// # Errors
    ///
    /// Fails on the first benchmark error in suite order (serially this
    /// also aborts later benchmarks; in parallel, already-started ones
    /// finish but their results are discarded).
    pub fn run(&self, mut progress: impl FnMut(&BenchResult)) -> Result<Vec<BenchResult>, String> {
        let _span = mlpa_obs::span("bench.suite");
        let workers = mlpa_core::effective_jobs(self.jobs).min(self.suite.len().max(1));
        // Progress gauges feed the live telemetry sampler and the
        // status server's benchmarks done/total fields.
        mlpa_obs::gauge_set("bench.total", self.suite.len() as u64);
        mlpa_obs::gauge_set("bench.done", 0);
        if workers <= 1 {
            // A single-worker guard so serial runs still report
            // utilization.
            let mut guard = mlpa_obs::worker("suite", 0);
            let mut out = Vec::with_capacity(self.suite.len());
            for spec in &self.suite {
                let r = guard
                    .busy(|| self.run_benchmark(spec))
                    .map_err(|e| format!("{}: {e}", spec.name))?;
                progress(&r);
                mlpa_obs::gauge_set("bench.done", out.len() as u64 + 1);
                // A counter snapshot per completed benchmark gives the
                // trace converter its counter-series timeline.
                mlpa_obs::emit_counters_snapshot();
                out.push(r);
            }
            return Ok(out);
        }

        let specs: Vec<&BenchmarkSpec> = self.suite.iter().collect();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<(usize, Outcome)>();

        std::thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let (next, stop) = (&next, &stop);
                let specs = &specs;
                s.spawn(move || {
                    let mut guard = mlpa_obs::worker("suite", w);
                    loop {
                        // Claim benchmarks in suite order; stop claiming
                        // new ones once any benchmark has failed. Claim
                        // order guarantees the lowest-indexed failure is
                        // always executed, so the reported error is
                        // deterministic.
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        // A panicking benchmark must not be swallowed by
                        // the scope join: capture the payload and report
                        // it with the benchmark's name attached.
                        let r = guard.busy(|| {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                self.run_benchmark(spec).map_err(|e| format!("{}: {e}", spec.name))
                            }))
                        });
                        let r = match r {
                            Ok(Ok(res)) => Outcome::Done(Box::new(res)),
                            Ok(Err(e)) => Outcome::Error(e),
                            Err(payload) => Outcome::Panic(format!(
                                "suite benchmark {} panicked: {}",
                                spec.name,
                                mlpa_core::panic_message(&*payload)
                            )),
                        };
                        if !matches!(r, Outcome::Done(_)) {
                            stop.store(true, Ordering::Relaxed);
                        }
                        if tx.send((i, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<BenchResult>> = (0..specs.len()).map(|_| None).collect();
            let mut emitted = 0usize;
            // Keep the lowest-indexed failure of each kind so the
            // outcome is deterministic regardless of interleaving; a
            // panic (a bug) outranks an error (a bad benchmark).
            let mut first_err: Option<(usize, String)> = None;
            let mut first_panic: Option<(usize, String)> = None;
            for (i, r) in rx {
                match r {
                    Outcome::Done(res) => slots[i] = Some(*res),
                    Outcome::Error(e) => {
                        if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            first_err = Some((i, e));
                        }
                    }
                    Outcome::Panic(msg) => {
                        if first_panic.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            first_panic = Some((i, msg));
                        }
                    }
                }
                // Stream progress for the completed prefix, in order.
                while let Some(Some(done)) = slots.get(emitted) {
                    progress(done);
                    emitted += 1;
                    mlpa_obs::gauge_set("bench.done", emitted as u64);
                    mlpa_obs::emit_counters_snapshot();
                }
            }

            if let Some((_, msg)) = first_panic {
                panic!("{msg}");
            }
            if let Some((_, e)) = first_err {
                return Err(e);
            }
            slots
                .into_iter()
                .map(|r| r.ok_or_else(|| "worker pool dropped a benchmark".to_string()))
                .collect()
        })
    }
}

/// Channel payload of the parallel suite pool: a finished benchmark, a
/// benchmark error, or a captured worker panic.
enum Outcome {
    Done(Box<BenchResult>),
    Error(String),
    Panic(String),
}

/// Index of a method in [`BenchResult::methods`].
pub fn method_index(m: Method) -> usize {
    match m {
        Method::SimPoint => 0,
        Method::Coasts => 1,
        Method::Multilevel => 2,
    }
}

/// Speedup of `method` over the SimPoint baseline for one benchmark
/// under a cost model.
pub fn speedup(result: &BenchResult, method: Method, model: &CostModel) -> f64 {
    let base = &result.methods[0].plan;
    let plan = &result.methods[method_index(method)].plan;
    model.speedup(base, plan)
}

/// Geometric-mean speedup across a result set.
pub fn geomean_speedup(results: &[BenchResult], method: Method, model: &CostModel) -> f64 {
    let v: Vec<f64> = results.iter().map(|r| speedup(r, method, model)).collect();
    geometric_mean(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        let suite: Suite = ["eon", "twolf"]
            .iter()
            .map(|n| mlpa_workloads::suite::benchmark_with_iters(n, 1).expect("known").scaled(0.15))
            .collect();
        Experiment { suite, ..Experiment::default() }
    }

    #[test]
    fn runs_methods_and_orders_speedups() {
        let exp = tiny();
        let results = exp.run(|_| {}).unwrap();
        assert_eq!(results.len(), 2);
        let model = CostModel::paper_implied();
        for r in &results {
            for m in &r.methods {
                assert_eq!(m.plan.total_insts(), r.total_insts);
            }
            // Coarse methods slash functional time.
            let sp = &r.methods[0].plan;
            let co = &r.methods[1].plan;
            assert!(co.functional_fraction() < sp.functional_fraction());
            // Multi-level detail volume <= COASTS detail volume.
            assert!(r.methods[2].plan.detailed_insts() <= r.methods[1].plan.detailed_insts());
            // Attribution decomposes the COASTS/Config-A estimate, and
            // its telescoped truth *is* truths[0].
            assert_eq!(r.attribution.benchmark, r.name);
            assert_eq!(r.attribution.truth, r.truths[0]);
            assert_eq!(r.attribution.estimate, r.methods[1].estimates[0]);
            assert!(!r.attribution.phases.is_empty());
        }
        let g = geomean_speedup(&results, Method::Multilevel, &model);
        assert!(g > 1.0, "multi-level should beat SimPoint, geomean {g:.2}");
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::ALL.len(), 3);
        assert_eq!(method_index(Method::SimPoint), 0);
        assert_eq!(Method::Coasts.name(), "COASTS");
    }

    #[test]
    fn select_filters_suite() {
        let exp = Experiment::default().select(&["gzip"]);
        assert_eq!(exp.suite.len(), 1);
    }

    /// Everything a `BenchResult` derives from the trace must be
    /// bit-identical across worker counts; only `elapsed` (wall clock)
    /// may differ.
    fn assert_same_results(a: &[BenchResult], b: &[BenchResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.total_insts, y.total_insts);
            assert_eq!(x.truths, y.truths);
            assert_eq!(x.methods, y.methods);
            assert_eq!(x.coarse_k, y.coarse_k);
            assert_eq!(x.coarse_last_position, y.coarse_last_position);
            assert_eq!(x.fine_k, y.fine_k);
            assert_eq!(x.attribution, y.attribution);
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_and_ordered() {
        let serial = tiny().run(|_| {}).unwrap();
        for jobs in [4, 0] {
            let mut streamed = Vec::new();
            let results =
                Experiment { jobs, ..tiny() }.run(|r| streamed.push(r.name.clone())).unwrap();
            assert_same_results(&serial, &results);
            // Progress streams on the calling thread in suite order.
            let order: Vec<String> = results.iter().map(|r| r.name.clone()).collect();
            assert_eq!(streamed, order, "jobs={jobs} progress order");
        }
    }

    #[test]
    fn sharded_run_is_bit_identical() {
        let serial = tiny().run(|_| {}).unwrap();
        let sharded = Experiment { shards: 6, ..tiny() }.run(|_| {}).unwrap();
        assert_same_results(&serial, &sharded);
    }

    #[test]
    fn parallel_run_reports_lowest_index_error() {
        // An empty script fails compilation at index 0; the parallel
        // pool must report exactly that error even though later
        // benchmarks succeed (claim order guarantees index 0 runs).
        let mut exp = tiny();
        let mut specs: Vec<_> = exp.suite.iter().cloned().collect();
        let mut bad = specs[0].clone();
        bad.name = "bad".into();
        bad.script.clear();
        specs.insert(0, bad);
        exp.suite = specs.into_iter().collect();
        exp.jobs = 4;
        let serial_err = Experiment { jobs: 1, ..exp.clone() }.run(|_| {}).unwrap_err();
        let parallel_err = exp.run(|_| {}).unwrap_err();
        assert_eq!(serial_err, parallel_err);
        assert!(parallel_err.starts_with("bad:"), "{parallel_err}");
    }

    /// Regression: a worker thread panicking mid-benchmark used to
    /// resurface only at the scope join, with the raw payload and no
    /// indication of which benchmark died. The pool must capture it and
    /// re-panic with the benchmark's name attached.
    #[test]
    #[should_panic(expected = "suite benchmark eon panicked")]
    fn parallel_run_propagates_worker_panics_with_benchmark_name() {
        let mut exp = tiny();
        exp.jobs = 2;
        // Width 0 passes compilation/selection but makes DetailedSim
        // panic inside the worker ("invalid machine config").
        exp.configs[0].width = 0;
        let _ = exp.run(|_| {});
    }
}
