#![warn(missing_docs)]

//! Experiment harness for the `mlpa` reproduction: everything needed to
//! regenerate the paper's tables and figures.
//!
//! * [`harness`] — runs all three sampling methods over the suite under
//!   both Table I configurations and collects per-benchmark results;
//! * [`report`] — renders Table II, Table III, Fig. 3, Fig. 4, and the
//!   §III-B motivation statistics from a result set;
//! * [`fig1`] — computes and renders the Fig. 1 phase curves.
//!
//! The `mlpa-experiments` binary drives these; the Criterion benches
//! under `benches/` wrap the same entry points.

pub mod fig1;
pub mod harness;
pub mod report;

pub use harness::{BenchResult, Experiment, Method};
