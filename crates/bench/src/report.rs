//! Rendering of the paper's tables and figures from a result set.

use crate::harness::{geomean_speedup, method_index, speedup, BenchResult, Method};
use mlpa_core::prelude::*;
use std::fmt::Write as _;

/// Fig. 3 / Fig. 4: per-benchmark speedup of a method over 10 M
/// SimPoint, plus the geometric mean — as text rows and an ASCII bar
/// chart.
pub fn figure_speedup(results: &[BenchResult], method: Method, model: &CostModel) -> String {
    let mut out = String::new();
    let fig = match method {
        Method::Coasts => "Figure 3: Speedup of COASTS over SimPoint",
        Method::Multilevel => "Figure 4: Speedup of the multi-level sampling over SimPoint",
        Method::SimPoint => "Speedup of SimPoint over itself",
    };
    let _ = writeln!(out, "{fig}  (cost ratio r = {:.1})", model.ratio());
    let max = results.iter().map(|r| speedup(r, method, model)).fold(1.0_f64, f64::max);
    for r in results {
        let s = speedup(r, method, model);
        let bars = ((s / max) * 50.0).round() as usize;
        let _ = writeln!(out, "{:>9} {:>7.2}x |{}", r.name, s, "#".repeat(bars.max(1)));
    }
    let g = geomean_speedup(results, method, model);
    let _ = writeln!(out, "{:>9} {:>7.2}x  (geometric mean)", "GEOMEAN", g);
    out
}

/// CSV companion of [`figure_speedup`].
pub fn figure_speedup_csv(results: &[BenchResult], method: Method, model: &CostModel) -> String {
    let mut out = String::from("benchmark,speedup\n");
    for r in results {
        let _ = writeln!(out, "{},{:.4}", r.name, speedup(r, method, model));
    }
    let _ = writeln!(out, "geomean,{:.4}", geomean_speedup(results, method, model));
    out
}

/// Table II: CPI / L1-hit / L2-hit deviation (average and worst) per
/// method under both configurations.
pub fn table2(results: &[BenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table II: DEVIATION COMPARISON (AVG = geometric-style mean of per-benchmark deviations; Worst = max)");
    let _ = writeln!(
        out,
        "{:<22} | {:>10} {:>10} | {:>10} {:>10}",
        "", "A: AVG", "A: Worst", "B: AVG", "B: Worst"
    );
    for (metric_name, pick) in [("CPI", 0usize), ("L1 Cache Hit", 1), ("L2 Cache Hit", 2)] {
        let _ = writeln!(out, "--- {metric_name} ---");
        for m in Method::ALL {
            let mi = method_index(m);
            let mut cells = Vec::new();
            for ci in 0..2 {
                let vals: Vec<f64> = results
                    .iter()
                    .map(|r| {
                        let d = &r.methods[mi].deviations[ci];
                        match pick {
                            0 => d.cpi,
                            1 => d.l1_hit_rate,
                            _ => d.l2_hit_rate,
                        }
                    })
                    .collect();
                cells.push((mean(&vals), worst(&vals)));
            }
            let _ = writeln!(
                out,
                "{:<22} | {:>9.2}% {:>9.2}% | {:>9.2}% {:>9.2}%",
                m.name(),
                cells[0].0 * 100.0,
                cells[0].1 * 100.0,
                cells[1].0 * 100.0,
                cells[1].1 * 100.0
            );
        }
    }
    out
}

/// Table III: mean interval size, mean sample number, mean detail %,
/// mean functional % per method (geometric means, as in the paper).
pub fn table3(results: &[BenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table III: SIMULATION POINTS STATISTICS (geometric means)");
    let _ = writeln!(
        out,
        "{:<22} | {:>14} {:>12} {:>12} {:>14}",
        "Algorithm", "Mean Interval", "Mean Sample", "Mean Detail", "Mean Functional"
    );
    for m in Method::ALL {
        let mi = method_index(m);
        let interval: Vec<f64> = results.iter().map(|r| r.methods[mi].mean_interval).collect();
        let samples: Vec<f64> = results.iter().map(|r| r.methods[mi].points as f64).collect();
        let detail: Vec<f64> =
            results.iter().map(|r| r.methods[mi].plan.detail_fraction().max(1e-9)).collect();
        let func: Vec<f64> =
            results.iter().map(|r| r.methods[mi].plan.functional_fraction().max(1e-9)).collect();
        let _ = writeln!(
            out,
            "{:<22} | {:>12.0}k… {:>12.1} {:>11.3}% {:>13.2}%",
            m.name(),
            geometric_mean(&interval) / 1_000.0,
            geometric_mean(&samples),
            geometric_mean(&detail) * 100.0,
            geometric_mean(&func) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "(interval sizes are in scaled instructions; multiply by 1000 for paper-equivalent units)"
    );
    out
}

/// §III-B motivation: per-benchmark coarse phase counts and last-point
/// positions.
pub fn motivation(results: &[BenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Motivation (paper §III-B): coarse-grained phase structure");
    let _ = writeln!(out, "{:>9} {:>9} {:>12} {:>8}", "bench", "coarse-k", "last-pos(%)", "fine-k");
    for r in results {
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>12.1} {:>8}",
            r.name,
            r.coarse_k,
            r.coarse_last_position * 100.0,
            r.fine_k
        );
    }
    let ks: Vec<f64> = results.iter().map(|r| r.coarse_k as f64).collect();
    let pos: Vec<f64> = results.iter().map(|r| r.coarse_last_position).collect();
    let _ = writeln!(
        out,
        "mean coarse phases {:.1}; mean last position {:.1}%  (paper: ~3 phases, ~17 %)",
        mean(&ks),
        mean(&pos) * 100.0
    );
    out
}

/// The per-coarse-phase error decomposition of every benchmark's
/// COASTS estimate under Config A (`results/accuracy_report.txt`).
pub fn accuracy_report(results: &[BenchResult]) -> String {
    let attrs: Vec<mlpa_core::AccuracyAttribution> =
        results.iter().map(|r| r.attribution.clone()).collect();
    mlpa_core::render_report(&attrs)
}

/// The `attribution` JSON section of `RUN_REPORT.json` (validated by
/// `obs-check`).
pub fn accuracy_json(results: &[BenchResult]) -> String {
    let attrs: Vec<mlpa_core::AccuracyAttribution> =
        results.iter().map(|r| r.attribution.clone()).collect();
    mlpa_core::render_attribution_json(&attrs)
}

/// Full per-benchmark dump (appendix-style) — everything in one CSV.
pub fn full_csv(results: &[BenchResult], model: &CostModel) -> String {
    let mut out = String::from(
        "benchmark,total_insts,method,points,mean_interval,detail_pct,functional_pct,last_pos_pct,\
         speedup,cpi_dev_a,l1_dev_a,l2_dev_a,cpi_dev_b,l1_dev_b,l2_dev_b\n",
    );
    for r in results {
        for m in Method::ALL {
            let mi = method_index(m);
            let mr = &r.methods[mi];
            let _ = writeln!(
                out,
                "{},{},{},{},{:.0},{:.4},{:.3},{:.2},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.name,
                r.total_insts,
                m.name(),
                mr.points,
                mr.mean_interval,
                mr.plan.detail_fraction() * 100.0,
                mr.plan.functional_fraction() * 100.0,
                mr.plan.last_position() * 100.0,
                speedup(r, m, model),
                mr.deviations[0].cpi * 100.0,
                mr.deviations[0].l1_hit_rate * 100.0,
                mr.deviations[0].l2_hit_rate * 100.0,
                mr.deviations[1].cpi * 100.0,
                mr.deviations[1].l1_hit_rate * 100.0,
                mr.deviations[1].l2_hit_rate * 100.0,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Experiment;
    use mlpa_workloads::Suite;

    fn small_results() -> Vec<BenchResult> {
        let suite: Suite = ["eon"]
            .iter()
            .map(|n| mlpa_workloads::suite::benchmark_with_iters(n, 1).expect("known").scaled(0.15))
            .collect();
        Experiment { suite, ..Experiment::default() }.run(|_| {}).unwrap()
    }

    #[test]
    fn reports_render() {
        let rs = small_results();
        let model = CostModel::paper_implied();
        let f3 = figure_speedup(&rs, Method::Coasts, &model);
        assert!(f3.contains("GEOMEAN"));
        assert!(f3.contains("eon"));
        let f4 = figure_speedup(&rs, Method::Multilevel, &model);
        assert!(f4.contains("Figure 4"));
        let t2 = table2(&rs);
        assert!(t2.contains("L2 Cache Hit") && t2.contains("COASTS"));
        let t3 = table3(&rs);
        assert!(t3.contains("Mean Functional"));
        let m = motivation(&rs);
        assert!(m.contains("coarse-k"));
        let csv = full_csv(&rs, &model);
        assert_eq!(csv.lines().count(), 1 + 3, "header + 3 method rows");
        let scsv = figure_speedup_csv(&rs, Method::Coasts, &model);
        assert!(scsv.starts_with("benchmark,speedup"));
        let acc = accuracy_report(&rs);
        assert!(acc.contains("eon") && acc.contains("residual"));
        let aj = accuracy_json(&rs);
        let v = mlpa_obs::json::parse(&aj).expect("attribution JSON parses");
        assert_eq!(v.as_arr().map(<[_]>::len), Some(1));
    }
}
