//! Property tests pinning the optimized detailed simulator and cache
//! hierarchy **byte-identical** to the naive [`mlpa_sim::reference`]
//! implementations, in the randomised SplitMix64 style of the phase
//! crate's `kernel_properties`: every case is generated from a fork of
//! the case index, so a failure report identifies a fully reproducible
//! input.
//!
//! The pinned contract is exact equality of [`SimMetrics`] (and, at the
//! cache layer, of every latency and counter) across randomized
//! programs, machine configurations (including non-power-of-two
//! ROB/LSQ capacities and prefetch on/off), warm and cold starts, and
//! chained region boundaries.

use mlpa_isa::rng::SplitMix64;
use mlpa_isa::stream::SliceStream;
use mlpa_isa::{BlockId, BranchKind, Instruction, OpClass, Program, ProgramBuilder, Reg};
use mlpa_sim::config::PrefetchPolicy;
use mlpa_sim::{reference, BranchUnit, CacheConfig, DetailedSim, FuConfig, MachineConfig};

const CASES: u64 = 12;

fn random_cache(
    rng: &mut SplitMix64,
    min_sets_log: u64,
    sets_span: u64,
    latency: u32,
) -> CacheConfig {
    let line = 32u64 << rng.range_u64(2); // 32 or 64
    let assoc = 1u32 << rng.range_u64(3); // 1, 2, 4
    let sets = 1u64 << (min_sets_log + rng.range_u64(sets_span));
    CacheConfig { size: line * u64::from(assoc) * sets, assoc, line, latency }
}

fn random_config(rng: &mut SplitMix64) -> MachineConfig {
    let mut cfg = MachineConfig::table1_base();
    cfg.width = 1 << rng.range_u64(4); // 1..8
                                       // Deliberately often non-power-of-two: the ring generalisation must
                                       // hold for any capacity.
    cfg.rob_entries = 2 + rng.range_u64(190) as u32;
    cfg.lsq_entries = 1 + rng.range_u64(u64::from(cfg.rob_entries)) as u32;
    cfg.frontend_depth = 1 + rng.range_u64(7) as u32;
    cfg.fu = FuConfig {
        int_alu: 1 + rng.range_u64(8) as u32,
        int_muldiv: 1 + rng.range_u64(4) as u32,
        fp_add: 1 + rng.range_u64(4) as u32,
        fp_muldiv: 1 + rng.range_u64(4) as u32,
        load_store: 1 + rng.range_u64(6) as u32,
    };
    cfg.icache = random_cache(rng, 2, 5, 1);
    let d_lat = 1 + rng.range_u64(3) as u32;
    cfg.dcache = random_cache(rng, 2, 5, d_lat);
    let l2_lat = 5 + rng.range_u64(25) as u32;
    cfg.l2 = random_cache(rng, 5, 5, l2_lat);
    cfg.mem_latency_first = 50 + rng.range_u64(150) as u32;
    cfg.mem_latency_next = 2 + rng.range_u64(20) as u32;
    cfg.predictor.mispredict_penalty = 2 + rng.range_u64(12) as u32;
    cfg.prefetch = if rng.chance(0.5) { PrefetchPolicy::NextLine } else { PrefetchPolicy::None };
    cfg.validate().unwrap_or_else(|e| panic!("generated config invalid: {e}"));
    cfg
}

fn random_inst(rng: &mut SplitMix64, ws: u64) -> Instruction {
    let ri = |rng: &mut SplitMix64| Reg::int(rng.range_u64(32) as u8);
    let rf = |rng: &mut SplitMix64| Reg::fp(rng.range_u64(32) as u8);
    let addr = |rng: &mut SplitMix64| (0x1000_0000 + rng.next_u64() % ws) & !7;
    match rng.range_u64(12) {
        0..=2 => Instruction::alu(OpClass::IntAlu, ri(rng), [ri(rng), ri(rng)]),
        3 => Instruction::alu(OpClass::IntMul, ri(rng), [ri(rng), ri(rng)]),
        4 => Instruction::alu(OpClass::IntDiv, ri(rng), [ri(rng), ri(rng)]),
        5 => Instruction::alu(OpClass::FpAdd, rf(rng), [rf(rng), rf(rng)]),
        6 => Instruction::alu(OpClass::FpMul, rf(rng), [rf(rng), rf(rng)]),
        7 => Instruction::alu(OpClass::FpDiv, rf(rng), [rf(rng), rf(rng)]),
        8 => Instruction::nop(),
        9..=10 => Instruction::load(ri(rng), ri(rng), addr(rng)),
        _ => Instruction::store(ri(rng), ri(rng), addr(rng)),
    }
}

type Trace = Vec<(BlockId, Vec<Instruction>)>;

/// A random multi-block program and a random walk over its blocks, with
/// mixed op classes, branch kinds, and a case-specific working set.
fn random_workload(rng: &mut SplitMix64) -> (Program, Trace) {
    let nblocks = 2 + rng.range_usize(6);
    let mut b = ProgramBuilder::new("prop");
    let lens: Vec<u32> = (0..nblocks).map(|_| 4 + rng.range_u64(28) as u32).collect();
    let ids: Vec<BlockId> = lens.iter().map(|&l| b.add_block(l)).collect();
    let prog = b.finish();
    let ws = 1u64 << (10 + rng.range_u64(12)); // 1 KiB .. 2 MiB
    let dyn_blocks = 100 + rng.range_usize(300);
    let mut trace = Vec::with_capacity(dyn_blocks);
    let mut cur = 0usize;
    for _ in 0..dyn_blocks {
        let len = lens[cur] as usize;
        let next = rng.range_usize(nblocks);
        let mut insts: Vec<Instruction> = (0..len - 1).map(|_| random_inst(rng, ws)).collect();
        let kind = match rng.range_u64(5) {
            0 => BranchKind::Jump,
            1 => BranchKind::Call,
            2 => BranchKind::Return,
            3 => BranchKind::Indirect,
            _ => BranchKind::Conditional,
        };
        insts.push(Instruction::branch(kind, Reg::int(1), rng.chance(0.6), ids[next]));
        trace.push((ids[cur], insts));
        cur = next;
    }
    (prog, trace)
}

#[test]
fn detailed_sim_matches_reference_cold() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xD7A1).fork(case);
        let cfg = random_config(&mut rng);
        let (prog, trace) = random_workload(&mut rng);
        let mut fast = DetailedSim::new(cfg, &prog);
        let mut naive = reference::DetailedSim::new(cfg, &prog);
        let got = fast.simulate(&mut SliceStream::new(&trace), u64::MAX);
        let want = naive.simulate(&mut SliceStream::new(&trace), u64::MAX);
        assert_eq!(got, want, "case {case}: cold run diverged under {cfg:?}");
        assert!(got.instructions > 0, "case {case}: degenerate trace");
    }
}

#[test]
fn detailed_sim_matches_reference_across_region_boundaries() {
    // Chained `simulate` calls carry microarchitectural state across
    // regions; the optimized rings/pools must telescope exactly like
    // the reference's, region by region, including limits landing
    // mid-trace.
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB0DA).fork(case);
        let cfg = random_config(&mut rng);
        let (prog, trace) = random_workload(&mut rng);
        let mut fast = DetailedSim::new(cfg, &prog);
        let mut naive = reference::DetailedSim::new(cfg, &prog);
        let mut fs = SliceStream::new(&trace);
        let mut ns = SliceStream::new(&trace);
        for region in 0..4 {
            let limit = 1 + rng.range_u64(2_000);
            let got = fast.simulate(&mut fs, limit);
            let want = naive.simulate(&mut ns, limit);
            assert_eq!(got, want, "case {case} region {region}: diverged under {cfg:?}");
        }
    }
}

#[test]
fn detailed_sim_matches_reference_from_warm_state() {
    // Both sides warm their (structurally different) hierarchies and a
    // shared-cloned branch unit with the identical access sequence,
    // install the state via `with_warm_state`, and must then agree
    // exactly on the measured region.
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3A1A).fork(case);
        let cfg = random_config(&mut rng);
        let (prog, trace) = random_workload(&mut rng);

        let mut fast_h = mlpa_sim::MemoryHierarchy::new(&cfg);
        let mut naive_h = reference::MemoryHierarchy::new(&cfg);
        let mut bu = BranchUnit::new(&cfg.predictor);
        let ws = 1u64 << (10 + rng.range_u64(10));
        for _ in 0..5_000 {
            let addr = (0x2000_0000 + rng.next_u64() % ws) & !7;
            let write = rng.chance(0.3);
            fast_h.warm_data(addr, write);
            naive_h.warm_data(addr, write);
            if rng.chance(0.2) {
                let line = (0x40_0000 + rng.next_u64() % 0x4000) & !31;
                let _ = fast_h.fetch(line);
                let _ = naive_h.fetch(line);
            }
        }
        for (id, insts) in trace.iter().take(40) {
            let block_pc = 0x40_0000 + u64::from(id.raw()) * 0x100;
            if let Some(info) = &insts[insts.len() - 1].branch {
                bu.warm(block_pc, info, BlockId::new(id.raw() + 1));
            }
        }

        let mut fast = DetailedSim::with_warm_state(cfg, &prog, fast_h, bu.clone());
        let mut naive = reference::DetailedSim::with_warm_state(cfg, &prog, naive_h, bu);
        let got = fast.simulate(&mut SliceStream::new(&trace), u64::MAX);
        let want = naive.simulate(&mut SliceStream::new(&trace), u64::MAX);
        assert_eq!(got, want, "case {case}: warm-start run diverged under {cfg:?}");
    }
}

#[test]
fn cache_matches_reference_on_random_operation_sequences() {
    // The cache layer alone: random interleavings of demand accesses,
    // non-demand fills, and upper-level write-backs must leave the
    // shift/mask implementation with exactly the naive `%`/`/` one's
    // per-operation results and counters.
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xCAC4E).fork(case);
        let cfg = random_cache(&mut rng, 1, 6, 1);
        let mut fast = mlpa_sim::cache::Cache::new(cfg);
        let mut naive = reference::Cache::new(cfg);
        let ws = cfg.size * (1 + rng.range_u64(8));
        for step in 0..20_000u64 {
            let addr = rng.next_u64() % ws;
            match rng.range_u64(10) {
                0..=6 => {
                    let write = rng.chance(0.4);
                    let got = fast.access(addr, write).is_hit();
                    let want = naive.access(addr, write);
                    assert_eq!(got, want, "case {case} step {step}: access({addr:#x}, {write})");
                }
                7..=8 => {
                    assert_eq!(
                        fast.fill(addr),
                        naive.fill(addr),
                        "case {case} step {step}: fill({addr:#x}) victim"
                    );
                }
                _ => {
                    fast.writeback(addr);
                    naive.writeback(addr);
                }
            }
        }
        assert_eq!(
            (fast.hits(), fast.misses(), fast.writebacks()),
            (naive.hits(), naive.misses(), naive.writebacks()),
            "case {case}: counters diverged under {cfg:?}"
        );
    }
}

#[test]
fn hierarchy_matches_reference_on_random_access_sequences() {
    // The two-level hierarchy: latencies (including the burst memory
    // model), per-level hit/miss/write-back counters, and prefetch
    // counts must match operation for operation.
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x41E4).fork(case);
        let cfg = random_config(&mut rng);
        let mut fast = mlpa_sim::MemoryHierarchy::new(&cfg);
        let mut naive = reference::MemoryHierarchy::new(&cfg);
        let ws = 1u64 << (12 + rng.range_u64(10));
        for step in 0..30_000u64 {
            if rng.chance(0.8) {
                let addr = (0x1000_0000 + rng.next_u64() % ws) & !7;
                let write = rng.chance(0.35);
                let got = fast.data_access(addr, write);
                let (latency, l1_hit, l2_hit) = naive.data_access(addr, write);
                assert_eq!(
                    (got.latency, got.l1_hit, got.l2_hit),
                    (latency, l1_hit, l2_hit),
                    "case {case} step {step}: data_access({addr:#x}, {write})"
                );
            } else {
                let line = (0x40_0000 + rng.next_u64() % 0x10000) & !31;
                assert_eq!(
                    fast.fetch(line),
                    naive.fetch(line),
                    "case {case} step {step}: fetch({line:#x})"
                );
            }
        }
        for (level, (f, n)) in [
            ("l1d", (fast.l1d().hits(), naive.l1d().hits())),
            ("l1i", (fast.l1i().hits(), naive.l1i().hits())),
            ("l2", (fast.l2().hits(), naive.l2().hits())),
        ] {
            assert_eq!(f, n, "case {case}: {level} hits diverged");
        }
        assert_eq!(fast.l1d().writebacks(), naive.l1d().writebacks(), "case {case}");
        assert_eq!(fast.l2().writebacks(), naive.l2().writebacks(), "case {case}");
        assert_eq!(fast.prefetches(), naive.prefetches(), "case {case}");
    }
}
