//! Microarchitectural sensitivity tests: the detailed simulator must
//! respond to each Table I resource the way a real out-of-order core
//! does. These are the properties that make sampled CPI comparisons
//! between Config A and Config B meaningful.

use mlpa_isa::stream::SliceStream;
use mlpa_isa::{BlockId, BranchKind, Instruction, OpClass, ProgramBuilder, Reg};
use mlpa_sim::{DetailedSim, MachineConfig, SimMetrics};

/// Build a one-block program and a trace of `reps` dynamic instances,
/// where instance `i`'s instructions come from `gen(i)` (terminator
/// appended automatically).
fn trace_of(
    reps: usize,
    block_len: u32,
    gen: impl Fn(usize) -> Vec<Instruction>,
) -> (mlpa_isa::Program, Vec<(BlockId, Vec<Instruction>)>) {
    let mut b = ProgramBuilder::new("t");
    let id = b.add_block(block_len + 1);
    let prog = b.finish();
    let trace = (0..reps)
        .map(|i| {
            let mut insts = gen(i);
            assert_eq!(insts.len() as u32, block_len);
            insts.push(Instruction::branch(BranchKind::Conditional, Reg::int(1), true, id));
            (id, insts)
        })
        .collect();
    (prog, trace)
}

fn run(
    cfg: MachineConfig,
    prog: &mlpa_isa::Program,
    trace: &[(BlockId, Vec<Instruction>)],
) -> SimMetrics {
    let mut sim = DetailedSim::new(cfg, prog);
    sim.simulate(&mut SliceStream::new(trace), u64::MAX)
}

/// Independent long-latency loads with pseudo-random addresses — a
/// memory-level-parallelism workload.
fn mlp_trace(reps: usize) -> (mlpa_isa::Program, Vec<(BlockId, Vec<Instruction>)>) {
    trace_of(reps, 16, |i| {
        (0..16)
            .map(|j| {
                let x = (i * 16 + j) as u64;
                let addr = (0x1000_0000 + (x.wrapping_mul(0x9E37_79B9) % (64 << 20))) & !7;
                Instruction::load(Reg::int(8 + (j % 8) as u8), Reg::int(2), addr)
            })
            .collect()
    })
}

#[test]
fn smaller_rob_hurts_memory_level_parallelism() {
    let (prog, trace) = mlp_trace(2_000);
    let big = MachineConfig::table1_base();
    let mut small = MachineConfig::table1_base();
    small.rob_entries = 16;
    small.lsq_entries = 8;
    let m_big = run(big, &prog, &trace);
    let m_small = run(small, &prog, &trace);
    assert!(
        m_small.cpi() > m_big.cpi() * 1.5,
        "ROB 16 CPI {:.2} should be much worse than ROB 128 CPI {:.2}",
        m_small.cpi(),
        m_big.cpi()
    );
}

#[test]
fn lsq_capacity_throttles_outstanding_memory_ops() {
    let (prog, trace) = mlp_trace(2_000);
    let mut narrow_lsq = MachineConfig::table1_base();
    narrow_lsq.lsq_entries = 4;
    let m_base = run(MachineConfig::table1_base(), &prog, &trace);
    let m_narrow = run(narrow_lsq, &prog, &trace);
    assert!(
        m_narrow.cpi() > m_base.cpi() * 1.2,
        "LSQ 4 CPI {:.2} vs LSQ 64 CPI {:.2}",
        m_narrow.cpi(),
        m_base.cpi()
    );
}

#[test]
fn pipeline_width_bounds_alu_throughput() {
    let (prog, trace) = trace_of(3_000, 16, |_| {
        (0..16)
            .map(|j| {
                Instruction::alu(
                    OpClass::IntAlu,
                    Reg::int(8 + (j % 16) as u8),
                    [Reg::int(1), Reg::int(2)],
                )
            })
            .collect()
    });
    let mut narrow = MachineConfig::table1_base();
    narrow.width = 2;
    let m_wide = run(MachineConfig::table1_base(), &prog, &trace);
    let m_narrow = run(narrow, &prog, &trace);
    assert!(m_wide.ipc() > 3.0, "8-wide IPC {:.2}", m_wide.ipc());
    assert!(m_narrow.ipc() <= 2.05, "2-wide IPC {:.2} must respect width", m_narrow.ipc());
    assert!(m_narrow.ipc() > 1.2, "2-wide should still pipeline, IPC {:.2}", m_narrow.ipc());
}

#[test]
fn fu_pool_size_limits_fp_throughput() {
    // Independent FP multiplies: throughput bound by the FP mul pool.
    let (prog, trace) = trace_of(2_000, 12, |_| {
        (0..12)
            .map(|j| {
                Instruction::alu(
                    OpClass::FpMul,
                    Reg::fp(8 + (j % 16) as u8),
                    [Reg::fp(1), Reg::fp(2)],
                )
            })
            .collect()
    });
    let mut one_fpu = MachineConfig::table1_base();
    one_fpu.fu.fp_muldiv = 1;
    let m_two = run(MachineConfig::table1_base(), &prog, &trace);
    let m_one = run(one_fpu, &prog, &trace);
    assert!(
        m_one.cpi() > m_two.cpi() * 1.5,
        "1 FP-mul unit CPI {:.2} vs 2 units CPI {:.2}",
        m_one.cpi(),
        m_two.cpi()
    );
    // Pipelined multiplies: 2 units sustain ~2/cycle.
    assert!(m_two.ipc() > 1.5, "2 pipelined FP muls should sustain IPC > 1.5: {:.2}", m_two.ipc());
}

#[test]
fn mispredict_penalty_scales_with_configured_cost() {
    // Unpredictable branch directions (pseudo-random per instance).
    let mk = |penalty: u32| {
        let mut b = ProgramBuilder::new("t");
        let id = b.add_block(4);
        let prog = b.finish();
        let mut rng = mlpa_isa::rng::SplitMix64::new(99);
        let trace: Vec<(BlockId, Vec<Instruction>)> = (0..6_000usize)
            .map(|_| {
                let taken = rng.chance(0.5);
                let insts = vec![
                    Instruction::alu(OpClass::IntAlu, Reg::int(8), [Reg::int(1), Reg::int(2)]),
                    Instruction::alu(OpClass::IntAlu, Reg::int(9), [Reg::int(1), Reg::int(2)]),
                    Instruction::alu(OpClass::IntAlu, Reg::int(10), [Reg::int(1), Reg::int(2)]),
                    Instruction::branch(BranchKind::Conditional, Reg::int(8), taken, id),
                ];
                (id, insts)
            })
            .collect();
        let mut cfg = MachineConfig::table1_base();
        cfg.predictor.mispredict_penalty = penalty;
        let mut sim = DetailedSim::new(cfg, &prog);
        // Leak-free: simulate consumes the local trace fully.
        let m = sim.simulate(&mut SliceStream::new(&trace), u64::MAX);
        (m.cpi(), m.mispredict_rate())
    };
    let (cpi_cheap, rate_cheap) = mk(2);
    let (cpi_dear, rate_dear) = mk(30);
    assert!(rate_cheap > 0.2, "random branches must mispredict often: {rate_cheap:.2}");
    assert!((rate_cheap - rate_dear).abs() < 0.05, "penalty must not change the rate");
    assert!(
        cpi_dear > cpi_cheap * 1.5,
        "penalty 30 CPI {cpi_dear:.2} vs penalty 2 CPI {cpi_cheap:.2}"
    );
}

#[test]
fn icache_pressure_appears_for_large_code_footprints() {
    // A program of many blocks executed round-robin: footprint beyond
    // the 8 KiB L1I must raise I-cache misses.
    let mk = |nblocks: u32| {
        let mut b = ProgramBuilder::new("t");
        let ids: Vec<BlockId> = (0..nblocks).map(|_| b.add_block(17)).collect();
        let prog = b.finish();
        let body: Vec<Instruction> = (0..16)
            .map(|j| {
                Instruction::alu(
                    OpClass::IntAlu,
                    Reg::int(8 + (j % 16) as u8),
                    [Reg::int(1), Reg::int(2)],
                )
            })
            .collect();
        let trace: Vec<(BlockId, Vec<Instruction>)> = (0..8_000usize)
            .map(|i| {
                let id = ids[i % ids.len()];
                let next = ids[(i + 1) % ids.len()];
                let mut insts = body.clone();
                insts.push(Instruction::branch(BranchKind::Conditional, Reg::int(8), true, next));
                (id, insts)
            })
            .collect();
        let mut sim = DetailedSim::new(MachineConfig::table1_base(), &prog);
        let m = sim.simulate(&mut SliceStream::new(&trace), u64::MAX);
        (m.l1i_misses as f64 / (m.l1i_hits + m.l1i_misses) as f64, m.cpi())
    };
    let (miss_small, cpi_small) = mk(8); // ~0.5 KiB of code
    let (miss_big, cpi_big) = mk(512); // ~35 KiB of code, round-robin = worst case
    assert!(miss_small < 0.01, "small code must fit L1I: {miss_small:.3}");
    assert!(miss_big > 0.5, "huge round-robin footprint must thrash L1I: {miss_big:.3}");
    assert!(cpi_big > cpi_small * 1.3, "I-cache misses must cost cycles");
}

#[test]
fn memory_latency_config_propagates_to_cpi() {
    let (prog, trace) = mlp_trace(2_000);
    let mut slow = MachineConfig::table1_base();
    slow.mem_latency_first = 400;
    slow.mem_latency_next = 40;
    let m_fast = run(MachineConfig::table1_base(), &prog, &trace);
    let m_slow = run(slow, &prog, &trace);
    assert!(
        m_slow.cpi() > m_fast.cpi() * 1.5,
        "400-cycle memory CPI {:.2} vs 150-cycle {:.2}",
        m_slow.cpi(),
        m_fast.cpi()
    );
}

#[test]
fn store_heavy_code_is_not_latency_bound() {
    // Stores retire through the store buffer: a store-heavy stream to
    // uncached addresses should not pay load-like latencies.
    let (prog, stores) = trace_of(2_000, 12, |i| {
        (0..12)
            .map(|j| {
                let x = (i * 12 + j) as u64;
                let addr = (0x2000_0000 + (x.wrapping_mul(0x5851_F42D) % (64 << 20))) & !7;
                Instruction::store(Reg::int(3), Reg::int(2), addr)
            })
            .collect()
    });
    let m_st = run(MachineConfig::table1_base(), &prog, &stores);
    let (prog2, loads) = mlp_trace(2_000);
    let m_ld = run(MachineConfig::table1_base(), &prog2, &loads);
    assert!(
        m_st.cpi() < m_ld.cpi() * 0.8,
        "stores CPI {:.2} should beat dependent-ish loads CPI {:.2}",
        m_st.cpi(),
        m_ld.cpi()
    );
}
