//! Edge-case behaviour of `DetailedSim::simulate` that is independent
//! of the kernel rewrite: limits landing mid-block, zero-instruction
//! regions, chained region calls versus one long call, and warm-state
//! installation.

use mlpa_isa::stream::SliceStream;
use mlpa_isa::{BlockId, BranchKind, Instruction, OpClass, ProgramBuilder, Reg};
use mlpa_sim::{DetailedSim, MachineConfig, SimMetrics};
use mlpa_workloads::behavior::{InstMix, MemoryPattern};
use mlpa_workloads::spec::{BenchmarkSpec, BlockSpec, PhaseSpec, ScriptEntry};
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// A one-block program and a trace of `n` repetitions of a 16-entry
/// block with a mix of ALU work, loads, and a terminating branch.
fn looped_trace(n: usize) -> (mlpa_isa::Program, Vec<(BlockId, Vec<Instruction>)>) {
    let mut b = ProgramBuilder::new("edge");
    let id = b.add_block(16);
    let prog = b.finish();
    let mut insts: Vec<Instruction> = (0..15)
        .map(|i| {
            if i % 4 == 3 {
                Instruction::load(Reg::int(8), Reg::int(8), 0x1000_0000 + (i as u64) * 8)
            } else {
                Instruction::alu(
                    OpClass::IntAlu,
                    Reg::int(8 + (i % 8) as u8),
                    [Reg::int(1), Reg::int(2)],
                )
            }
        })
        .collect();
    insts.push(Instruction::branch(BranchKind::Conditional, Reg::int(1), true, id));
    (prog, vec![(id, insts); n])
}

fn cache_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        phases: vec![PhaseSpec {
            blocks: vec![BlockSpec {
                mix: InstMix { load: 0.35, store: 0.1, ..InstMix::default() },
                mem: MemoryPattern::RandomInSet { working_set: 48 * 1024 },
                ..BlockSpec::default()
            }],
            ..PhaseSpec::default()
        }],
        script: vec![ScriptEntry::new(0, 200_000)],
        ..BenchmarkSpec::default()
    }
}

#[test]
fn limit_mid_block_stops_at_the_next_block_boundary() {
    let (prog, trace) = looped_trace(1_000);
    let mut sim = DetailedSim::new(MachineConfig::table1_base(), &prog);
    // 16-instruction blocks: a limit of 100 lands mid-block and must
    // round up to the enclosing boundary, never truncate a block.
    let m = sim.simulate(&mut SliceStream::new(&trace), 100);
    assert_eq!(m.instructions, 112, "ceil(100/16) * 16 committed");
    // The stream itself must resume at the next whole block.
    let mut stream = SliceStream::new(&trace);
    let _ = sim.simulate(&mut stream, 100);
    let m2 = sim.simulate(&mut stream, u64::MAX);
    assert_eq!(m2.instructions, 16_000 - 112, "remainder of the trace");
}

#[test]
fn zero_instruction_regions_report_zero_cycles() {
    let (prog, trace) = looped_trace(10);
    let mut sim = DetailedSim::new(MachineConfig::table1_base(), &prog);
    // limit 0: no block is pulled, everything stays zero.
    let m = sim.simulate(&mut SliceStream::new(&trace), 0);
    assert_eq!(m, SimMetrics::default());
    assert_eq!(m.cpi(), 0.0);
    // Exhausted stream: the region is empty even with a huge limit.
    let mut stream = SliceStream::new(&trace);
    let _ = sim.simulate(&mut stream, u64::MAX);
    let tail = sim.simulate(&mut stream, u64::MAX);
    assert_eq!(tail, SimMetrics::default(), "drained stream yields an empty region");
    // A minimal non-empty region reports at least one cycle.
    let m1 = sim.simulate(&mut SliceStream::new(&trace), 1);
    assert_eq!(m1.instructions, 16);
    assert!(m1.cycles >= 1, "non-empty region pays the cycle floor");
}

#[test]
fn chained_regions_telescope_to_one_long_call() {
    // Microarchitectural state persists across `simulate` calls while
    // statistics reset, so N chained regions must sum to exactly one
    // long call over the same trace: instructions, cycles, cache and
    // branch counters all telescope.
    let cb = CompiledBenchmark::compile(&cache_spec()).unwrap();
    let cfg = MachineConfig::table1_base();

    let mut chained = DetailedSim::new(cfg, cb.program());
    let mut stream = WorkloadStream::new(&cb);
    let mut sum = SimMetrics::default();
    let mut regions = 0;
    loop {
        let m = chained.simulate(&mut stream, 25_000);
        if m.instructions == 0 {
            break;
        }
        sum += m;
        regions += 1;
    }
    assert!(regions >= 5, "the workload should span several regions, got {regions}");

    let mut single = DetailedSim::new(cfg, cb.program());
    let whole = single.simulate(&mut WorkloadStream::new(&cb), u64::MAX);
    assert_eq!(sum, whole, "chained regions must telescope exactly");
}

#[test]
fn warm_state_carries_contents_but_not_timing_or_stats() {
    let cb = CompiledBenchmark::compile(&cache_spec()).unwrap();
    let cfg = MachineConfig::table1_base();

    // Run a prefix to build up warm cache/predictor contents.
    let mut warmer = DetailedSim::new(cfg, cb.program());
    let mut warm_stream = WorkloadStream::new(&cb);
    let prefix = warmer.simulate(&mut warm_stream, 100_000);
    assert!(prefix.instructions >= 100_000);
    let warm_hier = warmer.hierarchy_mut().clone();
    let warm_branch = warmer.branch_unit_mut().clone();

    // Continue the warmer over the measurement region, and run a
    // warm-installed sibling over the same region. Cache and branch
    // counters depend only on the access stream and the warm contents,
    // so they must agree exactly; timing state was not carried, so the
    // sibling starts its cycle accounting cold.
    let mut installed = DetailedSim::with_warm_state(cfg, cb.program(), warm_hier, warm_branch);
    let mut installed_stream = WorkloadStream::new(&cb);
    let skip = installed.simulate(&mut installed_stream, 0); // no-op: stream positioning below
    assert_eq!(skip, SimMetrics::default());
    // Position the sibling's stream at the same prefix boundary by
    // draining the same number of instructions functionally.
    let mut drained = 0u64;
    let mut buf = Vec::new();
    while drained < prefix.instructions {
        use mlpa_isa::stream::InstructionStream;
        let Some(_) = installed_stream.next_block(&mut buf) else { break };
        drained += buf.len() as u64;
    }
    assert_eq!(drained, prefix.instructions, "streams positioned identically");

    let cont = warmer.simulate(&mut warm_stream, 50_000);
    let warm = installed.simulate(&mut installed_stream, 50_000);
    assert_eq!(warm.instructions, cont.instructions);
    assert_eq!(
        (warm.l1d_hits, warm.l1d_misses, warm.l2_hits, warm.l2_misses),
        (cont.l1d_hits, cont.l1d_misses, cont.l2_hits, cont.l2_misses),
        "warm contents must carry over exactly"
    );
    assert_eq!((warm.branches, warm.mispredicts), (cont.branches, cont.mispredicts));
    assert!(warm.cycles > 0, "timing restarts cold but still accumulates");

    // And the warm start must beat a stone-cold sibling on the same
    // region: that is the point of functional warming.
    let mut cold = DetailedSim::new(cfg, cb.program());
    let mut cold_stream = WorkloadStream::new(&cb);
    let mut drained = 0u64;
    while drained < prefix.instructions {
        use mlpa_isa::stream::InstructionStream;
        let Some(_) = cold_stream.next_block(&mut buf) else { break };
        drained += buf.len() as u64;
    }
    let cold_m = cold.simulate(&mut cold_stream, 50_000);
    assert!(
        warm.l1_hit_rate() > cold_m.l1_hit_rate(),
        "warm install {:.3} should beat cold start {:.3}",
        warm.l1_hit_rate(),
        cold_m.l1_hit_rate()
    );
}
