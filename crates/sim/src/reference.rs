//! Naive reference implementations of the cache hierarchy and detailed
//! out-of-order simulator.
//!
//! The live kernels in [`crate::cache`] and [`crate::detailed`] are
//! branch-light rewrites (shift/mask set indexing, mask-wrapped rings,
//! sorted functional-unit pools); this module keeps the obviously
//! correct formulation — `%`/`/` arithmetic, head-pointer rings,
//! linear earliest-free scans — with the *same* modeled semantics, so
//! property tests can pin the optimized path bit-identical
//! ([`SimMetrics`] must match exactly) the way `phase::reference` pins
//! the phase kernels. Everything here is slow on purpose and not
//! exported through the crate root's convenience re-exports.
//!
//! The reference carries the corrected write-back discipline (demand
//! access before next-line prefetch, fills counting dirty-victim
//! write-backs, clean L2 allocation on store misses, L1 dirty victims
//! written back into the L2), so "pinned" means pinned to the fixed
//! model, not to historical bugs.

use crate::branch::BranchUnit;
use crate::config::{CacheConfig, MachineConfig, PrefetchPolicy};
use crate::metrics::SimMetrics;
use mlpa_isa::stream::InstructionStream;
use mlpa_isa::{BlockId, FuClass, OpClass, Program, Reg};

/// Naive set-associative cache: `%`/`/` index math, tag-aware LRU scan.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    assoc: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    dirty: Vec<bool>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate().expect("invalid cache config");
        let sets = cfg.sets();
        let lines = (sets * u64::from(cfg.assoc)) as usize;
        Cache {
            cfg,
            sets,
            assoc: cfg.assoc as usize,
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Look up `addr`, allocating on miss. Counts hits/misses when
    /// `demand`, always counts dirty-victim write-backs. Returns
    /// `(hit, dirty victim line address)`.
    fn lookup(&mut self, addr: u64, write: bool, demand: bool) -> (bool, Option<u64>) {
        self.tick += 1;
        let block = addr / self.cfg.line;
        let set = (block % self.sets) as usize;
        let tag = block / self.sets;
        let base = set * self.assoc;

        for w in 0..self.assoc {
            if self.tags[base + w] == tag {
                if demand {
                    self.hits += 1;
                }
                self.stamps[base + w] = self.tick;
                if write {
                    self.dirty[base + w] = true;
                }
                return (true, None);
            }
        }
        if demand {
            self.misses += 1;
        }
        // LRU victim: prefer invalid ways, then the oldest stamp.
        let mut victim = base;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            let s = if self.tags[base + w] == u64::MAX { 0 } else { self.stamps[base + w] };
            if s < oldest {
                oldest = s;
                victim = base + w;
            }
        }
        let mut evicted = None;
        if self.dirty[victim] && self.tags[victim] != u64::MAX {
            self.writebacks += 1;
            evicted = Some((self.tags[victim] * self.sets + set as u64) * self.cfg.line);
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        self.dirty[victim] = write;
        (false, evicted)
    }

    /// Demand access; returns whether it hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.lookup(addr, write, true).0
    }

    /// Non-demand fill: no hit/miss accounting, but a dirty victim is
    /// still counted and its line address returned.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.lookup(addr, false, false).1
    }

    /// Receive an upper-level write-back: mark the line dirty if
    /// resident, otherwise do nothing. No statistics, no LRU movement.
    pub fn writeback(&mut self, addr: u64) {
        let block = addr / self.cfg.line;
        let set = (block % self.sets) as usize;
        let tag = block / self.sets;
        let base = set * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == tag {
                self.dirty[base + w] = true;
                return;
            }
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Reset statistics, keep contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

/// Naive data/instruction hierarchy with the same latency model as
/// [`crate::cache::MemoryHierarchy`] — config fields re-read on every
/// access instead of hoisted.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: MachineConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    last_mem_block: u64,
    prefetches: u64,
}

impl MemoryHierarchy {
    /// Build the hierarchy for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if any cache configuration is invalid.
    pub fn new(cfg: &MachineConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            cfg: *cfg,
            l1d: Cache::new(cfg.dcache),
            l1i: Cache::new(cfg.icache),
            l2: Cache::new(cfg.l2),
            last_mem_block: u64::MAX,
            prefetches: 0,
        }
    }

    /// Prefetch fills issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    fn mem_latency(&mut self, addr: u64) -> u32 {
        let block = addr >> 10;
        let lat = if block == self.last_mem_block || block == self.last_mem_block.wrapping_add(1) {
            self.cfg.mem_latency_next
        } else {
            self.cfg.mem_latency_first
        };
        self.last_mem_block = block;
        lat
    }

    /// A data access; returns `(latency, l1_hit, l2_hit)`.
    pub fn data_access(&mut self, addr: u64, write: bool) -> (u32, bool, bool) {
        let (l1_hit, l1_victim) = self.l1d.lookup(addr, write, true);
        if l1_hit {
            return (self.cfg.dcache.latency, true, false);
        }
        if let Some(line) = l1_victim {
            self.l2.writeback(line);
        }
        let l2_hit = self.l2.access(addr, false);
        let latency = if l2_hit {
            self.cfg.dcache.latency + self.cfg.l2.latency
        } else {
            self.cfg.dcache.latency + self.cfg.l2.latency + self.mem_latency(addr)
        };
        if self.cfg.prefetch == PrefetchPolicy::NextLine {
            let next = addr + self.cfg.dcache.line;
            if let Some(line) = self.l1d.fill(next) {
                self.l2.writeback(line);
            }
            self.l2.fill(next);
            self.prefetches += 1;
        }
        (latency, false, l2_hit)
    }

    /// An instruction fetch; returns the added stall cycles.
    pub fn fetch(&mut self, addr: u64) -> u32 {
        if self.l1i.access(addr, false) {
            return 0;
        }
        if self.l2.access(addr, false) {
            return self.cfg.l2.latency;
        }
        self.cfg.l2.latency + self.mem_latency(addr)
    }

    /// Touch the hierarchy without timing (functional warming).
    pub fn warm_data(&mut self, addr: u64, write: bool) {
        let _ = self.data_access(addr, write);
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Reset statistics on all levels, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
    }
}

/// Naive per-class functional-unit pools: linear earliest-free scan.
#[derive(Debug, Clone)]
struct FuPools {
    busy_until: [Vec<u64>; 5],
}

impl FuPools {
    fn new(cfg: &MachineConfig) -> FuPools {
        let mk = |n: u32| vec![0u64; n as usize];
        FuPools {
            busy_until: [
                mk(cfg.fu.int_alu),
                mk(cfg.fu.int_muldiv),
                mk(cfg.fu.fp_add),
                mk(cfg.fu.fp_muldiv),
                mk(cfg.fu.load_store),
            ],
        }
    }

    fn class_index(class: FuClass) -> usize {
        match class {
            FuClass::IntAlu => 0,
            FuClass::IntMulDiv => 1,
            FuClass::FpAdd => 2,
            FuClass::FpMulDiv => 3,
            FuClass::LoadStore => 4,
        }
    }

    fn issue(&mut self, class: FuClass, ready: u64, occupy: u64) -> u64 {
        let pool = &mut self.busy_until[Self::class_index(class)];
        let mut best = 0usize;
        for (i, &b) in pool.iter().enumerate() {
            if b < pool[best] {
                best = i;
            }
        }
        let start = ready.max(pool[best]);
        pool[best] = start + occupy;
        start
    }
}

/// The naive timestamp-propagation out-of-order model: the same
/// microarchitecture as [`crate::DetailedSim`], written with
/// head-pointer `% len` rings and per-instruction address arithmetic,
/// and with no observability hooks.
#[derive(Debug)]
pub struct DetailedSim<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    hier: MemoryHierarchy,
    branch: BranchUnit,
    fu: FuPools,
    reg_ready: [u64; Reg::NUM_TOTAL as usize],
    rob_ring: Vec<u64>,
    rob_head: usize,
    lsq_ring: Vec<u64>,
    lsq_head: usize,
    fetch_cycle: u64,
    fetch_in_cycle: u32,
    last_commit_cycle: u64,
    commits_in_cycle: u32,
    redirect_at: u64,
    last_fetch_line: u64,
}

impl<'p> DetailedSim<'p> {
    /// Create a cold reference simulator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: MachineConfig, program: &'p Program) -> DetailedSim<'p> {
        cfg.validate().expect("invalid machine config");
        DetailedSim {
            hier: MemoryHierarchy::new(&cfg),
            branch: BranchUnit::new(&cfg.predictor),
            fu: FuPools::new(&cfg),
            reg_ready: [0; Reg::NUM_TOTAL as usize],
            rob_ring: vec![0; cfg.rob_entries as usize],
            rob_head: 0,
            lsq_ring: vec![0; cfg.lsq_entries as usize],
            lsq_head: 0,
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            last_commit_cycle: 0,
            commits_in_cycle: 0,
            redirect_at: 0,
            last_fetch_line: u64::MAX,
            cfg,
            program,
        }
    }

    /// Install warm cache/predictor contents (timing starts cold).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn with_warm_state(
        cfg: MachineConfig,
        program: &'p Program,
        hier: MemoryHierarchy,
        branch: BranchUnit,
    ) -> DetailedSim<'p> {
        let mut sim = DetailedSim::new(cfg, program);
        sim.hier = hier;
        sim.branch = branch;
        sim
    }

    /// Simultaneous mutable access to the hierarchy and branch unit for
    /// functional warming.
    pub fn warm_state_mut(&mut self) -> (&mut MemoryHierarchy, &mut BranchUnit) {
        (&mut self.hier, &mut self.branch)
    }

    /// Simulate up to `limit` instructions from `stream`, mirroring
    /// [`crate::DetailedSim::simulate`] exactly.
    pub fn simulate<S: InstructionStream>(&mut self, stream: &mut S, limit: u64) -> SimMetrics {
        self.hier.reset_stats();
        self.branch.reset_stats();
        let start_cycle = self.last_commit_cycle;
        let mut m = SimMetrics::default();
        let mut buf = Vec::with_capacity(64);

        while m.instructions < limit {
            let Some(id) = stream.next_block(&mut buf) else { break };
            self.run_block(id, &buf, &mut m);
        }

        m.cycles =
            self.last_commit_cycle.saturating_sub(start_cycle).max(u64::from(m.instructions > 0));
        m.l1d_hits = self.hier.l1d().hits();
        m.l1d_misses = self.hier.l1d().misses();
        m.l1i_hits = self.hier.l1i().hits();
        m.l1i_misses = self.hier.l1i().misses();
        m.l2_hits = self.hier.l2().hits();
        m.l2_misses = self.hier.l2().misses();
        m.branches = self.branch.predictions();
        m.mispredicts = self.branch.mispredictions();
        m
    }

    fn run_block(&mut self, id: BlockId, insts: &[mlpa_isa::Instruction], m: &mut SimMetrics) {
        let block = self.program.block(id);
        let line_mask = !(self.hier.l1i().cfg.line - 1);
        let fallthrough = BlockId::new(id.raw().saturating_add(1));

        for (i, inst) in insts.iter().enumerate() {
            // ---- Fetch ----
            if self.fetch_cycle < self.redirect_at {
                self.fetch_cycle = self.redirect_at;
                self.fetch_in_cycle = 0;
            }
            let pc = block.inst_addr(i as u32);
            let line = pc & line_mask;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                let stall = self.hier.fetch(line);
                if stall > 0 {
                    self.fetch_cycle += u64::from(stall);
                    self.fetch_in_cycle = 0;
                }
            }
            if self.fetch_in_cycle == self.cfg.width {
                self.fetch_cycle += 1;
                self.fetch_in_cycle = 0;
            }
            self.fetch_in_cycle += 1;

            // ---- Dispatch (ROB/LSQ occupancy) ----
            let mut dispatch = self.fetch_cycle + u64::from(self.cfg.frontend_depth);
            dispatch = dispatch.max(self.rob_ring[self.rob_head]);
            let is_mem = inst.is_mem();
            if is_mem {
                dispatch = dispatch.max(self.lsq_ring[self.lsq_head]);
            }

            // ---- Issue (dependences + FU) ----
            let mut ready = dispatch;
            for s in inst.srcs {
                if s.is_some() {
                    ready = ready.max(self.reg_ready[s.index()]);
                }
            }
            let occupy = if inst.op.pipelined() { 1 } else { u64::from(inst.op.latency()) };
            let issue = self.fu.issue(inst.op.fu(), ready, occupy);

            // ---- Execute ----
            let complete = match inst.op {
                OpClass::Load => {
                    m.loads += 1;
                    let (latency, _, _) = self.hier.data_access(inst.addr, false);
                    issue + 1 + u64::from(latency)
                }
                OpClass::Store => {
                    m.stores += 1;
                    // Store-buffer retirement: cache updated, latency
                    // off the critical path.
                    let _ = self.hier.data_access(inst.addr, true);
                    issue + 1
                }
                op => issue + u64::from(op.latency()),
            };

            if inst.dst.is_some() {
                self.reg_ready[inst.dst.index()] = complete;
            }

            // ---- Branch resolution ----
            if let Some(info) = &inst.branch {
                let correct = self.branch.resolve(pc, info, fallthrough);
                if !correct {
                    self.redirect_at = complete + u64::from(self.cfg.predictor.mispredict_penalty);
                }
            }

            // ---- Commit (in order, width-limited) ----
            let mut commit = (complete + 1).max(self.last_commit_cycle);
            if commit == self.last_commit_cycle {
                if self.commits_in_cycle >= self.cfg.width {
                    commit += 1;
                    self.commits_in_cycle = 1;
                } else {
                    self.commits_in_cycle += 1;
                }
            } else {
                self.commits_in_cycle = 1;
            }
            self.last_commit_cycle = commit;

            self.rob_ring[self.rob_head] = commit;
            self.rob_head = (self.rob_head + 1) % self.rob_ring.len();
            if is_mem {
                self.lsq_ring[self.lsq_head] = commit;
                self.lsq_head = (self.lsq_head + 1) % self.lsq_ring.len();
            }

            m.instructions += 1;
        }
    }
}
