//! Branch prediction: bimodal, gshare, the combined (tournament)
//! predictor of Table I, a branch target buffer, and a return-address
//! stack.

use crate::config::PredictorConfig;
use mlpa_isa::{BlockId, BranchInfo, BranchKind};

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    /// Saturating transition table, indexed `[taken][state]`: a
    /// two-load lookup instead of an `if taken` whose direction is the
    /// (unpredictable) branch outcome itself.
    const NEXT: [[u8; 4]; 2] = [[0, 0, 1, 2], [1, 2, 3, 3]];

    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        self.0 = Self::NEXT[usize::from(taken)][usize::from(self.0)];
    }
    /// The post-update value without storing it.
    fn updated(self, taken: bool) -> Counter2 {
        Counter2(Self::NEXT[usize::from(taken)][usize::from(self.0)])
    }
    fn weakly_taken() -> Counter2 {
        Counter2(2)
    }
}

/// Direction predictor interface: predict, then update with the outcome.
pub trait DirectionPredictor {
    /// Predict the direction of the conditional branch at `pc`.
    fn predict(&self, pc: u64) -> bool;
    /// Record the actual outcome of the branch at `pc`.
    fn update(&mut self, pc: u64, taken: bool);
}

/// Bimodal predictor: a PC-indexed table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Create with `entries` counters (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: u32) -> Bimodal {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        Bimodal {
            table: vec![Counter2::weakly_taken(); entries as usize],
            mask: u64::from(entries) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }
    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }
}

/// Gshare: global history XOR PC indexes a counter table.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u64,
    history: u64,
    history_mask: u64,
}

impl Gshare {
    /// Create with `entries` counters and `history_bits` of global
    /// history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero / not a power of two, or
    /// `history_bits` is zero.
    pub fn new(entries: u32, history_bits: u32) -> Gshare {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        assert!(history_bits > 0, "history_bits must be positive");
        Gshare {
            table: vec![Counter2::weakly_taken(); entries as usize],
            mask: u64::from(entries) - 1,
            history: 0,
            history_mask: (1 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }
    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }
}

/// Combined (tournament) predictor: bimodal + gshare with a chooser
/// table, as in Table I ("Combined, 8 K BHT entries").
#[derive(Debug, Clone)]
pub struct Combined {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<Counter2>,
    mask: u64,
}

impl Combined {
    /// Build from a [`PredictorConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &PredictorConfig) -> Combined {
        cfg.validate().expect("invalid predictor config");
        Combined {
            bimodal: Bimodal::new(cfg.bht_entries),
            gshare: Gshare::new(cfg.bht_entries, cfg.history_bits),
            // Chooser counter: high = trust gshare.
            chooser: vec![Counter2::weakly_taken(); cfg.bht_entries as usize],
            mask: u64::from(cfg.bht_entries) - 1,
        }
    }
}

impl Combined {
    /// Predict and train in one pass, reading each table once (the
    /// split `predict` + `update` pair reads the component tables
    /// twice per branch). The chooser write is unconditional with a
    /// selected value, so the components-disagree test costs a cmov
    /// instead of a data-dependent branch.
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let ci = ((pc >> 2) & self.mask) as usize;
        let bi = self.bimodal.index(pc);
        let gi = self.gshare.index(pc);
        let cb = self.bimodal.table[bi];
        let cg = self.gshare.table[gi];
        let chooser = self.chooser[ci];
        let (pb, pg) = (cb.taken(), cg.taken());
        let pred = if chooser.taken() { pg } else { pb };
        self.chooser[ci] = if pb != pg { chooser.updated(pg == taken) } else { chooser };
        self.bimodal.table[bi] = cb.updated(taken);
        self.gshare.table[gi] = cg.updated(taken);
        self.gshare.history =
            ((self.gshare.history << 1) | u64::from(taken)) & self.gshare.history_mask;
        pred
    }
}

impl DirectionPredictor for Combined {
    fn predict(&self, pc: u64) -> bool {
        let c = self.chooser[((pc >> 2) & self.mask) as usize];
        if c.taken() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pb = self.bimodal.predict(pc);
        let pg = self.gshare.predict(pc);
        if pb != pg {
            let i = ((pc >> 2) & self.mask) as usize;
            self.chooser[i].update(pg == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }
}

/// Branch target buffer: 4-way set-associative, PC-tagged, holding the
/// last seen target of each branch.
#[derive(Debug, Clone)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<BlockId>,
    stamps: Vec<u64>,
    set_mask: u64,
    tick: u64,
}

const BTB_WAYS: usize = 4;

impl Btb {
    /// Create with `sets` sets of 4 ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two.
    pub fn new(sets: u32) -> Btb {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        let lines = sets as usize * BTB_WAYS;
        Btb {
            tags: vec![u64::MAX; lines],
            targets: vec![BlockId::new(0); lines],
            stamps: vec![0; lines],
            set_mask: u64::from(sets) - 1,
            tick: 0,
        }
    }

    // `sets` is a power of two, so index with a mask — a runtime `%`
    // is a hardware divide on the hot path.
    fn set_of(&self, pc: u64) -> usize {
        (((pc >> 2) & self.set_mask) as usize) * BTB_WAYS
    }

    // Compare all four way tags at once; at most one way can match a
    // given pc (update never duplicates a tag within a set).
    fn hit_mask(tags: &[u64], pc: u64) -> u64 {
        u64::from(tags[0] == pc)
            | u64::from(tags[1] == pc) << 1
            | u64::from(tags[2] == pc) << 2
            | u64::from(tags[3] == pc) << 3
    }

    /// Look up the predicted target for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> Option<BlockId> {
        let base = self.set_of(pc);
        let hit = Self::hit_mask(&self.tags[base..base + BTB_WAYS], pc);
        if hit == 0 {
            None
        } else {
            Some(self.targets[base + hit.trailing_zeros() as usize])
        }
    }

    /// Record the actual target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: BlockId) {
        self.tick += 1;
        let base = self.set_of(pc);
        let hit = Self::hit_mask(&self.tags[base..base + BTB_WAYS], pc);
        // LRU victim via a packed stamp<<2|way minimum: stamps start at
        // 0 and are only ever written alongside a tag with tick >= 1,
        // so invalid ways always lose the scan and ties (only between
        // invalid ways) resolve to the lowest index — exactly the
        // tag-aware first-strict-min linear scan this replaces.
        let s = &self.stamps[base..base + BTB_WAYS];
        let vkey = (s[0] << 2).min(s[1] << 2 | 1).min((s[2] << 2 | 2).min(s[3] << 2 | 3));
        // On a hit the victim is the hit way itself (re-writing the tag
        // with the same pc is a no-op), selected without a branch.
        let w = if hit != 0 { hit.trailing_zeros() as usize & 3 } else { (vkey & 3) as usize };
        self.tags[base + w] = pc;
        self.targets[base + w] = target;
        self.stamps[base + w] = self.tick;
    }
}

/// Return-address stack.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<BlockId>,
    depth: usize,
}

impl ReturnStack {
    /// Create with the given maximum depth.
    pub fn new(depth: u32) -> ReturnStack {
        ReturnStack { stack: Vec::with_capacity(depth as usize), depth: depth as usize }
    }

    /// Push a return address on a call.
    pub fn push(&mut self, ret: BlockId) {
        if self.stack.len() == self.depth && self.depth > 0 {
            self.stack.remove(0);
        }
        if self.depth > 0 {
            self.stack.push(ret);
        }
    }

    /// Pop the predicted return target.
    pub fn pop(&mut self) -> Option<BlockId> {
        self.stack.pop()
    }
}

/// The full front-end branch unit: direction + target prediction.
#[derive(Debug, Clone)]
pub struct BranchUnit {
    dir: Combined,
    btb: Btb,
    ras: ReturnStack,
    predictions: u64,
    mispredictions: u64,
}

impl BranchUnit {
    /// Build from a [`PredictorConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &PredictorConfig) -> BranchUnit {
        BranchUnit {
            dir: Combined::new(cfg),
            btb: Btb::new(cfg.btb_sets),
            ras: ReturnStack::new(cfg.ras_depth),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predict-and-update for the branch at `pc` with resolved outcome
    /// `info`; `fallthrough` is the next-block id on a not-taken path.
    /// Returns `true` if the prediction (direction *and* target) was
    /// correct.
    pub fn resolve(&mut self, pc: u64, info: &BranchInfo, fallthrough: BlockId) -> bool {
        self.predictions += 1;
        let (pred_taken, pred_target) = match info.kind {
            BranchKind::Conditional => {
                // Fused predict + train: the direction tables are
                // disjoint from the BTB, so updating them before the
                // target lookup cannot change the prediction.
                let t = self.dir.predict_and_update(pc, info.taken);
                (t, if t { self.btb.predict(pc) } else { Some(fallthrough) })
            }
            BranchKind::Return => (true, self.ras.pop()),
            BranchKind::Jump | BranchKind::Call | BranchKind::Indirect => {
                (true, self.btb.predict(pc))
            }
        };

        let actual_target = if info.taken { info.target } else { fallthrough };
        let correct = pred_taken == info.taken && pred_target.is_some_and(|t| t == actual_target);

        // Updates (direction tables already trained above).
        if info.taken && info.kind != BranchKind::Return {
            self.btb.update(pc, info.target);
        }
        if info.kind == BranchKind::Call {
            self.ras.push(fallthrough);
        }

        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Update predictor state without counting statistics (functional
    /// warming during fast-forward).
    pub fn warm(&mut self, pc: u64, info: &BranchInfo, fallthrough: BlockId) {
        let (p, m) = (self.predictions, self.mispredictions);
        let _ = self.resolve(pc, info, fallthrough);
        self.predictions = p;
        self.mispredictions = m;
    }

    /// Branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Reset statistics, keeping learned state.
    pub fn reset_stats(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(1024);
        for _ in 0..10 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        for _ in 0..10 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = Gshare::new(4096, 8);
        // Train a strict T,N,T,N pattern — bimodal cannot learn this,
        // history-based prediction can.
        let mut next = true;
        for _ in 0..200 {
            p.update(0x40, next);
            next = !next;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(0x40) == next {
                correct += 1;
            }
            p.update(0x40, next);
            next = !next;
        }
        assert!(correct > 95, "gshare got {correct}/100 on alternating pattern");
    }

    #[test]
    fn combined_beats_components_on_mixed_workload() {
        // One strongly biased branch and one periodic branch: the
        // tournament should track both well.
        let cfg = PredictorConfig {
            bht_entries: 4096,
            history_bits: 8,
            btb_sets: 64,
            ras_depth: 8,
            mispredict_penalty: 6,
        };
        let mut p = Combined::new(&cfg);
        let mut phase = 0u32;
        let mut correct = 0;
        let total = 4000;
        for i in 0..total {
            // Branch A at 0x100: always taken. Branch B at 0x204: period 3.
            let (pc, taken) = if i % 2 == 0 {
                (0x100u64, true)
            } else {
                phase += 1;
                (0x204u64, !phase.is_multiple_of(3))
            };
            if i > total / 2 && p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        let rate = f64::from(correct) / f64::from(total / 2);
        assert!(rate > 0.85, "combined accuracy {rate}");
    }

    #[test]
    fn btb_remembers_targets_and_replaces_lru() {
        let mut btb = Btb::new(2);
        assert_eq!(btb.predict(0x10), None);
        btb.update(0x10, BlockId::new(7));
        assert_eq!(btb.predict(0x10), Some(BlockId::new(7)));
        btb.update(0x10, BlockId::new(9));
        assert_eq!(btb.predict(0x10), Some(BlockId::new(9)));
        // Fill one set beyond capacity: 4 ways, sets chosen by pc>>2 % 2.
        for i in 0..5u64 {
            btb.update(0x10 + i * 16, BlockId::new(i as u32)); // all map to set (pc>>2)%2
        }
        // The original 0x10 entry (LRU) must have been evicted.
        assert_eq!(btb.predict(0x10), None);
    }

    #[test]
    fn return_stack_pairs_calls_and_returns() {
        let mut ras = ReturnStack::new(4);
        ras.push(BlockId::new(1));
        ras.push(BlockId::new(2));
        assert_eq!(ras.pop(), Some(BlockId::new(2)));
        assert_eq!(ras.pop(), Some(BlockId::new(1)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn return_stack_overflow_drops_oldest() {
        let mut ras = ReturnStack::new(2);
        ras.push(BlockId::new(1));
        ras.push(BlockId::new(2));
        ras.push(BlockId::new(3));
        assert_eq!(ras.pop(), Some(BlockId::new(3)));
        assert_eq!(ras.pop(), Some(BlockId::new(2)));
        assert_eq!(ras.pop(), None, "oldest entry was dropped");
    }

    #[test]
    fn branch_unit_counts_mispredictions() {
        let cfg = PredictorConfig {
            bht_entries: 1024,
            history_bits: 8,
            btb_sets: 64,
            ras_depth: 8,
            mispredict_penalty: 6,
        };
        let mut bu = BranchUnit::new(&cfg);
        let info =
            BranchInfo { kind: BranchKind::Conditional, taken: true, target: BlockId::new(5) };
        // First resolution: BTB is cold, so even a correct direction
        // guess cannot have the right target.
        let first = bu.resolve(0x80, &info, BlockId::new(1));
        assert!(!first);
        // After training, the same branch predicts correctly.
        for _ in 0..8 {
            bu.resolve(0x80, &info, BlockId::new(1));
        }
        assert!(bu.resolve(0x80, &info, BlockId::new(1)));
        assert!(bu.predictions() > 0);
        assert!(bu.mispredictions() < bu.predictions());
    }

    #[test]
    fn warming_learns_without_counting() {
        let cfg = PredictorConfig {
            bht_entries: 1024,
            history_bits: 8,
            btb_sets: 64,
            ras_depth: 8,
            mispredict_penalty: 6,
        };
        let mut bu = BranchUnit::new(&cfg);
        let info =
            BranchInfo { kind: BranchKind::Conditional, taken: true, target: BlockId::new(5) };
        for _ in 0..10 {
            bu.warm(0x80, &info, BlockId::new(1));
        }
        assert_eq!(bu.predictions(), 0);
        assert!(bu.resolve(0x80, &info, BlockId::new(1)), "warmed predictor is trained");
    }
}
