//! Set-associative caches with true-LRU replacement, and the two-level
//! hierarchy of Table I.
//!
//! The access path is branch-light and host-cache friendly: set index
//! and tag come from shift/mask arithmetic (set counts are powers of
//! two by [`CacheConfig::validate`]), per-access latencies are hoisted
//! into [`MemoryHierarchy`] fields, per-line state is interleaved into
//! 16-byte [`Line`] records so one 4-way set spans a single 64-byte
//! host cache line, and the LRU victim scan runs on the packed
//! `stamp << 1 | dirty` word alone (invalid lines keep meta 0, which
//! loses to every real stamp; `tick` starts at 1 so a touched line can
//! never carry stamp 0). The naive `%`/`/` three-array formulation
//! lives on in [`crate::reference`] and property tests pin the two
//! bit-identical.
//!
//! Write-back accounting follows the write-back/write-allocate
//! discipline end to end:
//!
//! * A dirty line evicted from the L1D — by a demand miss *or* a
//!   prefetch fill — is written back to the L2: the L2 copy is marked
//!   dirty ([`Cache::writeback`]) without touching hit/miss statistics
//!   or LRU state. If the L2 no longer holds the line (non-inclusive
//!   drift) the write-back goes straight to memory and no cache state
//!   changes.
//! * L2 lines become dirty **only** through those L1 write-backs. A
//!   store that misses the L1 fetches the line from the L2 *clean*
//!   (the dirtiness lives in the L1 until its victim write-back), so
//!   L2 write-back traffic is never inflated by demand stores.
//! * Non-demand fills ([`Cache::fill`]) leave hit/miss counters alone
//!   but still count the write-back traffic of any dirty victim they
//!   evict — prefetch-induced evictions are real bus traffic.
//! * Next-line prefetch issues **after** the demand access completes,
//!   so a prefetch fill can never evict the demand line's set-mate
//!   ahead of the demand lookup or perturb the demand access's LRU
//!   and victim choice.

use crate::config::{CacheConfig, MachineConfig, PrefetchPolicy};

/// Sentinel meaning "no dirty victim was evicted".
const NO_WRITEBACK: u64 = u64::MAX;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; it has been filled (allocate-on-miss). `victim_dirty`
    /// reports whether a dirty line was evicted (write-back traffic).
    Miss {
        /// Whether the evicted victim was dirty.
        victim_dirty: bool,
    },
}

impl Access {
    /// `true` for [`Access::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

/// Per-line metadata, interleaved so one set of a 4-way cache spans a
/// single 64-byte host cache line instead of three parallel arrays.
/// `meta` packs the LRU stamp and the dirty bit: `stamp << 1 | dirty`.
/// Valid lines carry distinct positive stamps and invalid lines keep
/// `meta == 0`, so an argmin over raw `meta` picks exactly the victim
/// an argmin over stamps would (the dirty bit in the lowest position
/// can never reorder distinct stamps).
#[derive(Debug, Clone, Copy)]
struct Line {
    /// Tag, or `u64::MAX` for an invalid line.
    tag: u64,
    /// `stamp << 1 | dirty`.
    meta: u64,
}

impl Line {
    const INVALID: Line = Line { tag: u64::MAX, meta: 0 };
}

/// A timing-only set-associative cache (tags + LRU stamps, no data),
/// write-back / write-allocate.
///
/// # Example
///
/// ```
/// use mlpa_sim::cache::Cache;
/// use mlpa_sim::config::CacheConfig;
///
/// let mut c = Cache::new(CacheConfig { size: 1024, assoc: 2, line: 32, latency: 1 });
/// assert!(!c.access(0x100, false).is_hit()); // cold miss
/// assert!(c.access(0x100, false).is_hit());  // now resident
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    assoc: usize,
    line_shift: u32,
    /// `sets - 1`; sets are a power of two by construction.
    set_mask: u64,
    /// `log2(sets)`: shifting a block index right by this yields the tag.
    set_shift: u32,
    /// Interleaved per-line metadata, indexed `base + set * assoc + way`.
    /// Over-allocated so `base` can shift the first set onto a 64-byte
    /// host cache-line boundary: a 4-way set is then exactly one host
    /// line, not two straddled ones, halving the host traffic of the
    /// random set-metadata walk over a large (e.g. L2-sized) array.
    lines: Vec<Line>,
    /// Element offset of set 0 in `lines` (0 when the allocation cannot
    /// be aligned); fixed for the life of the allocation.
    base: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Clone for Cache {
    fn clone(&self) -> Cache {
        // The aligned `base` is a property of each allocation, so a
        // field-wise clone would carry a stale offset; rebuild and copy
        // the live region instead.
        let mut c = Cache::new(self.cfg);
        let n = self.set_mask as usize + 1;
        let n_lines = n * self.assoc;
        c.lines[c.base..c.base + n_lines]
            .copy_from_slice(&self.lines[self.base..self.base + n_lines]);
        c.tick = self.tick;
        c.hits = self.hits;
        c.misses = self.misses;
        c.writebacks = self.writebacks;
        c
    }
}

impl Cache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate().expect("invalid cache config");
        let sets = cfg.sets();
        let assoc = cfg.assoc as usize;
        let n_lines = (sets as usize) * assoc;
        // Four slack elements cover any 64-byte alignment shift of the
        // (16-byte) `Line` elements; `align_offset` reports `MAX` if
        // the allocation's alignment makes 64 unreachable, in which
        // case the cache just runs unaligned.
        let lines = vec![Line::INVALID; n_lines + 4];
        let base = match lines.as_ptr().align_offset(64) {
            off @ 0..=4 => off,
            _ => 0,
        };
        Cache {
            cfg,
            assoc,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            lines,
            base,
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Look up `addr`, allocating on miss, *without* touching the
    /// hit/miss counters (a dirty victim still counts a write-back).
    /// Returns `(hit, writeback)` where `writeback` is the line address
    /// of a dirty victim or [`NO_WRITEBACK`].
    ///
    /// `inline(always)`: LLVM leaves this out of line in the simulator
    /// hot loops otherwise (measurably slower — every call then pays
    /// the runtime associativity dispatch and a spill/refill of the
    /// loop's live timing state).
    #[inline(always)]
    fn lookup(&mut self, addr: u64, write: bool) -> (bool, u64) {
        self.tick += 1;
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let base = self.base + set * self.assoc;

        let ways = &mut self.lines[base..base + self.assoc];
        // One fixed-trip branchless scan computes the way-match mask
        // and the LRU victim key together. Early-exit way loops and
        // value+index argmins compile to data-dependent branches that
        // mispredict on random-access workloads; a match mask and a
        // single-variable key minimum compile to ALU ops and cmov.
        // The common associativities reduce through unrolled min trees
        // (slice patterns, so the compile-time lengths drop bounds
        // checks): a rolled scan is a loop-carried dependence chain on
        // the access critical path. The dispatch is constant per cache,
        // so its branch never mispredicts.
        //
        // Victim key: invalid lines keep meta 0 and valid lines carry
        // distinct positive stamps above the dirty bit, so a plain meta
        // minimum prefers invalid ways and orders valid ones exactly
        // like the tag-aware stamp scan of the reference; the way index
        // in the low 6 bits (assoc ≤ [`CacheConfig::MAX_ASSOC`]) makes
        // ties resolve to the lowest way, like a strict-`<` scan.
        let (hit_mask, vkey) = match &*ways {
            [l0] => (u64::from(l0.tag == tag), l0.meta << 6),
            [l0, l1] => (
                u64::from(l0.tag == tag) | u64::from(l1.tag == tag) << 1,
                (l0.meta << 6).min(l1.meta << 6 | 1),
            ),
            [l0, l1, l2, l3] => (
                u64::from(l0.tag == tag)
                    | u64::from(l1.tag == tag) << 1
                    | u64::from(l2.tag == tag) << 2
                    | u64::from(l3.tag == tag) << 3,
                (l0.meta << 6).min(l1.meta << 6 | 1).min((l2.meta << 6 | 2).min(l3.meta << 6 | 3)),
            ),
            _ => {
                let mut hit_mask = 0u64;
                let mut vkey = u64::MAX;
                for (w, l) in ways.iter().enumerate() {
                    hit_mask |= u64::from(l.tag == tag) << w;
                    vkey = vkey.min(l.meta << 6 | w as u64);
                }
                (hit_mask, vkey)
            }
        };
        if hit_mask != 0 {
            let l = &mut ways[hit_mask.trailing_zeros() as usize];
            l.meta = (self.tick << 1) | (l.meta & 1) | u64::from(write);
            return (true, NO_WRITEBACK);
        }

        let v = &mut ways[(vkey & 63) as usize];
        // Only valid lines can be dirty (invalid keep meta 0), so the
        // dirty bit alone decides the write-back.
        let mut writeback = NO_WRITEBACK;
        if v.meta & 1 != 0 {
            writeback = ((v.tag << self.set_shift) | set as u64) << self.line_shift;
        }
        v.tag = tag;
        v.meta = (self.tick << 1) | u64::from(write);
        if writeback != NO_WRITEBACK {
            self.writebacks += 1;
        }
        (false, writeback)
    }

    /// Access `addr`; `write` marks the line dirty. Misses allocate.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        let (hit, writeback) = self.lookup(addr, write);
        if hit {
            self.hits += 1;
            Access::Hit
        } else {
            self.misses += 1;
            Access::Miss { victim_dirty: writeback != NO_WRITEBACK }
        }
    }

    /// Insert `addr`'s line without touching hit/miss statistics
    /// (prefetch fills and other non-demand traffic). A dirty victim
    /// evicted by the fill is still write-back traffic: it counts in
    /// [`writebacks`](Cache::writebacks) and its line address is
    /// returned so the next level can be informed.
    #[inline]
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let (_, writeback) = self.lookup(addr, false);
        (writeback != NO_WRITEBACK).then_some(writeback)
    }

    /// Receive a write-back of `addr`'s line from an upper level: if the
    /// line is resident it becomes dirty; if not, the write-back goes to
    /// memory and nothing changes. No statistics or LRU state move —
    /// a write-back drain is not a demand reference.
    #[inline]
    pub fn writeback(&mut self, addr: u64) {
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let base = self.base + set * self.assoc;
        let ways = &mut self.lines[base..base + self.assoc];
        let mut hit_mask = 0u64;
        for (w, l) in ways.iter().enumerate() {
            hit_mask |= u64::from(l.tag == tag) << w;
        }
        if hit_mask != 0 {
            ways[hit_mask.trailing_zeros() as usize].meta |= 1;
        }
    }

    /// Hint the *host* CPU to pull `addr`'s set metadata into its own
    /// cache. Purely a latency hint for upcoming [`Cache::access`]
    /// calls — no simulated state changes (large simulated caches carry
    /// hundreds of kilobytes of line metadata, and a random-access
    /// workload makes the host miss on nearly every set).
    #[inline]
    pub fn prefetch_meta(&self, addr: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            let block = addr >> self.line_shift;
            let set = (block & self.set_mask) as usize;
            let base = self.base + set * self.assoc;
            // Safety: `base` indexes a real set, so the pointer is
            // in-bounds; prefetch itself has no memory effects.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.lines.as_ptr().add(base).cast::<i8>(),
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = addr;
    }

    /// Whether `addr`'s line is resident (no state change).
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let base = self.base + set * self.assoc;
        self.lines[base..base + self.assoc].iter().any(|l| l.tag == tag)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far (demand- and fill-induced).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Reset statistics but keep contents (used when a warmed cache
    /// starts a measured region).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Invalidate all contents and reset statistics.
    pub fn clear(&mut self) {
        self.lines.fill(Line::INVALID);
        self.tick = 0;
        self.reset_stats();
    }
}

/// Latency outcome of a data access through L1 → L2 → memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Total latency in cycles.
    pub latency: u32,
    /// Hit in the L1?
    pub l1_hit: bool,
    /// Hit in the L2 (only meaningful when `l1_hit` is false)?
    pub l2_hit: bool,
}

/// The data-side memory hierarchy: L1D, unified L2, memory.
///
/// The instruction side shares the L2: [`MemoryHierarchy::fetch`] runs
/// I-cache accesses through the same L2.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    /// Hoisted per-access constants (one load instead of a config walk).
    l1d_latency: u32,
    l2_latency: u32,
    line: u64,
    mem_first: u32,
    mem_next: u32,
    last_mem_block: u64,
    prefetch: PrefetchPolicy,
    prefetches: u64,
}

impl MemoryHierarchy {
    /// Build the hierarchy for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if any cache configuration is invalid.
    pub fn new(cfg: &MachineConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1d: Cache::new(cfg.dcache),
            l1i: Cache::new(cfg.icache),
            l2: Cache::new(cfg.l2),
            l1d_latency: cfg.dcache.latency,
            l2_latency: cfg.l2.latency,
            line: cfg.dcache.line,
            mem_first: cfg.mem_latency_first,
            mem_next: cfg.mem_latency_next,
            last_mem_block: u64::MAX,
            prefetch: cfg.prefetch,
            prefetches: 0,
        }
    }

    /// Prefetch fills issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Host-prefetch the L1D and L2 set metadata for a data access at
    /// `addr` (see [`Cache::prefetch_meta`]); no simulated state moves.
    #[inline]
    pub fn prefetch_data_meta(&self, addr: u64) {
        self.l1d.prefetch_meta(addr);
        self.l2.prefetch_meta(addr);
    }

    #[inline]
    fn mem_latency(&mut self, addr: u64) -> u32 {
        // SimpleScalar-style first/next latency: sequential-block bursts
        // pay the cheaper "following" latency.
        let block = addr >> 10;
        let lat = if block == self.last_mem_block || block == self.last_mem_block.wrapping_add(1) {
            self.mem_next
        } else {
            self.mem_first
        };
        self.last_mem_block = block;
        lat
    }

    /// A data access (load or store) at `addr`.
    ///
    /// Misses allocate on the demand path first; only once the demand
    /// access has fully resolved (including its L2 lookup) does the
    /// next-line prefetch, if enabled, fill `addr + line` into L1 and
    /// L2 off the critical path. A store that misses the L1 fetches the
    /// line from the L2 *clean*; L2 dirtiness comes only from L1 dirty
    /// victims written back via [`Cache::writeback`].
    #[inline]
    pub fn data_access(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        // Host-prefetch the L2 set metadata before the L1 lookup: the
        // L1 hit/miss and dirty-victim branches below are data-dependent
        // coin flips, and a mispredict flush would otherwise restart
        // the demand set's metadata load (a host cache miss — the L2
        // metadata array far exceeds the host L1) from scratch.
        self.l2.prefetch_meta(addr);
        let (l1_hit, l1_writeback) = self.l1d.lookup(addr, write);
        if l1_hit {
            self.l1d.hits += 1;
            return HierarchyAccess { latency: self.l1d_latency, l1_hit: true, l2_hit: false };
        }
        self.l1d.misses += 1;
        // The dirty victim drains to the L2 while the demand fetch is
        // in flight (write-back buffer); it must not perturb the demand
        // access's LRU or victim choice, and `Cache::writeback` does not.
        if l1_writeback != NO_WRITEBACK {
            self.l2.writeback(l1_writeback);
        }
        // Demand L2 fetch — clean even for stores: the store's dirtiness
        // lives in the L1 line until that line is evicted.
        let l2_hit = self.l2.access(addr, false).is_hit();
        let latency = if l2_hit {
            self.l1d_latency + self.l2_latency
        } else {
            self.l1d_latency + self.l2_latency + self.mem_latency(addr)
        };
        if self.prefetch == PrefetchPolicy::NextLine {
            // Idealised next-line prefetch: fill addr+line into L1 and
            // L2 off the critical path, after the demand path completed.
            let next = addr + self.line;
            if let Some(wb) = self.l1d.fill(next) {
                self.l2.writeback(wb);
            }
            self.l2.fill(next);
            self.prefetches += 1;
        }
        HierarchyAccess { latency, l1_hit: false, l2_hit }
    }

    /// An instruction fetch at `addr`; returns the added stall cycles
    /// beyond the pipelined L1I hit path (0 on a hit).
    #[inline]
    pub fn fetch(&mut self, addr: u64) -> u32 {
        if self.l1i.access(addr, false).is_hit() {
            return 0;
        }
        if self.l2.access(addr, false).is_hit() {
            return self.l2_latency;
        }
        self.l2_latency + self.mem_latency(addr)
    }

    /// Touch the hierarchy without timing (functional warming).
    pub fn warm_data(&mut self, addr: u64, write: bool) {
        let _ = self.data_access(addr, write);
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Reset statistics on all levels, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
    }

    /// Invalidate everything (cold start).
    pub fn clear(&mut self) {
        self.l1d.clear();
        self.l1i.clear();
        self.l2.clear();
        self.last_mem_block = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets, 2 ways, 32-byte lines.
        Cache::new(CacheConfig { size: 128, assoc: 2, line: 32, latency: 1 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x0, false).is_hit());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x1f, false).is_hit(), "same line");
        assert!(!c.access(0x20, false).is_hit(), "next line, other set");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines whose block index is even (2 sets).
        let a = 0x000; // set 0
        let b = 0x040; // set 0
        let d = 0x080; // set 0
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x040, false);
        c.access(0x080, false); // evicts dirty 0x000
        assert_eq!(c.writebacks(), 1);
        let miss = c.access(0x0c0, false); // evicts clean 0x040
        assert_eq!(miss, Access::Miss { victim_dirty: false });
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn fill_evicting_dirty_line_counts_writeback() {
        let mut c = small();
        c.access(0x000, true); // dirty, set 0
        c.access(0x040, false); // set 0 now full

        // Fill a conflicting line: evicts the dirty LRU 0x000. The fill
        // must not count a hit or miss, but the dirty victim is real
        // write-back traffic and its line address is reported.
        let wb = c.fill(0x080);
        assert_eq!(wb, Some(0x000), "dirty victim line address reported");
        assert_eq!((c.hits(), c.misses()), (0, 2), "fill leaves hit/miss counters alone");
        assert_eq!(c.writebacks(), 1, "prefetch-induced dirty eviction is counted");
        // A fill evicting a clean victim reports nothing.
        assert_eq!(c.fill(0x0c0), None);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn writeback_dirties_resident_line_only() {
        let mut c = small();
        c.access(0x000, false); // clean
        c.access(0x040, false); // clean
        let (h, m, t) = (c.hits(), c.misses(), c.writebacks());
        c.writeback(0x000); // resident: becomes dirty, no stats move
        c.writeback(0x200); // absent: goes to memory, nothing changes
        assert_eq!((c.hits(), c.misses(), c.writebacks()), (h, m, t));
        assert!(!c.probe(0x200), "write-back does not allocate");
        // Evicting 0x000 now counts a write-back; 0x040 stays clean.
        c.access(0x080, false);
        c.access(0x0c0, false);
        assert_eq!(c.writebacks(), 1, "write-back-dirtied line pays on eviction");
    }

    #[test]
    fn writeback_does_not_touch_lru() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x040, false); // LRU order: 0x000 older
        c.writeback(0x000); // must NOT refresh 0x000's stamp
        c.access(0x080, false); // evicts the LRU
        assert!(!c.probe(0x000), "write-back drain must not refresh LRU");
        assert!(c.probe(0x040));
    }

    #[test]
    fn clear_and_reset_stats() {
        let mut c = small();
        c.access(0x0, true);
        c.reset_stats();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.probe(0x0), "reset_stats keeps contents");
        c.clear();
        assert!(!c.probe(0x0), "clear invalidates");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig { size: 64, assoc: 1, line: 32, latency: 1 });
        // Two lines mapping to set 0 (2 sets: block even -> set 0).
        assert!(!c.access(0x00, false).is_hit());
        assert!(!c.access(0x40, false).is_hit());
        assert!(!c.access(0x00, false).is_hit(), "conflict evicted it");
    }

    #[test]
    fn hierarchy_latencies_escalate() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        let miss = h.data_access(0x1_0000, false);
        assert!(!miss.l1_hit && !miss.l2_hit);
        assert!(miss.latency >= 150, "memory miss pays DRAM latency, got {}", miss.latency);
        let hit = h.data_access(0x1_0000, false);
        assert!(hit.l1_hit);
        assert_eq!(hit.latency, cfg.dcache.latency);
    }

    #[test]
    fn l2_hit_latency_between() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        // Fill enough distinct lines to blow L1 (16 k / 32 B = 512 lines)
        // but stay within L2.
        for i in 0..2048u64 {
            h.warm_data(0x10_0000 + i * 32, false);
        }
        // Re-access an early line: should be L2 hit, L1 miss.
        let acc = h.data_access(0x10_0000, false);
        assert!(!acc.l1_hit && acc.l2_hit, "{acc:?}");
        assert_eq!(acc.latency, cfg.dcache.latency + cfg.l2.latency);
    }

    #[test]
    fn burst_memory_latency_cheaper() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        let first = h.data_access(0x400_0000, false).latency;
        let next = h.data_access(0x400_0040, false).latency; // same 1 KiB block
        assert!(next < first, "burst access {next} should beat first {first}");
    }

    #[test]
    fn fetch_path_uses_l1i_and_l2() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        assert!(h.fetch(0x40_0000) > 0, "cold fetch stalls");
        assert_eq!(h.fetch(0x40_0000), 0, "warm fetch free");
        assert_eq!(h.l1i().misses(), 1);
    }

    #[test]
    fn store_miss_fetches_clean_l2_line() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        // Store misses allocate in both levels, but the L2 copy must
        // stay clean: evicting it from the L2 is not write-back traffic.
        h.data_access(0x5_0000, true);
        assert!(h.l2().probe(0x5_0000));
        // Blow the L2 with clean traffic so 0x5_0000 gets evicted
        // (8192 sets * 4 ways; stride one line over 5x capacity).
        for i in 0..(5 * 32 * 1024u64) {
            let _ = h.l2.access(0x100_0000 + i * 32, false);
        }
        assert!(!h.l2().probe(0x5_0000), "working set blew the L2");
        assert_eq!(h.l2().writebacks(), 0, "store-miss L2 lines are clean on allocate");
    }

    #[test]
    fn l1_dirty_victim_writes_back_into_l2() {
        // Tiny L1D (1 set, 1 way) over a small L2: a dirty L1 victim
        // must dirty the resident L2 copy, which then pays a write-back
        // when the L2 evicts it.
        let mut cfg = MachineConfig::table1_base();
        cfg.dcache = CacheConfig { size: 32, assoc: 1, line: 32, latency: 1 };
        cfg.l2 = CacheConfig { size: 64, assoc: 2, line: 32, latency: 10 };
        let mut h = MemoryHierarchy::new(&cfg);
        h.data_access(0x000, true); // L1 line dirty; L2 copy clean
        h.data_access(0x040, false); // evicts dirty 0x000 from L1 -> write-back dirties L2 copy
        assert_eq!(h.l1d().writebacks(), 1);
        assert_eq!(h.l2().writebacks(), 0, "write-back marks the L2 line, no eviction yet");
        h.data_access(0x080, false); // L2 set full: evicts LRU 0x000, now dirty
        assert_eq!(h.l2().writebacks(), 1, "L2 pays the write-back on eviction");
    }

    #[test]
    fn demand_access_resolves_before_prefetch() {
        // Regression for the prefetch-ordering bug: the demand line's
        // L2 lookup must happen before the next-line prefetch fill, or
        // the prefetch can evict the demand line (its set-mate in a
        // small L2) and turn a real L2 hit into a miss.
        let mut cfg = MachineConfig::table1_base();
        cfg.dcache = CacheConfig { size: 32, assoc: 1, line: 32, latency: 1 };
        cfg.l2 = CacheConfig { size: 64, assoc: 2, line: 32, latency: 10 };
        let mut h = MemoryHierarchy::new(&cfg);
        // Build the state with prefetch off so fills don't pollute it:
        // the single L2 set holds D = 0x00 (LRU) and E = 0x40 (recent),
        // and the 1-line L1 holds E, so a demand access to D L1-misses.
        h.data_access(0x00, false);
        h.data_access(0x40, false);
        h.reset_stats();
        h.prefetch = PrefetchPolicy::NextLine;
        // Demand access to D. The prefetch of D+line = 0x20 maps to the
        // same (only) L2 set; issued *before* the demand lookup it
        // would evict LRU D and turn this real L2 hit into a miss.
        let acc = h.data_access(0x00, false);
        assert!(!acc.l1_hit, "1-line L1 lost D to E");
        assert!(acc.l2_hit, "demand L2 lookup must precede the prefetch fill");
        assert!(h.l2().probe(0x00), "demand line resident after the access");
        assert_eq!(h.l2().hits(), 1);
        assert_eq!(h.l2().misses(), 0);
        assert_eq!(h.prefetches(), 1, "the prefetch still fired, after the demand path");
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::config::PrefetchPolicy;

    #[test]
    fn fill_does_not_count_stats() {
        let mut c = Cache::new(CacheConfig { size: 128, assoc: 2, line: 32, latency: 1 });
        c.fill(0x100);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.probe(0x100), "fill inserts the line");
    }

    #[test]
    fn next_line_prefetch_helps_sequential_streams() {
        let mut cfg = MachineConfig::table1_base();
        let mut plain = MemoryHierarchy::new(&cfg);
        cfg.prefetch = PrefetchPolicy::NextLine;
        let mut pf = MemoryHierarchy::new(&cfg);
        // Sequential line-granular stream over a fresh region.
        let (mut plain_lat, mut pf_lat) = (0u64, 0u64);
        for i in 0..4_096u64 {
            let addr = 0x900_0000 + i * 32;
            plain_lat += u64::from(plain.data_access(addr, false).latency);
            pf_lat += u64::from(pf.data_access(addr, false).latency);
        }
        assert!(pf.prefetches() > 1_000, "prefetches fired: {}", pf.prefetches());
        // The burst-mode memory model already discounts sequential
        // misses, so next-line prefetch saves "only" ~45 % more.
        assert!(
            (pf_lat as f64) < plain_lat as f64 * 0.7,
            "prefetching should cut stream latency >30 %: {pf_lat} vs {plain_lat}"
        );
    }

    #[test]
    fn prefetch_off_by_default_in_table1() {
        assert_eq!(MachineConfig::table1_base().prefetch, PrefetchPolicy::None);
        assert_eq!(MachineConfig::table1_sensitivity().prefetch, PrefetchPolicy::None);
    }
}
