//! Set-associative caches with true-LRU replacement, and the two-level
//! hierarchy of Table I.

use crate::config::{CacheConfig, MachineConfig, PrefetchPolicy};

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; it has been filled (allocate-on-miss). `victim_dirty`
    /// reports whether a dirty line was evicted (write-back traffic).
    Miss {
        /// Whether the evicted victim was dirty.
        victim_dirty: bool,
    },
}

impl Access {
    /// `true` for [`Access::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

/// A timing-only set-associative cache (tags + LRU stamps, no data),
/// write-back / write-allocate.
///
/// # Example
///
/// ```
/// use mlpa_sim::cache::Cache;
/// use mlpa_sim::config::CacheConfig;
///
/// let mut c = Cache::new(CacheConfig { size: 1024, assoc: 2, line: 32, latency: 1 });
/// assert!(!c.access(0x100, false).is_hit()); // cold miss
/// assert!(c.access(0x100, false).is_hit());  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    assoc: usize,
    line_shift: u32,
    /// Tag per line; `u64::MAX` = invalid. Indexed `set * assoc + way`.
    tags: Vec<u64>,
    /// LRU stamp per line (bigger = more recent).
    stamps: Vec<u64>,
    dirty: Vec<bool>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate().expect("invalid cache config");
        let sets = cfg.sets();
        let assoc = cfg.assoc as usize;
        let lines = (sets as usize) * assoc;
        Cache {
            cfg,
            sets,
            assoc,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access `addr`; `write` marks the line dirty. Misses allocate.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.tick += 1;
        let block = addr >> self.line_shift;
        let set = (block % self.sets) as usize;
        let tag = block / self.sets;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];

        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.hits += 1;
            self.stamps[base + w] = self.tick;
            if write {
                self.dirty[base + w] = true;
            }
            return Access::Hit;
        }

        self.misses += 1;
        // Choose LRU victim (invalid lines have stamp 0 and lose ties to
        // nothing — they are naturally least recent).
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            let s = if self.tags[base + w] == u64::MAX { 0 } else { self.stamps[base + w] };
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        let victim_dirty = self.dirty[base + victim] && self.tags[base + victim] != u64::MAX;
        if victim_dirty {
            self.writebacks += 1;
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        self.dirty[base + victim] = write;
        Access::Miss { victim_dirty }
    }

    /// Insert `addr`'s line without touching hit/miss statistics
    /// (prefetch fills and other non-demand traffic).
    pub fn fill(&mut self, addr: u64) {
        let (h, m, w) = (self.hits, self.misses, self.writebacks);
        let _ = self.access(addr, false);
        self.hits = h;
        self.misses = m;
        self.writebacks = w;
    }

    /// Whether `addr`'s line is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block % self.sets) as usize;
        let tag = block / self.sets;
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&tag)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Reset statistics but keep contents (used when a warmed cache
    /// starts a measured region).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Invalidate all contents and reset statistics.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.tick = 0;
        self.reset_stats();
    }
}

/// Latency outcome of a data access through L1 → L2 → memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Total latency in cycles.
    pub latency: u32,
    /// Hit in the L1?
    pub l1_hit: bool,
    /// Hit in the L2 (only meaningful when `l1_hit` is false)?
    pub l2_hit: bool,
}

/// The data-side memory hierarchy: L1D, unified L2, memory.
///
/// The instruction side shares the L2: [`MemoryHierarchy::fetch`] runs
/// I-cache accesses through the same L2.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    mem_first: u32,
    mem_next: u32,
    last_mem_block: u64,
    prefetch: PrefetchPolicy,
    prefetches: u64,
}

impl MemoryHierarchy {
    /// Build the hierarchy for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if any cache configuration is invalid.
    pub fn new(cfg: &MachineConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1d: Cache::new(cfg.dcache),
            l1i: Cache::new(cfg.icache),
            l2: Cache::new(cfg.l2),
            mem_first: cfg.mem_latency_first,
            mem_next: cfg.mem_latency_next,
            last_mem_block: u64::MAX,
            prefetch: cfg.prefetch,
            prefetches: 0,
        }
    }

    /// Prefetch fills issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    fn mem_latency(&mut self, addr: u64) -> u32 {
        // SimpleScalar-style first/next latency: sequential-block bursts
        // pay the cheaper "following" latency.
        let block = addr >> 10;
        let lat = if block == self.last_mem_block || block == self.last_mem_block.wrapping_add(1) {
            self.mem_next
        } else {
            self.mem_first
        };
        self.last_mem_block = block;
        lat
    }

    /// A data access (load or store) at `addr`.
    pub fn data_access(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        let l1 = self.l1d.access(addr, write);
        if !l1.is_hit() && self.prefetch == PrefetchPolicy::NextLine {
            // Idealised next-line prefetch: fill addr+line into L1 and
            // L2 off the critical path.
            let next = addr + self.l1d.config().line;
            self.l1d.fill(next);
            self.l2.fill(next);
            self.prefetches += 1;
        }
        if l1.is_hit() {
            return HierarchyAccess {
                latency: self.l1d.config().latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2 = self.l2.access(addr, write);
        if l2.is_hit() {
            return HierarchyAccess {
                latency: self.l1d.config().latency + self.l2.config().latency,
                l1_hit: false,
                l2_hit: true,
            };
        }
        let lat = self.l1d.config().latency + self.l2.config().latency + self.mem_latency(addr);
        HierarchyAccess { latency: lat, l1_hit: false, l2_hit: false }
    }

    /// An instruction fetch at `addr`; returns the added stall cycles
    /// beyond the pipelined L1I hit path (0 on a hit).
    pub fn fetch(&mut self, addr: u64) -> u32 {
        if self.l1i.access(addr, false).is_hit() {
            return 0;
        }
        if self.l2.access(addr, false).is_hit() {
            return self.l2.config().latency;
        }
        self.l2.config().latency + self.mem_latency(addr)
    }

    /// Touch the hierarchy without timing (functional warming).
    pub fn warm_data(&mut self, addr: u64, write: bool) {
        let _ = self.data_access(addr, write);
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Reset statistics on all levels, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
    }

    /// Invalidate everything (cold start).
    pub fn clear(&mut self) {
        self.l1d.clear();
        self.l1i.clear();
        self.l2.clear();
        self.last_mem_block = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets, 2 ways, 32-byte lines.
        Cache::new(CacheConfig { size: 128, assoc: 2, line: 32, latency: 1 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x0, false).is_hit());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x1f, false).is_hit(), "same line");
        assert!(!c.access(0x20, false).is_hit(), "next line, other set");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines whose block index is even (2 sets).
        let a = 0x000; // set 0
        let b = 0x040; // set 0
        let d = 0x080; // set 0
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x040, false);
        c.access(0x080, false); // evicts dirty 0x000
        assert_eq!(c.writebacks(), 1);
        let miss = c.access(0x0c0, false); // evicts clean 0x040
        assert_eq!(miss, Access::Miss { victim_dirty: false });
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clear_and_reset_stats() {
        let mut c = small();
        c.access(0x0, true);
        c.reset_stats();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.probe(0x0), "reset_stats keeps contents");
        c.clear();
        assert!(!c.probe(0x0), "clear invalidates");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig { size: 64, assoc: 1, line: 32, latency: 1 });
        // Two lines mapping to set 0 (2 sets: block even -> set 0).
        assert!(!c.access(0x00, false).is_hit());
        assert!(!c.access(0x40, false).is_hit());
        assert!(!c.access(0x00, false).is_hit(), "conflict evicted it");
    }

    #[test]
    fn hierarchy_latencies_escalate() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        let miss = h.data_access(0x1_0000, false);
        assert!(!miss.l1_hit && !miss.l2_hit);
        assert!(miss.latency >= 150, "memory miss pays DRAM latency, got {}", miss.latency);
        let hit = h.data_access(0x1_0000, false);
        assert!(hit.l1_hit);
        assert_eq!(hit.latency, cfg.dcache.latency);
    }

    #[test]
    fn l2_hit_latency_between() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        // Fill enough distinct lines to blow L1 (16 k / 32 B = 512 lines)
        // but stay within L2.
        for i in 0..2048u64 {
            h.warm_data(0x10_0000 + i * 32, false);
        }
        // Re-access an early line: should be L2 hit, L1 miss.
        let acc = h.data_access(0x10_0000, false);
        assert!(!acc.l1_hit && acc.l2_hit, "{acc:?}");
        assert_eq!(acc.latency, cfg.dcache.latency + cfg.l2.latency);
    }

    #[test]
    fn burst_memory_latency_cheaper() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        let first = h.data_access(0x400_0000, false).latency;
        let next = h.data_access(0x400_0040, false).latency; // same 1 KiB block
        assert!(next < first, "burst access {next} should beat first {first}");
    }

    #[test]
    fn fetch_path_uses_l1i_and_l2() {
        let cfg = MachineConfig::table1_base();
        let mut h = MemoryHierarchy::new(&cfg);
        assert!(h.fetch(0x40_0000) > 0, "cold fetch stalls");
        assert_eq!(h.fetch(0x40_0000), 0, "warm fetch free");
        assert_eq!(h.l1i().misses(), 1);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::config::PrefetchPolicy;

    #[test]
    fn fill_does_not_count_stats() {
        let mut c = Cache::new(CacheConfig { size: 128, assoc: 2, line: 32, latency: 1 });
        c.fill(0x100);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.probe(0x100), "fill inserts the line");
    }

    #[test]
    fn next_line_prefetch_helps_sequential_streams() {
        let mut cfg = MachineConfig::table1_base();
        let mut plain = MemoryHierarchy::new(&cfg);
        cfg.prefetch = PrefetchPolicy::NextLine;
        let mut pf = MemoryHierarchy::new(&cfg);
        // Sequential line-granular stream over a fresh region.
        let (mut plain_lat, mut pf_lat) = (0u64, 0u64);
        for i in 0..4_096u64 {
            let addr = 0x900_0000 + i * 32;
            plain_lat += u64::from(plain.data_access(addr, false).latency);
            pf_lat += u64::from(pf.data_access(addr, false).latency);
        }
        assert!(pf.prefetches() > 1_000, "prefetches fired: {}", pf.prefetches());
        // The burst-mode memory model already discounts sequential
        // misses, so next-line prefetch saves "only" ~45 % more.
        assert!(
            (pf_lat as f64) < plain_lat as f64 * 0.7,
            "prefetching should cut stream latency >30 %: {pf_lat} vs {plain_lat}"
        );
    }

    #[test]
    fn prefetch_off_by_default_in_table1() {
        assert_eq!(MachineConfig::table1_base().prefetch, PrefetchPolicy::None);
        assert_eq!(MachineConfig::table1_sensitivity().prefetch, PrefetchPolicy::None);
    }
}
