//! The functional simulator: executes a trace at maximum speed, firing
//! observer callbacks, optionally warming the memory hierarchy and
//! branch predictor.
//!
//! This is the `sim-fast` analogue. Sampling simulation spends the bulk
//! of its wall clock here — fast-forwarding to simulation points — so
//! the hot loop does nothing but pull blocks and notify observers.

use crate::branch::BranchUnit;
use crate::cache::MemoryHierarchy;
use mlpa_isa::stream::InstructionStream;
use mlpa_isa::{BlockId, Instruction, Program};

/// Receives the trace as the functional simulator executes it.
///
/// Profilers (BBV collectors, loop detectors) implement this; they are
/// composable via tuples.
pub trait Observer {
    /// Called once per dynamic basic block. `first_inst_index` is the
    /// number of instructions executed before this block.
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], first_inst_index: u64);
}

/// The no-op observer.
impl Observer for () {
    fn on_block(&mut self, _: BlockId, _: &[Instruction], _: u64) {}
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], first: u64) {
        self.0.on_block(id, insts, first);
        self.1.on_block(id, insts, first);
    }
}

impl<T: Observer + ?Sized> Observer for &mut T {
    fn on_block(&mut self, id: BlockId, insts: &[Instruction], first: u64) {
        (**self).on_block(id, insts, first);
    }
}

/// Warming policy during functional execution / fast-forward.
///
/// The paper's SimPoint baseline fast-forwards *cold* (SimpleScalar's
/// `-fastfwd` does not touch caches), which is precisely why short
/// simulation points show large L2 deviations in its Table II. `Warm`
/// models checkpoint-style functional warming as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Warming {
    /// Do not touch microarchitectural state (SimpleScalar `-fastfwd`).
    #[default]
    None,
    /// Update caches and branch predictor functionally while skipping.
    Warm,
}

/// Outcome of a functional run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionalStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Dynamic basic blocks executed.
    pub blocks: u64,
}

/// The functional simulator.
///
/// # Example
///
/// ```
/// use mlpa_sim::functional::{FunctionalSim, Warming};
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut sim = FunctionalSim::new(cb.program());
/// let stats = sim.run(WorkloadStream::new(&cb), &mut ());
/// assert!(stats.instructions > 0);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct FunctionalSim<'p> {
    program: &'p Program,
    executed: u64,
    blocks: u64,
}

impl<'p> FunctionalSim<'p> {
    /// Create a functional simulator for `program`.
    pub fn new(program: &'p Program) -> FunctionalSim<'p> {
        FunctionalSim { program, executed: 0, blocks: 0 }
    }

    /// The static program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Instructions executed so far across all runs.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Execute the stream to completion, notifying `obs` per block.
    pub fn run<S, O>(&mut self, mut stream: S, obs: &mut O) -> FunctionalStats
    where
        S: InstructionStream,
        O: Observer,
    {
        let mut buf = Vec::with_capacity(64);
        let mut stats = FunctionalStats::default();
        while let Some(id) = stream.next_block(&mut buf) {
            obs.on_block(id, &buf, self.executed);
            self.executed += buf.len() as u64;
            self.blocks += 1;
            stats.instructions += buf.len() as u64;
            stats.blocks += 1;
        }
        if mlpa_obs::is_enabled() {
            mlpa_obs::add("sim.functional.instructions", stats.instructions);
            mlpa_obs::add("sim.functional.blocks", stats.blocks);
        }
        stats
    }

    /// Execute until at least `count` further instructions have run
    /// (block granularity — stops at the first block boundary at or
    /// past the target), notifying `obs`, optionally warming `warm_state`.
    ///
    /// Returns the instructions actually skipped; fewer than `count`
    /// only if the stream ended.
    pub fn fast_forward<S, O>(
        &mut self,
        stream: &mut S,
        count: u64,
        obs: &mut O,
        warming: Warming,
        warm_state: Option<(&mut MemoryHierarchy, &mut BranchUnit)>,
    ) -> u64
    where
        S: InstructionStream,
        O: Observer,
    {
        let mut buf = Vec::with_capacity(64);
        let mut skipped = 0u64;
        let mut warm = warm_state;
        while skipped < count {
            let Some(id) = stream.next_block(&mut buf) else { break };
            obs.on_block(id, &buf, self.executed);
            if warming == Warming::Warm {
                if let Some((hier, bu)) = warm.as_mut() {
                    let block = self.program.block(id);
                    // Touch the I-cache line(s) of the block.
                    let mut line = block.addr & !(hier.l1i().config().line - 1);
                    while line < block.end_addr() {
                        let _ = hier.fetch(line);
                        line += hier.l1i().config().line;
                    }
                    for (i, inst) in buf.iter().enumerate() {
                        if inst.is_mem() {
                            hier.warm_data(inst.addr, inst.op == mlpa_isa::OpClass::Store);
                        }
                        if let Some(info) = &inst.branch {
                            let pc = block.inst_addr(i as u32);
                            let fallthrough = BlockId::new(id.raw().saturating_add(1));
                            bu.warm(pc, info, if info.taken { info.target } else { fallthrough });
                        }
                    }
                }
            }
            self.executed += buf.len() as u64;
            self.blocks += 1;
            skipped += buf.len() as u64;
        }
        if mlpa_obs::is_enabled() {
            mlpa_obs::add("sim.functional.instructions", skipped);
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};

    struct CountingObserver {
        blocks: u64,
        insts: u64,
        last_first: u64,
        monotone: bool,
    }

    impl Observer for CountingObserver {
        fn on_block(&mut self, _id: BlockId, insts: &[Instruction], first: u64) {
            self.monotone &= first >= self.last_first;
            self.last_first = first;
            assert_eq!(first, self.insts, "first_inst_index must equal prior total");
            self.blocks += 1;
            self.insts += insts.len() as u64;
        }
    }

    fn compiled() -> CompiledBenchmark {
        CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap()
    }

    #[test]
    fn run_notifies_every_block_in_order() {
        let cb = compiled();
        let mut sim = FunctionalSim::new(cb.program());
        let mut obs = CountingObserver { blocks: 0, insts: 0, last_first: 0, monotone: true };
        let stats = sim.run(WorkloadStream::new(&cb), &mut obs);
        assert_eq!(stats.blocks, obs.blocks);
        assert_eq!(stats.instructions, obs.insts);
        assert!(obs.monotone);
        assert_eq!(sim.executed(), stats.instructions);
    }

    #[test]
    fn fast_forward_stops_at_block_boundary() {
        let cb = compiled();
        let mut sim = FunctionalSim::new(cb.program());
        let mut stream = WorkloadStream::new(&cb);
        let skipped = sim.fast_forward(&mut stream, 5_000, &mut (), Warming::None, None);
        assert!(skipped >= 5_000);
        assert!(skipped < 5_000 + 64, "overshoot bounded by one block");
    }

    #[test]
    fn fast_forward_past_end_reports_shortfall() {
        let cb = compiled();
        let total = {
            let mut s = FunctionalSim::new(cb.program());
            s.run(WorkloadStream::new(&cb), &mut ()).instructions
        };
        let mut sim = FunctionalSim::new(cb.program());
        let mut stream = WorkloadStream::new(&cb);
        let skipped =
            sim.fast_forward(&mut stream, total + 1_000_000, &mut (), Warming::None, None);
        assert_eq!(skipped, total);
    }

    #[test]
    fn warming_populates_caches_and_predictor() {
        let cb = compiled();
        let cfg = MachineConfig::table1_base();
        let mut hier = MemoryHierarchy::new(&cfg);
        let mut bu = BranchUnit::new(&cfg.predictor);
        let mut sim = FunctionalSim::new(cb.program());
        let mut stream = WorkloadStream::new(&cb);
        sim.fast_forward(&mut stream, 50_000, &mut (), Warming::Warm, Some((&mut hier, &mut bu)));
        assert!(hier.l1d().hits() + hier.l1d().misses() > 0, "dcache touched");
        assert!(hier.l1i().hits() + hier.l1i().misses() > 0, "icache touched");
        assert_eq!(bu.predictions(), 0, "warming must not count stats");
    }

    #[test]
    fn cold_fast_forward_leaves_state_untouched() {
        let cb = compiled();
        let cfg = MachineConfig::table1_base();
        let mut hier = MemoryHierarchy::new(&cfg);
        let mut bu = BranchUnit::new(&cfg.predictor);
        let mut sim = FunctionalSim::new(cb.program());
        let mut stream = WorkloadStream::new(&cb);
        sim.fast_forward(&mut stream, 10_000, &mut (), Warming::None, Some((&mut hier, &mut bu)));
        assert_eq!(hier.l1d().hits() + hier.l1d().misses(), 0);
        assert_eq!(bu.predictions(), 0);
    }

    #[test]
    fn tuple_observers_compose() {
        let cb = compiled();
        let mut sim = FunctionalSim::new(cb.program());
        let mut a = CountingObserver { blocks: 0, insts: 0, last_first: 0, monotone: true };
        let mut b = CountingObserver { blocks: 0, insts: 0, last_first: 0, monotone: true };
        let mut pair = (&mut a, &mut b);
        sim.run(WorkloadStream::new(&cb), &mut pair);
        assert_eq!(a.blocks, b.blocks);
        assert!(a.blocks > 0);
    }
}
