//! The detailed cycle-level out-of-order simulator (the `sim-outorder`
//! analogue).
//!
//! The model is a trace-driven *timestamp-propagation* out-of-order
//! core: instructions are processed in program order, and for each one
//! the simulator computes the cycle it is fetched, dispatched, issued,
//! completed, and committed, subject to
//!
//! * fetch bandwidth and I-cache stalls,
//! * front-end depth and branch-misprediction redirects,
//! * ROB and LSQ occupancy (entry *i* cannot dispatch until entry
//!   *i − capacity* commits),
//! * register data dependences (ready-time propagation through the
//!   architectural register file),
//! * functional-unit pool contention (per-class busy-until tracking,
//!   unpipelined divides),
//! * D-cache/L2/memory latency for loads, and
//! * in-order commit at the configured width.
//!
//! This is the standard way to get cycle-level fidelity at trace speed;
//! it reproduces the microarchitectural sensitivities the sampling
//! methodology measures (CPI, cache hit rates, branch behaviour) while
//! staying fast enough to ground-truth whole benchmarks.
//!
//! # Kernel layout
//!
//! The per-instruction loop is written as a flat branch-light kernel
//! (see DESIGN.md "Detailed-sim kernel layout"): ROB/LSQ occupancy
//! rings are power-of-two sized and indexed by absolute instruction
//! counters with mask wraparound, functional-unit pools are fixed
//! arrays scanned argmin-replace with a fixed trip count, the register scoreboard
//! has a sentinel lane so operand reads skip `is_some()` tests, and the
//! per-block invariants (config fields, I-line mask, incremented PC)
//! live in locals. The naive formulation is retained in
//! [`crate::reference`] and property tests pin this implementation
//! byte-identical to it.

use crate::branch::BranchUnit;
use crate::cache::{HierarchyAccess, MemoryHierarchy};
use crate::config::{FuConfig, MachineConfig};
use crate::metrics::SimMetrics;
use mlpa_isa::program::INST_BYTES;
use mlpa_isa::stream::InstructionStream;
use mlpa_isa::{BlockId, FuClass, OpClass, Program, Reg};

/// Slots per pool: up to [`FuConfig::MAX_UNITS`] real units.
const POOL_SLOTS: usize = FuConfig::MAX_UNITS as usize;

/// Per-class functional-unit pools tracking when each unit frees up.
///
/// Each pool is a fixed *unsorted* array of keys packing
/// `busy_until << 6 | slot`, padded with `u64::MAX` past the real
/// units. Only the *multiset* of real busy-until times is observable
/// through [`FuPools::issue`] (the issue cycle depends on the pool
/// minimum alone, and allocating replaces one instance of that minimum
/// — a unit is picked by its free time, never by identity), so an
/// argmin-replace is exactly equivalent to the reference's linear
/// earliest-free scan, and padding slots can never win the argmin.
/// Keys are stored pre-packed because the argmin runs every
/// instruction while each slot is written at most once per instruction
/// — packing at scan time re-paid the shift/or per slot per scan.
/// Every class scans the same `scan` slots (the largest pool's unit
/// count), so the scan's trip count never changes between issues and
/// its loop branch stays perfectly predicted — both a sorted-insertion
/// scheme and per-class trip counts were tried first and mispredicted
/// on nearly every issue (see DESIGN.md).
#[derive(Debug, Clone)]
struct FuPools {
    /// `keys[class][..scan]` — unsorted `busy_until << 6 | slot` keys,
    /// `u64::MAX` padding beyond the class's real unit count.
    keys: [[u64; POOL_SLOTS]; 5],
    /// Uniform scan width: `max` over the per-class unit counts.
    scan: usize,
}

impl FuPools {
    fn new(cfg: &MachineConfig) -> FuPools {
        let lens = [
            cfg.fu.int_alu as usize,
            cfg.fu.int_muldiv as usize,
            cfg.fu.fp_add as usize,
            cfg.fu.fp_muldiv as usize,
            cfg.fu.load_store as usize,
        ];
        let mut keys = [[u64::MAX; POOL_SLOTS]; 5];
        for (pool, &n) in keys.iter_mut().zip(&lens) {
            for (i, k) in pool[..n].iter_mut().enumerate() {
                *k = i as u64; // busy-until 0, packed with the slot index
            }
        }
        FuPools { keys, scan: lens.into_iter().max().unwrap_or(1) }
    }

    fn class_index(class: FuClass) -> usize {
        match class {
            FuClass::IntAlu => 0,
            FuClass::IntMulDiv => 1,
            FuClass::FpAdd => 2,
            FuClass::FpMulDiv => 3,
            FuClass::LoadStore => 4,
        }
    }

    /// Allocate a unit of `class` no earlier than `ready`; returns the
    /// actual issue cycle. Pipelined ops occupy the unit one cycle;
    /// unpipelined ops occupy it for their full latency.
    #[inline]
    fn issue(&mut self, class: FuClass, ready: u64, occupy: u64) -> u64 {
        let c = Self::class_index(class);
        let pool = &mut self.keys[c];
        // First-strict-min argmin over the packed keys: a
        // single-variable min compiles to conditional moves (a
        // two-variable value+index argmin compiles to a data-dependent
        // branch that mispredicts on nearly every issue), and on equal
        // times the lower slot wins, exactly like a strict-`<` scan.
        // Cycle counts stay far below 2^58, so the shift cannot wrap,
        // and `u64::MAX` padding keys stay above every real key.
        //
        // Pools of ≤ 8 units (every realistic machine) reduce through a
        // fixed depth-3 min tree: a rolled loop is a loop-carried
        // dependence chain that serialises the whole simulator (the
        // IntAlu pool sits on the critical path of most instructions),
        // while the tree costs ~3 dependent min steps. The `scan == 8`
        // test is constant per machine, so the branch never mispredicts.
        let key = if self.scan <= 8 {
            let a = pool[0].min(pool[1]);
            let b = pool[2].min(pool[3]);
            let c2 = pool[4].min(pool[5]);
            let d = pool[6].min(pool[7]);
            a.min(b).min(c2.min(d))
        } else {
            let mut key = pool[0];
            for &k in pool.iter().take(self.scan).skip(1) {
                key = key.min(k);
            }
            key
        };
        let slot = key & 63;
        let start = ready.max(key >> 6);
        pool[slot as usize] = (start + occupy) << 6 | slot;
        start
    }
}

/// The detailed simulator. Owns the microarchitectural state (caches,
/// predictor) so that runs can be chained warm or started cold.
///
/// # Example
///
/// ```
/// use mlpa_sim::{DetailedSim, MachineConfig};
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut sim = DetailedSim::new(MachineConfig::table1_base(), cb.program());
/// let m = sim.simulate(&mut WorkloadStream::new(&cb), 20_000);
/// assert!(m.cycles > 0);
/// assert!(m.cpi() > 0.125, "cannot beat the 8-wide commit bound");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct DetailedSim<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    hier: MemoryHierarchy,
    branch: BranchUnit,
    fu: FuPools,
    /// Register scoreboard indexed by [`Reg::lane`]: lanes 0..64 are the
    /// architectural files, lane 255 is the `Reg::NONE` sentinel and is
    /// pinned at 0 so operand reads and destination writes need no
    /// `is_some()` branch.
    reg_ready: [u64; 256],
    /// Commit-cycle ring for ROB occupancy: power-of-two capacity,
    /// indexed by the absolute instruction counter masked down. Entry
    /// `k mod P` holds the commit cycle of instruction `k`; instruction
    /// `k` stalls dispatch on the commit of instruction `k − rob_cap`.
    rob_ring: Vec<u64>,
    rob_mask: u64,
    /// Architectural ROB capacity (≤ ring length).
    rob_cap: u64,
    /// Commit-cycle ring for LSQ occupancy (memory ops only).
    lsq_ring: Vec<u64>,
    lsq_mask: u64,
    lsq_cap: u64,
    /// Instructions ever run through this simulator (ring cursor).
    insts_seen: u64,
    /// Memory instructions ever run (LSQ ring cursor).
    mems_seen: u64,
    fetch_cycle: u64,
    fetch_in_cycle: u32,
    last_commit_cycle: u64,
    commits_in_cycle: u32,
    redirect_at: u64,
    /// Last I-cache line fetched (to charge each line once).
    last_fetch_line: u64,
    /// `!(icache.line - 1)`, hoisted out of the fetch path.
    line_mask: u64,
}

impl<'p> DetailedSim<'p> {
    /// Create a cold simulator for `program` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MachineConfig::validate`]).
    pub fn new(cfg: MachineConfig, program: &'p Program) -> DetailedSim<'p> {
        cfg.validate().expect("invalid machine config");
        DetailedSim {
            hier: MemoryHierarchy::new(&cfg),
            branch: BranchUnit::new(&cfg.predictor),
            fu: FuPools::new(&cfg),
            reg_ready: [0; 256],
            rob_ring: vec![0; (cfg.rob_entries as usize).next_power_of_two()],
            rob_mask: (cfg.rob_entries as u64).next_power_of_two() - 1,
            rob_cap: u64::from(cfg.rob_entries),
            lsq_ring: vec![0; (cfg.lsq_entries as usize).next_power_of_two()],
            lsq_mask: (cfg.lsq_entries as u64).next_power_of_two() - 1,
            lsq_cap: u64::from(cfg.lsq_entries),
            insts_seen: 0,
            mems_seen: 0,
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            last_commit_cycle: 0,
            commits_in_cycle: 0,
            redirect_at: 0,
            last_fetch_line: u64::MAX,
            line_mask: !(cfg.icache.line - 1),
            cfg,
            program,
        }
    }

    /// Create a simulator whose caches and branch predictor start from
    /// an existing functional-warming checkpoint instead of cold. The
    /// timing state (pipeline occupancy, cycle counters) starts cold and
    /// the first [`DetailedSim::simulate`] call zeroes the inherited
    /// statistics, so only the *contents* of the warm state carry over.
    ///
    /// This is how independent workers replicate the persistent-simulator
    /// warm path: each warms a private `MemoryHierarchy`/`BranchUnit`
    /// over its point's prefix and installs it here.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MachineConfig::validate`]).
    pub fn with_warm_state(
        cfg: MachineConfig,
        program: &'p Program,
        hier: MemoryHierarchy,
        branch: BranchUnit,
    ) -> DetailedSim<'p> {
        let mut sim = DetailedSim::new(cfg, program);
        sim.hier = hier;
        sim.branch = branch;
        sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable access to the memory hierarchy (e.g. to warm it before a
    /// measured region).
    pub fn hierarchy_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.hier
    }

    /// Mutable access to the branch unit.
    pub fn branch_unit_mut(&mut self) -> &mut BranchUnit {
        &mut self.branch
    }

    /// Simultaneous mutable access to the hierarchy and branch unit —
    /// the pair functional warming updates during fast-forward.
    pub fn warm_state_mut(&mut self) -> (&mut MemoryHierarchy, &mut BranchUnit) {
        (&mut self.hier, &mut self.branch)
    }

    /// Simulate up to `limit` instructions from `stream` (to the block
    /// boundary at or past `limit`), returning the metrics of exactly
    /// this region. Microarchitectural state persists across calls;
    /// statistics do not.
    pub fn simulate<S: InstructionStream>(&mut self, stream: &mut S, limit: u64) -> SimMetrics {
        let _span = mlpa_obs::span("sim.detailed");
        self.hier.reset_stats();
        self.branch.reset_stats();
        let start_cycle = self.last_commit_cycle;
        let mut m = SimMetrics::default();
        let mut buf = Vec::with_capacity(64);
        let mut tally = ObsTally::default();
        // One enablement load per region: every per-instruction obs site
        // below branches on this register-resident local. With the obs
        // feature compiled out it is a constant `false` and the sites
        // (and `tally`) fold away entirely.
        let obs = mlpa_obs::is_enabled();

        while m.instructions < limit {
            let Some(id) = stream.next_block(&mut buf) else { break };
            self.run_block(id, &buf, &mut m, &mut tally, obs);
        }

        m.cycles = self.last_commit_cycle.saturating_sub(start_cycle).max(
            // At least one cycle per non-empty region.
            u64::from(m.instructions > 0),
        );
        m.l1d_hits = self.hier.l1d().hits();
        m.l1d_misses = self.hier.l1d().misses();
        m.l1i_hits = self.hier.l1i().hits();
        m.l1i_misses = self.hier.l1i().misses();
        m.l2_hits = self.hier.l2().hits();
        m.l2_misses = self.hier.l2().misses();
        m.branches = self.branch.predictions();
        m.mispredicts = self.branch.mispredictions();
        if obs {
            tally.finish_runs();
            mlpa_obs::add("sim.instructions", m.instructions);
            mlpa_obs::add("sim.cycles", m.cycles);
            mlpa_obs::add("sim.l1d.hits", m.l1d_hits);
            mlpa_obs::add("sim.l1d.misses", m.l1d_misses);
            mlpa_obs::add("sim.l1i.hits", m.l1i_hits);
            mlpa_obs::add("sim.l1i.misses", m.l1i_misses);
            mlpa_obs::add("sim.l2.hits", m.l2_hits);
            mlpa_obs::add("sim.l2.misses", m.l2_misses);
            mlpa_obs::add("sim.branches", m.branches);
            mlpa_obs::add("sim.mispredicts", m.mispredicts);
            mlpa_obs::add("sim.loads", m.loads);
            mlpa_obs::add("sim.stores", m.stores);
            mlpa_obs::add("sim.rob.samples", tally.samples);
            mlpa_obs::add("sim.rob.occupancy_sum", tally.rob_occupancy);
            mlpa_obs::add("sim.lsq.occupancy_sum", tally.lsq_occupancy);
            // Warmup-bias counters: misses concentrated in the first
            // 8192-instruction window of each detailed region measure
            // how much cold/warm start state skews short samples.
            mlpa_obs::add("sim.warmup.windows", tally.warmup_windows);
            mlpa_obs::add("sim.warmup.early_insts", tally.warmup_windows * 8192);
            mlpa_obs::add("sim.warmup.early_l1d_misses", tally.warmup_l1d_misses);
            mlpa_obs::add("sim.warmup.early_l2_misses", tally.warmup_l2_misses);
            mlpa_obs::hist_merge("sim.rob.occupancy", "n", &tally.rob);
            mlpa_obs::hist_merge("sim.lsq.occupancy", "n", &tally.lsq);
            mlpa_obs::hist_merge("sim.l1d.miss_run", "n", &tally.l1d_runs);
            mlpa_obs::hist_merge("sim.l2.miss_run", "n", &tally.l2_runs);
            // Live gauges for the telemetry sampler: the most recent
            // occupancy samples and this region's L1D hit rate (in
            // basis points, since gauges are integers). Regions too
            // short to sample occupancy leave the gauges untouched.
            if tally.samples > 0 {
                mlpa_obs::gauge_set("sim.rob.occupancy", tally.rob_last);
                mlpa_obs::gauge_set("sim.lsq.occupancy", tally.lsq_last);
            }
            if let Some(rate_bp) = (m.l1d_hits * 10_000).checked_div(m.l1d_hits + m.l1d_misses) {
                mlpa_obs::gauge_set("sim.l1d.hit_rate_bp", rate_bp);
            }
        }
        m
    }

    /// Count how many of the last `min(cap, seen)` ring entries commit
    /// beyond `now` — the occupancy the reference measures by scanning
    /// its whole `cap`-long ring (whose never-written slots hold 0 and
    /// can never exceed `now`).
    fn in_flight(ring: &[u64], mask: u64, cap: u64, seen: u64, now: u64) -> u64 {
        (seen.saturating_sub(cap)..seen).filter(|&k| ring[(k & mask) as usize] > now).count() as u64
    }

    fn run_block(
        &mut self,
        id: BlockId,
        insts: &[mlpa_isa::Instruction],
        m: &mut SimMetrics,
        tally: &mut ObsTally,
        obs: bool,
    ) {
        let block = self.program.block(id);
        let fallthrough = BlockId::new(id.raw().saturating_add(1));
        // Per-block invariants and hot scalar state live in locals for
        // the duration of the loop; the state is written back below.
        let width = self.cfg.width;
        let frontend = u64::from(self.cfg.frontend_depth);
        let penalty = u64::from(self.cfg.predictor.mispredict_penalty);
        let line_mask = self.line_mask;
        let (rob_mask, rob_cap) = (self.rob_mask, self.rob_cap);
        let (lsq_mask, lsq_cap) = (self.lsq_mask, self.lsq_cap);
        let rob_ring = &mut self.rob_ring[..];
        let lsq_ring = &mut self.lsq_ring[..];
        let mut fetch_cycle = self.fetch_cycle;
        let mut fetch_in_cycle = self.fetch_in_cycle;
        let mut last_commit = self.last_commit_cycle;
        let mut commits_in_cycle = self.commits_in_cycle;
        let mut redirect_at = self.redirect_at;
        let mut last_fetch_line = self.last_fetch_line;
        let mut insts_seen = self.insts_seen;
        let mut mems_seen = self.mems_seen;

        let mut pc = block.addr;
        for inst in insts {
            // ---- Fetch ----
            if fetch_cycle < redirect_at {
                fetch_cycle = redirect_at;
                fetch_in_cycle = 0;
            }
            let line = pc & line_mask;
            if line != last_fetch_line {
                last_fetch_line = line;
                let stall = self.hier.fetch(line);
                if stall > 0 {
                    fetch_cycle += u64::from(stall);
                    fetch_in_cycle = 0;
                }
            }
            if fetch_in_cycle == width {
                fetch_cycle += 1;
                fetch_in_cycle = 0;
            }
            fetch_in_cycle += 1;

            // ---- Dispatch (ROB/LSQ occupancy) ----
            // Instruction k waits on the commit of instruction k − cap;
            // before the ring wraps once, that slot was never written
            // and holds the initial 0. The LSQ bound is selected
            // branchlessly (the ring read is always in bounds; non-mem
            // instructions select 0).
            let is_mem = inst.is_mem();
            let lsq_edge = lsq_ring[(mems_seen.wrapping_sub(lsq_cap) & lsq_mask) as usize];
            let dispatch = (fetch_cycle + frontend)
                .max(rob_ring[(insts_seen.wrapping_sub(rob_cap) & rob_mask) as usize])
                .max(u64::from(is_mem) * lsq_edge);

            // ---- Issue (dependences + FU) ----
            // Sentinel-lane scoreboard: absent operands read lane 255,
            // which is pinned at 0 and never raises the max.
            let ready = dispatch
                .max(self.reg_ready[inst.srcs[0].lane()])
                .max(self.reg_ready[inst.srcs[1].lane()]);
            let occupy = if inst.op.pipelined() { 1 } else { u64::from(inst.op.latency()) };
            let issue = self.fu.issue(inst.op.fu(), ready, occupy);

            // ---- Execute ----
            // One data-dependent branch (`is_mem`) covers both memory
            // ops: stores retire through the store buffer (the cache is
            // updated but its latency is off the critical path), so
            // `complete` only adds the access latency for loads. A
            // three-arm match here costs an extra mispredicting branch.
            let complete = if is_mem {
                let is_store = inst.op == OpClass::Store;
                m.loads += u64::from(!is_store);
                m.stores += u64::from(is_store);
                let acc = self.hier.data_access(inst.addr, is_store);
                if obs {
                    tally.data_access(acc);
                }
                issue + 1 + u64::from(!is_store) * u64::from(acc.latency)
            } else {
                issue + u64::from(inst.op.latency())
            };

            // Absent destinations write the sentinel lane, which is put
            // back to 0 immediately — no `is_some()` branch.
            self.reg_ready[inst.dst.lane()] = complete;
            self.reg_ready[Reg::NONE.lane()] = 0;

            // ---- Branch resolution ----
            if let Some(info) = &inst.branch {
                let correct = self.branch.resolve(pc, info, fallthrough);
                if !correct {
                    redirect_at = complete + penalty;
                }
            }

            // ---- Commit (in order, width-limited) ----
            // Branchless width accounting: with CPI well below 1 the
            // same-cycle test flips constantly and mispredicts as a
            // branch. `same` keeps counting in the current commit
            // cycle; `over` rolls into the next one. Equivalent to
            //   if same { if over { commit += 1; n = 1 } else { n += 1 } }
            //   else { n = 1 }
            let mut commit = (complete + 1).max(last_commit);
            let same = commit == last_commit;
            let over = same & (commits_in_cycle >= width);
            commit += u64::from(over);
            commits_in_cycle = 1 + u32::from(same & !over) * commits_in_cycle;
            last_commit = commit;

            rob_ring[(insts_seen & rob_mask) as usize] = commit;
            insts_seen = insts_seen.wrapping_add(1);
            if is_mem {
                lsq_ring[(mems_seen & lsq_mask) as usize] = commit;
                mems_seen = mems_seen.wrapping_add(1);
            }

            m.instructions += 1;
            // ROB/LSQ occupancy sampling every 8192 instructions: count
            // ring entries whose commit lies beyond this instruction's
            // dispatch cycle, i.e. how many older instructions were
            // still in flight when it entered the window. `obs` is a
            // register-resident local, so the check is branch-predicted
            // away; when the obs feature is compiled out it is a
            // constant `false` and the whole block (and `tally`) is
            // eliminated.
            if obs && m.instructions & 8191 == 0 {
                tally.samples += 1;
                let rob = Self::in_flight(rob_ring, rob_mask, rob_cap, insts_seen, dispatch);
                let lsq = Self::in_flight(lsq_ring, lsq_mask, lsq_cap, mems_seen, dispatch);
                tally.rob_occupancy += rob;
                tally.lsq_occupancy += lsq;
                tally.rob_last = rob;
                tally.lsq_last = lsq;
                tally.rob.record(rob);
                tally.lsq.record(lsq);
                if tally.samples == 1 {
                    // End of the first 8192-instruction window: the
                    // misses so far are the region's warmup bias.
                    tally.warmup_windows = 1;
                    tally.warmup_l1d_misses = self.hier.l1d().misses();
                    tally.warmup_l2_misses = self.hier.l2().misses();
                }
            }
            pc += INST_BYTES;
        }

        self.fetch_cycle = fetch_cycle;
        self.fetch_in_cycle = fetch_in_cycle;
        self.last_commit_cycle = last_commit;
        self.commits_in_cycle = commits_in_cycle;
        self.redirect_at = redirect_at;
        self.last_fetch_line = last_fetch_line;
        self.insts_seen = insts_seen;
        self.mems_seen = mems_seen;
    }
}

/// Per-`simulate` obs accumulator (occupancy samples, cache miss-run
/// lengths, warmup-bias miss counts), flushed to the obs counters and
/// histograms once at the end of the call. With the obs feature
/// compiled out the `HistTally` fields are zero-sized and every use is
/// behind a constant-false `is_enabled()`, so the whole struct folds
/// away.
#[derive(Debug, Default)]
struct ObsTally {
    samples: u64,
    rob_occupancy: u64,
    lsq_occupancy: u64,
    /// Most recent occupancy samples, flushed to the live gauges.
    rob_last: u64,
    lsq_last: u64,
    rob: mlpa_obs::HistTally,
    lsq: mlpa_obs::HistTally,
    /// Length of the in-progress consecutive L1D-miss run.
    l1d_run: u64,
    /// Length of the in-progress consecutive L2-miss run (counted over
    /// accesses that reach the L2, i.e. L1D misses).
    l2_run: u64,
    l1d_runs: mlpa_obs::HistTally,
    l2_runs: mlpa_obs::HistTally,
    warmup_windows: u64,
    warmup_l1d_misses: u64,
    warmup_l2_misses: u64,
}

impl ObsTally {
    /// Track consecutive-miss run lengths per level. A hit at a level
    /// closes that level's open run; L1 hits leave the L2 run untouched
    /// because the access never reached the L2.
    #[inline]
    fn data_access(&mut self, acc: HierarchyAccess) {
        if acc.l1_hit {
            if self.l1d_run > 0 {
                self.l1d_runs.record(self.l1d_run);
                self.l1d_run = 0;
            }
        } else {
            self.l1d_run += 1;
            if acc.l2_hit {
                if self.l2_run > 0 {
                    self.l2_runs.record(self.l2_run);
                    self.l2_run = 0;
                }
            } else {
                self.l2_run += 1;
            }
        }
    }

    /// Close any still-open miss runs at the end of the region so run
    /// totals cover every miss.
    fn finish_runs(&mut self) {
        if self.l1d_run > 0 {
            self.l1d_runs.record(self.l1d_run);
            self.l1d_run = 0;
        }
        if self.l2_run > 0 {
            self.l2_runs.record(self.l2_run);
            self.l2_run = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_isa::stream::SliceStream;
    use mlpa_isa::{BranchKind, Instruction, ProgramBuilder};
    use mlpa_workloads::behavior::{InstMix, MemoryPattern};
    use mlpa_workloads::spec::{BenchmarkSpec, BlockSpec, PhaseSpec, ScriptEntry};
    use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

    /// A one-block program plus a trace of `n` repetitions of `insts`.
    fn straightline(
        insts: Vec<Instruction>,
        n: usize,
    ) -> (mlpa_isa::Program, Vec<(BlockId, Vec<Instruction>)>) {
        let mut b = ProgramBuilder::new("t");
        let id = b.add_block(insts.len() as u32);
        let prog = b.finish();
        let mut block = insts;
        // Give the block a terminator pointing at itself.
        let last = block.len() - 1;
        block[last] = Instruction::branch(BranchKind::Conditional, Reg::int(1), true, id);
        let trace = vec![(id, block); n];
        (prog, trace)
    }

    fn independent_alu_block(len: usize) -> Vec<Instruction> {
        (0..len)
            .map(|i| {
                Instruction::alu(
                    OpClass::IntAlu,
                    Reg::int(8 + (i % 16) as u8),
                    [Reg::int(1), Reg::int(2)],
                )
            })
            .collect()
    }

    #[test]
    fn wide_machine_reaches_high_ipc_on_independent_work() {
        let (prog, trace) = straightline(independent_alu_block(16), 500);
        let mut sim = DetailedSim::new(MachineConfig::table1_base(), &prog);
        let m = sim.simulate(&mut SliceStream::new(&trace), u64::MAX);
        assert_eq!(m.instructions, 16 * 500);
        let ipc = m.ipc();
        assert!(ipc > 3.0, "independent ALU work should flow wide, IPC {ipc:.2}");
        assert!(m.cpi() >= 1.0 / 8.0, "cannot exceed commit width");
    }

    #[test]
    fn dependence_chain_serialises() {
        // Each instruction depends on the previous one's result.
        let chain: Vec<Instruction> = (0..16)
            .map(|_| Instruction::alu(OpClass::IntAlu, Reg::int(8), [Reg::int(8), Reg::int(1)]))
            .collect();
        let (prog, trace) = straightline(chain, 500);
        let mut sim = DetailedSim::new(MachineConfig::table1_base(), &prog);
        let m = sim.simulate(&mut SliceStream::new(&trace), u64::MAX);
        assert!(m.cpi() > 0.9, "serial chain should run near 1 CPI, got {:.2}", m.cpi());
    }

    #[test]
    fn long_latency_divides_throttle_throughput() {
        let divs: Vec<Instruction> = (0..8)
            .map(|i| {
                Instruction::alu(OpClass::IntDiv, Reg::int(8 + i as u8), [Reg::int(1), Reg::int(2)])
            })
            .collect();
        let (prog, trace) = straightline(divs, 200);
        let mut sim = DetailedSim::new(MachineConfig::table1_base(), &prog);
        let m = sim.simulate(&mut SliceStream::new(&trace), u64::MAX);
        // 2 unpipelined dividers, 20-cycle latency: ≥ ~10 cycles/div.
        assert!(m.cpi() > 5.0, "unpipelined divides must dominate, CPI {:.2}", m.cpi());
    }

    #[test]
    fn cache_misses_raise_cpi() {
        // Pseudo-random dependent loads confined to a working set; the
        // address sequence differs per dynamic block so a too-large set
        // keeps missing.
        let mk = |ws: u64, n: usize| {
            let mut b = ProgramBuilder::new("t");
            let id = b.add_block(17);
            let prog = b.finish();
            let mut x = 0x9E37_79B9u64;
            let trace: Vec<(BlockId, Vec<Instruction>)> = (0..n)
                .map(|_| {
                    let mut insts: Vec<Instruction> = (0..16)
                        .map(|_| {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            Instruction::load(
                                Reg::int(8),
                                Reg::int(8),
                                (0x1000_0000 + (x % ws)) & !7,
                            )
                        })
                        .collect();
                    insts.push(Instruction::branch(BranchKind::Conditional, Reg::int(1), true, id));
                    (id, insts)
                })
                .collect();
            (prog, trace)
        };
        let (prog_a, trace_a) = mk(8 * 1024, 300);
        let (prog_b, trace_b) = mk(64 << 20, 300);
        let mut sim_a = DetailedSim::new(MachineConfig::table1_base(), &prog_a);
        let mut sim_b = DetailedSim::new(MachineConfig::table1_base(), &prog_b);
        let a = sim_a.simulate(&mut SliceStream::new(&trace_a), u64::MAX);
        let b = sim_b.simulate(&mut SliceStream::new(&trace_b), u64::MAX);
        assert!(a.l1_hit_rate() > 0.9, "small set should hit L1: {}", a.l1_hit_rate());
        assert!(b.l1_hit_rate() < 0.6, "huge set should miss: {}", b.l1_hit_rate());
        assert!(
            b.cpi() > a.cpi() * 2.0,
            "memory-bound CPI {:.2} should dwarf resident CPI {:.2}",
            b.cpi(),
            a.cpi()
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // Same block, one trace with a stable branch, one alternating.
        let mk = |flip: bool, n: usize| {
            let mut b = ProgramBuilder::new("t");
            let id = b.add_block(4);
            let prog = b.finish();
            let mut trace = Vec::new();
            for k in 0..n {
                let taken = !flip || k % 2 == 0;
                let mut insts = independent_alu_block(4);
                insts[3] = Instruction::branch(BranchKind::Conditional, Reg::int(1), taken, id);
                trace.push((id, insts));
            }
            (prog, trace)
        };
        let (pa, ta) = mk(false, 2000);
        let (pb, tb) = mk(true, 2000);
        let mut sa = DetailedSim::new(MachineConfig::table1_base(), &pa);
        let mut sb = DetailedSim::new(MachineConfig::table1_base(), &pb);
        let a = sa.simulate(&mut SliceStream::new(&ta), u64::MAX);
        let b = sb.simulate(&mut SliceStream::new(&tb), u64::MAX);
        assert!(a.mispredict_rate() < 0.05, "stable branch trains: {}", a.mispredict_rate());
        // The alternating pattern is learnable by gshare; what matters
        // here is that the *counters* see the branches at all.
        assert_eq!(b.branches, 2000);
    }

    #[test]
    fn metrics_cover_exactly_the_requested_region() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let mut sim = DetailedSim::new(MachineConfig::table1_base(), cb.program());
        let mut stream = WorkloadStream::new(&cb);
        let m1 = sim.simulate(&mut stream, 10_000);
        assert!(m1.instructions >= 10_000);
        assert!(m1.instructions < 10_000 + 100, "stops at next block boundary");
        // Second region continues the same stream with fresh stats.
        let m2 = sim.simulate(&mut stream, 10_000);
        assert!(m2.instructions >= 10_000);
        assert!(m2.cycles > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let run = || {
            let mut sim = DetailedSim::new(MachineConfig::table1_base(), cb.program());
            sim.simulate(&mut WorkloadStream::new(&cb), 50_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_b_differs_from_config_a() {
        // A workload with an L1-busting working set should behave
        // differently under Config B's 128k D-cache.
        let spec = BenchmarkSpec {
            phases: vec![PhaseSpec {
                blocks: vec![BlockSpec {
                    mix: InstMix { load: 0.4, store: 0.1, ..InstMix::default() },
                    mem: MemoryPattern::RandomInSet { working_set: 64 * 1024 },
                    ..BlockSpec::default()
                }],
                ..PhaseSpec::default()
            }],
            script: vec![ScriptEntry::new(0, 100_000); 2],
            ..BenchmarkSpec::default()
        };
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let mut sa = DetailedSim::new(MachineConfig::table1_base(), cb.program());
        let mut sb = DetailedSim::new(MachineConfig::table1_sensitivity(), cb.program());
        let a = sa.simulate(&mut WorkloadStream::new(&cb), 150_000);
        let b = sb.simulate(&mut WorkloadStream::new(&cb), 150_000);
        assert!(
            b.l1_hit_rate() > a.l1_hit_rate() + 0.02,
            "Config B's 128k D$ should hit more: A={:.3} B={:.3}",
            a.l1_hit_rate(),
            b.l1_hit_rate()
        );
    }

    #[test]
    fn fu_pool_matches_linear_scan_and_preserves_multiset() {
        // Drive one pool with an adversarial ready/occupy sequence and
        // check the issue cycles against a straightforward earliest-free
        // linear scan over a plain vector. Only the multiset of
        // busy-until times is observable, so the two must also stay
        // multiset-equal at every step.
        let cfg = MachineConfig::table1_base();
        let mut fast = FuPools::new(&cfg);
        let n = cfg.fu.int_alu as usize;
        let mut naive: Vec<u64> = vec![0; n];
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let ready = step / 2 + (x % 7);
            let occupy = 1 + (x >> 32) % 19;
            let got = fast.issue(FuClass::IntAlu, ready, occupy);
            let mut best = 0usize;
            for (i, &b) in naive.iter().enumerate() {
                if b < naive[best] {
                    best = i;
                }
            }
            let want = ready.max(naive[best]);
            naive[best] = want + occupy;
            assert_eq!(got, want, "step {step}");
            // Decode the packed `busy << 6 | slot` keys back to times.
            let mut a: Vec<u64> = fast.keys[0][..n].iter().map(|k| k >> 6).collect();
            let mut b = naive.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "multisets diverged at step {step}");
        }
    }
}
