//! Machine configurations, including the two configurations of the
//! paper's Table I.

use mlpa_isa::FuClass;
use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
    /// Line size in bytes.
    pub line: u64,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`validate`]).
    ///
    /// [`validate`]: CacheConfig::validate
    pub fn sets(&self) -> u64 {
        self.validate().expect("invalid cache config");
        self.size / (self.line * u64::from(self.assoc))
    }

    /// Upper bound on associativity: the optimized way scan packs the
    /// way index into the low 6 bits of its LRU scan key.
    pub const MAX_ASSOC: u32 = 64;

    /// Check size/line/assoc consistency: all non-zero, powers of two
    /// where required, and at least one set.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.line == 0 || !self.line.is_power_of_two() {
            return Err(format!("cache line {} must be a power of two", self.line));
        }
        if self.assoc == 0 || self.assoc > Self::MAX_ASSOC {
            return Err(format!(
                "cache associativity {} must be in 1..={}",
                self.assoc,
                Self::MAX_ASSOC
            ));
        }
        if self.size == 0 || !self.size.is_multiple_of(self.line * u64::from(self.assoc)) {
            return Err(format!(
                "cache size {} not divisible by line*assoc {}",
                self.size,
                self.line * u64::from(self.assoc)
            ));
        }
        let sets = self.size / (self.line * u64::from(self.assoc));
        if !sets.is_power_of_two() {
            return Err(format!("cache set count {sets} must be a power of two"));
        }
        Ok(())
    }
}

/// Hardware-prefetch policy of the L1 data cache.
///
/// [`PrefetchPolicy::None`] is the default everywhere (SimpleScalar 3.0
/// has no data prefetcher, and the paper's Table I lists none); the
/// `ablation_prefetch` bench turns next-line prefetching on to show the
/// sampling methodology is robust to the change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPolicy {
    /// No prefetching (Table I).
    #[default]
    None,
    /// On an L1D demand miss, also fill the next sequential line
    /// (idealised: the fill itself is off the critical path).
    NextLine,
}

/// Branch-predictor configuration (a combined predictor as in Table I:
/// bimodal + gshare with a meta chooser, plus BTB and return stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the bimodal table, the gshare table, and the chooser
    /// (Table I: 8 K BHT entries). Must be a power of two.
    pub bht_entries: u32,
    /// Global-history bits of the gshare component.
    pub history_bits: u32,
    /// BTB sets (4-way). Must be a power of two.
    pub btb_sets: u32,
    /// Return-address-stack depth.
    pub ras_depth: u32,
    /// Cycles lost on a misprediction (redirect + front-end refill).
    pub mispredict_penalty: u32,
}

impl PredictorConfig {
    /// Check table geometries.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bht_entries == 0 || !self.bht_entries.is_power_of_two() {
            return Err("BHT entries must be a positive power of two".into());
        }
        if self.history_bits == 0 || self.history_bits > 20 {
            return Err("history bits must be in 1..=20".into());
        }
        if self.btb_sets == 0 || !self.btb_sets.is_power_of_two() {
            return Err("BTB sets must be a positive power of two".into());
        }
        Ok(())
    }
}

/// Functional-unit pool sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs (also execute branches).
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_muldiv: u32,
    /// FP adders.
    pub fp_add: u32,
    /// FP multiply/divide units.
    pub fp_muldiv: u32,
    /// Load/store ports.
    pub load_store: u32,
}

impl FuConfig {
    /// Pool size for a functional-unit class.
    pub fn pool(&self, class: FuClass) -> u32 {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMulDiv => self.int_muldiv,
            FuClass::FpAdd => self.fp_add,
            FuClass::FpMulDiv => self.fp_muldiv,
            FuClass::LoadStore => self.load_store,
        }
    }

    /// Maximum units per pool: the detailed simulator tracks each pool
    /// in a fixed sorted array of this many slots.
    pub const MAX_UNITS: u32 = 64;

    /// Check that every pool has at least one unit and no more than
    /// [`FuConfig::MAX_UNITS`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pool.
    pub fn validate(&self) -> Result<(), String> {
        for class in [
            FuClass::IntAlu,
            FuClass::IntMulDiv,
            FuClass::FpAdd,
            FuClass::FpMulDiv,
            FuClass::LoadStore,
        ] {
            if self.pool(class) == 0 {
                return Err(format!("functional-unit pool {class} is empty"));
            }
            if self.pool(class) > Self::MAX_UNITS {
                return Err(format!(
                    "functional-unit pool {class} has {} units (max {})",
                    self.pool(class),
                    Self::MAX_UNITS
                ));
            }
        }
        Ok(())
    }
}

/// A complete machine configuration for the detailed simulator.
///
/// # Example
///
/// ```
/// use mlpa_sim::MachineConfig;
///
/// let base = MachineConfig::table1_base();
/// base.validate().unwrap();
/// assert_eq!(base.width, 8);
/// assert_eq!(base.rob_entries, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Decode/issue/commit width.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// Front-end depth in cycles (fetch→dispatch).
    pub frontend_depth: u32,
    /// Functional-unit pools.
    pub fu: FuConfig,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency: first access.
    pub mem_latency_first: u32,
    /// Main-memory latency: each following (burst) access.
    pub mem_latency_next: u32,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// L1D hardware prefetcher ([`PrefetchPolicy::None`] in Table I).
    pub prefetch: PrefetchPolicy,
}

impl MachineConfig {
    /// Table I, Part A — the base configuration used against SimPoint.
    pub fn table1_base() -> MachineConfig {
        MachineConfig {
            width: 8,
            rob_entries: 128,
            lsq_entries: 64,
            frontend_depth: 4,
            fu: FuConfig { int_alu: 8, int_muldiv: 2, fp_add: 2, fp_muldiv: 2, load_store: 4 },
            icache: CacheConfig { size: 8 * 1024, assoc: 2, line: 32, latency: 1 },
            dcache: CacheConfig { size: 16 * 1024, assoc: 4, line: 32, latency: 2 },
            l2: CacheConfig { size: 1024 * 1024, assoc: 4, line: 32, latency: 20 },
            mem_latency_first: 150,
            mem_latency_next: 10,
            predictor: PredictorConfig {
                bht_entries: 8 * 1024,
                history_bits: 12,
                btb_sets: 512,
                ras_depth: 16,
                mispredict_penalty: 6,
            },
            prefetch: PrefetchPolicy::None,
        }
    }

    /// Table I, Part B — the sensitivity-analysis configuration (larger
    /// caches, longer memory latency, different FU balance). The paper's
    /// table is partially cut off in the available text; the visible
    /// rows (6 int ALU / 2 ld-st / 6 FP add / 4 int muldiv / 4 fp
    /// muldiv; 32 k direct-mapped I$; 128 k 2-way D$) are used verbatim
    /// and the hidden L2/memory rows follow its stated intent of "larger
    /// cache size and longer memory latency".
    pub fn table1_sensitivity() -> MachineConfig {
        MachineConfig {
            width: 8,
            rob_entries: 128,
            lsq_entries: 64,
            frontend_depth: 4,
            fu: FuConfig { int_alu: 6, int_muldiv: 4, fp_add: 6, fp_muldiv: 4, load_store: 2 },
            icache: CacheConfig { size: 32 * 1024, assoc: 1, line: 32, latency: 1 },
            dcache: CacheConfig { size: 128 * 1024, assoc: 2, line: 32, latency: 1 },
            l2: CacheConfig { size: 2 * 1024 * 1024, assoc: 8, line: 32, latency: 30 },
            mem_latency_first: 200,
            mem_latency_next: 15,
            predictor: PredictorConfig {
                bht_entries: 8 * 1024,
                history_bits: 12,
                btb_sets: 512,
                ras_depth: 16,
                mispredict_penalty: 6,
            },
            prefetch: PrefetchPolicy::None,
        }
    }

    /// Check every component.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err("pipeline width must be positive".into());
        }
        if self.rob_entries == 0 || self.lsq_entries == 0 {
            return Err("ROB and LSQ must have at least one entry".into());
        }
        if self.lsq_entries > self.rob_entries {
            return Err("LSQ cannot exceed the ROB".into());
        }
        self.fu.validate()?;
        self.icache.validate().map_err(|e| format!("icache: {e}"))?;
        self.dcache.validate().map_err(|e| format!("dcache: {e}"))?;
        self.l2.validate().map_err(|e| format!("l2: {e}"))?;
        if self.mem_latency_first == 0 {
            return Err("memory latency must be positive".into());
        }
        self.predictor.validate()
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table1_base()
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-wide OoO, ROB {} / LSQ {}, I${}k/{} D${}k/{} L2 {}k/{}, mem {}/{}",
            self.width,
            self.rob_entries,
            self.lsq_entries,
            self.icache.size / 1024,
            self.icache.assoc,
            self.dcache.size / 1024,
            self.dcache.assoc,
            self.l2.size / 1024,
            self.l2.assoc,
            self.mem_latency_first,
            self.mem_latency_next
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_configs_validate() {
        MachineConfig::table1_base().validate().unwrap();
        MachineConfig::table1_sensitivity().validate().unwrap();
    }

    #[test]
    fn table1_base_matches_paper() {
        let c = MachineConfig::table1_base();
        assert_eq!((c.width, c.rob_entries, c.lsq_entries), (8, 128, 64));
        assert_eq!(c.fu.int_alu, 8);
        assert_eq!(c.fu.load_store, 4);
        assert_eq!(c.fu.fp_add, 2);
        assert_eq!(c.icache.size, 8 * 1024);
        assert_eq!(c.icache.assoc, 2);
        assert_eq!(c.dcache.size, 16 * 1024);
        assert_eq!(c.dcache.assoc, 4);
        assert_eq!(c.dcache.latency, 2);
        assert_eq!(c.l2.size, 1 << 20);
        assert_eq!(c.l2.latency, 20);
        assert_eq!((c.mem_latency_first, c.mem_latency_next), (150, 10));
        assert_eq!(c.predictor.bht_entries, 8 * 1024);
    }

    #[test]
    fn table1_sensitivity_differs_where_stated() {
        let a = MachineConfig::table1_base();
        let b = MachineConfig::table1_sensitivity();
        assert_eq!(b.fu.int_alu, 6);
        assert_eq!(b.fu.load_store, 2);
        assert_eq!(b.fu.fp_add, 6);
        assert_eq!(b.icache.assoc, 1, "Config B I$ is direct mapped");
        assert!(b.dcache.size > a.dcache.size);
        assert!(b.l2.size > a.l2.size);
        assert!(b.mem_latency_first > a.mem_latency_first);
    }

    #[test]
    fn cache_sets_computed() {
        let c = CacheConfig { size: 16 * 1024, assoc: 4, line: 32, latency: 2 };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn bad_cache_configs_rejected() {
        let base = CacheConfig { size: 16 * 1024, assoc: 4, line: 32, latency: 2 };
        assert!(CacheConfig { line: 33, ..base }.validate().is_err());
        assert!(CacheConfig { assoc: 0, ..base }.validate().is_err());
        assert!(CacheConfig { size: 1000, ..base }.validate().is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig { size: 3 * 128, assoc: 1, line: 128, latency: 1 }.validate().is_err());
    }

    #[test]
    fn bad_machine_configs_rejected() {
        let mut c = MachineConfig::table1_base();
        c.width = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table1_base();
        c.lsq_entries = c.rob_entries + 1;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table1_base();
        c.fu.load_store = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table1_base();
        c.predictor.bht_entries = 1000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = MachineConfig::table1_base().to_string();
        assert!(s.contains("ROB 128"));
        assert!(s.contains("150"));
    }
}
