//! A strictly in-order, stall-on-use scalar core model — the
//! `sim-inorder` counterpart to [`DetailedSim`](crate::DetailedSim).
//!
//! Sampling plans are microarchitecture-independent (they are built
//! from BBVs alone), so the same plan should estimate *any* core's
//! behaviour. This second, structurally different timing model lets the
//! `extension_core_models` bench demonstrate exactly that: one
//! multi-level plan, two very different cores, both estimated
//! accurately.
//!
//! Model: single-issue, in-order. Each instruction waits for its source
//! operands, occupies its functional unit (unpipelined divides block),
//! and commits in order; loads stall the pipeline until the hierarchy
//! answers; branch mispredictions flush the shallow front end. No ROB,
//! no LSQ — there is nothing to reorder.

use crate::branch::BranchUnit;
use crate::cache::MemoryHierarchy;
use crate::config::MachineConfig;
use crate::metrics::SimMetrics;
use mlpa_isa::stream::InstructionStream;
use mlpa_isa::{BlockId, OpClass, Program, Reg};

/// The in-order scalar simulator. Uses the same [`MachineConfig`] as
/// the out-of-order model (width, ROB and LSQ fields are ignored; one
/// unit per FU class is assumed).
///
/// # Example
///
/// ```
/// use mlpa_sim::{inorder::InOrderSim, MachineConfig};
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut sim = InOrderSim::new(MachineConfig::table1_base(), cb.program());
/// let m = sim.simulate(&mut WorkloadStream::new(&cb), 20_000);
/// assert!(m.cpi() >= 1.0, "a scalar core cannot beat CPI 1, got {}", m.cpi());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct InOrderSim<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    hier: MemoryHierarchy,
    branch: BranchUnit,
    reg_ready: [u64; Reg::NUM_TOTAL as usize],
    cycle: u64,
    last_fetch_line: u64,
}

impl<'p> InOrderSim<'p> {
    /// Create a cold in-order simulator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: MachineConfig, program: &'p Program) -> InOrderSim<'p> {
        cfg.validate().expect("invalid machine config");
        InOrderSim {
            hier: MemoryHierarchy::new(&cfg),
            branch: BranchUnit::new(&cfg.predictor),
            reg_ready: [0; Reg::NUM_TOTAL as usize],
            cycle: 0,
            last_fetch_line: u64::MAX,
            cfg,
            program,
        }
    }

    /// Simultaneous mutable access to the hierarchy and branch unit for
    /// functional warming.
    pub fn warm_state_mut(&mut self) -> (&mut MemoryHierarchy, &mut BranchUnit) {
        (&mut self.hier, &mut self.branch)
    }

    /// Simulate up to `limit` instructions (to the block boundary at or
    /// past it). State persists across calls; statistics do not.
    pub fn simulate<S: InstructionStream>(&mut self, stream: &mut S, limit: u64) -> SimMetrics {
        self.hier.reset_stats();
        self.branch.reset_stats();
        let start = self.cycle;
        let mut m = SimMetrics::default();
        let mut buf = Vec::with_capacity(64);

        while m.instructions < limit {
            let Some(id) = stream.next_block(&mut buf) else { break };
            self.run_block(id, &buf, &mut m);
        }
        m.cycles = self.cycle.saturating_sub(start).max(u64::from(m.instructions > 0));
        m.l1d_hits = self.hier.l1d().hits();
        m.l1d_misses = self.hier.l1d().misses();
        m.l1i_hits = self.hier.l1i().hits();
        m.l1i_misses = self.hier.l1i().misses();
        m.l2_hits = self.hier.l2().hits();
        m.l2_misses = self.hier.l2().misses();
        m.branches = self.branch.predictions();
        m.mispredicts = self.branch.mispredictions();
        m
    }

    fn run_block(&mut self, id: BlockId, insts: &[mlpa_isa::Instruction], m: &mut SimMetrics) {
        let block = self.program.block(id);
        let line_mask = !(self.hier.l1i().config().line - 1);
        let fallthrough = BlockId::new(id.raw().saturating_add(1));

        for (i, inst) in insts.iter().enumerate() {
            let pc = block.inst_addr(i as u32);
            // Fetch: one instruction per cycle, plus I-cache stalls.
            let line = pc & line_mask;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                self.cycle += u64::from(self.hier.fetch(line));
            }
            // Wait for sources (stall-on-use).
            for s in inst.srcs {
                if s.is_some() {
                    self.cycle = self.cycle.max(self.reg_ready[s.index()]);
                }
            }
            // Execute.
            let done = match inst.op {
                OpClass::Load => {
                    m.loads += 1;
                    let acc = self.hier.data_access(inst.addr, false);
                    // The pipeline stalls until the load returns.
                    self.cycle += u64::from(acc.latency);
                    self.cycle
                }
                OpClass::Store => {
                    m.stores += 1;
                    let _ = self.hier.data_access(inst.addr, true);
                    self.cycle += 1;
                    self.cycle
                }
                op => {
                    self.cycle += u64::from(op.latency());
                    self.cycle
                }
            };
            if inst.dst.is_some() {
                self.reg_ready[inst.dst.index()] = done;
            }
            if let Some(info) = &inst.branch {
                if !self.branch.resolve(pc, info, fallthrough) {
                    self.cycle += u64::from(self.cfg.predictor.mispredict_penalty);
                }
            }
            m.instructions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetailedSim;
    use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};

    fn cb() -> CompiledBenchmark {
        CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap()
    }

    #[test]
    fn scalar_core_never_beats_cpi_one() {
        let cb = cb();
        let mut sim = InOrderSim::new(MachineConfig::table1_base(), cb.program());
        let m = sim.simulate(&mut WorkloadStream::new(&cb), 50_000);
        assert!(m.cpi() >= 1.0, "CPI {}", m.cpi());
        assert!(m.instructions >= 50_000);
    }

    #[test]
    fn inorder_is_slower_than_ooo_on_the_same_trace() {
        let cb = cb();
        let mut io = InOrderSim::new(MachineConfig::table1_base(), cb.program());
        let mut ooo = DetailedSim::new(MachineConfig::table1_base(), cb.program());
        let m_io = io.simulate(&mut WorkloadStream::new(&cb), 80_000);
        let m_ooo = ooo.simulate(&mut WorkloadStream::new(&cb), 80_000);
        assert!(
            m_io.cpi() > m_ooo.cpi() * 1.5,
            "in-order CPI {:.2} vs OoO {:.2}",
            m_io.cpi(),
            m_ooo.cpi()
        );
        // Cache behaviour is identical — same trace, same hierarchy.
        assert_eq!(m_io.l1d_misses, m_ooo.l1d_misses);
    }

    #[test]
    fn deterministic() {
        let cb = cb();
        let run = || {
            let mut sim = InOrderSim::new(MachineConfig::table1_base(), cb.program());
            sim.simulate(&mut WorkloadStream::new(&cb), 30_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_cover_only_the_requested_region() {
        let cb = cb();
        let mut sim = InOrderSim::new(MachineConfig::table1_base(), cb.program());
        let mut stream = WorkloadStream::new(&cb);
        let a = sim.simulate(&mut stream, 10_000);
        let b = sim.simulate(&mut stream, 10_000);
        assert!(a.instructions >= 10_000 && b.instructions >= 10_000);
        assert!(b.cycles > 0, "second region has its own cycle count");
    }
}
