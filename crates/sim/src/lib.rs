#![warn(missing_docs)]

//! Simulator substrate for the `mlpa` sampling-simulation study: a
//! functional simulator, a cycle-level out-of-order detailed simulator,
//! set-associative caches, and branch predictors — the SimpleScalar-3.0
//! analogue the paper evaluates on, rebuilt from scratch in Rust.
//!
//! * [`FunctionalSim`] executes an
//!   [`InstructionStream`](mlpa_isa::InstructionStream) at trace speed,
//!   firing [`functional::Observer`] callbacks (BBV profilers, loop
//!   detectors) and optionally warming caches/predictor while
//!   fast-forwarding.
//! * [`DetailedSim`] is the `sim-outorder` analogue: a trace-driven
//!   timestamp-propagation out-of-order core with ROB/LSQ occupancy,
//!   functional-unit contention, a two-level cache hierarchy and a
//!   combined branch predictor, configured by [`MachineConfig`]
//!   (Table I of the paper, parts A and B).
//! * [`SimMetrics`] carries the accuracy metrics of the paper's
//!   Table II: CPI, L1 hit rate, L2 hit rate.
//!
//! # Example
//!
//! ```
//! use mlpa_sim::{DetailedSim, MachineConfig};
//! use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark, WorkloadStream};
//!
//! let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
//! let mut sim = DetailedSim::new(MachineConfig::table1_base(), cb.program());
//! let metrics = sim.simulate(&mut WorkloadStream::new(&cb), 10_000);
//! println!("CPI = {:.2}", metrics.cpi());
//! # Ok::<(), String>(())
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod detailed;
pub mod functional;
pub mod inorder;
pub mod metrics;
pub mod reference;

pub use branch::BranchUnit;
pub use cache::MemoryHierarchy;
pub use config::{CacheConfig, FuConfig, MachineConfig, PredictorConfig};
pub use detailed::DetailedSim;
pub use functional::{FunctionalSim, Warming};
pub use inorder::InOrderSim;
pub use metrics::{MetricDeviation, MetricEstimate, SimMetrics};
