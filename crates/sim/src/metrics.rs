//! Simulation metrics: the quantities the paper's Table II compares
//! (CPI, L1 hit rate, L2 hit rate) plus supporting counters.

use std::fmt;
use std::ops::AddAssign;

/// Counters produced by a detailed-simulation run.
///
/// # Example
///
/// ```
/// use mlpa_sim::SimMetrics;
///
/// let mut m = SimMetrics::default();
/// m.instructions = 100;
/// m.cycles = 250;
/// assert_eq!(m.cpi(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Committed instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// L1D hits / misses.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L1I hits.
    pub l1i_hits: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Resolved branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
}

impl SimMetrics {
    /// Cycles per instruction. Zero-instruction runs report 0.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Instructions per cycle (reciprocal of [`cpi`](Self::cpi)).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1 data-cache hit rate in `[0, 1]` (1.0 when there were no
    /// accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        rate(self.l1d_hits, self.l1d_misses)
    }

    /// L2 hit rate in `[0, 1]` (1.0 when there were no accesses).
    pub fn l2_hit_rate(&self) -> f64 {
        rate(self.l2_hits, self.l2_misses)
    }

    /// Branch misprediction rate in `[0, 1]` (0.0 with no branches).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Combine weighted per-sample metrics into a whole-program
    /// estimate, the way sampling simulation extrapolates: rates are
    /// weight-averaged via their underlying ratio estimates.
    ///
    /// `parts` yields `(weight, metrics)` pairs; weights should sum to 1
    /// but are renormalised defensively.
    ///
    /// Returns the *rate* estimates packaged as a [`MetricEstimate`].
    pub fn weighted_estimate<I>(parts: I) -> MetricEstimate
    where
        I: IntoIterator<Item = (f64, SimMetrics)>,
    {
        // CPI extrapolates as the weighted mean of per-sample CPIs
        // (cycles and instructions are both proportional to region
        // length). Rates extrapolate as *ratios of estimated totals*:
        // each sample contributes its per-instruction event densities,
        // weighted by its phase weight, and the rate is the quotient —
        // a sample with hardly any L2 accesses correctly contributes
        // almost nothing to the L2 hit rate. Averaging the rates
        // themselves would let low-traffic phases swamp the estimate.
        let mut w_all = 0.0;
        let mut cpi = 0.0;
        // Per-instruction event densities, weight-averaged.
        let (mut l1h, mut l1a) = (0.0, 0.0);
        let (mut l2h, mut l2a) = (0.0, 0.0);
        let (mut brm, mut bra) = (0.0, 0.0);
        for (w, m) in parts {
            w_all += w;
            cpi += w * m.cpi();
            if m.instructions > 0 {
                let inv = w / m.instructions as f64;
                l1h += inv * m.l1d_hits as f64;
                l1a += inv * (m.l1d_hits + m.l1d_misses) as f64;
                l2h += inv * m.l2_hits as f64;
                l2a += inv * (m.l2_hits + m.l2_misses) as f64;
                brm += inv * m.mispredicts as f64;
                bra += inv * m.branches as f64;
            }
        }
        MetricEstimate {
            cpi: if w_all > 0.0 { cpi / w_all } else { 0.0 },
            l1_hit_rate: if l1a > 0.0 { l1h / l1a } else { 1.0 },
            l2_hit_rate: if l2a > 0.0 { l2h / l2a } else { 1.0 },
            mispredict_rate: if bra > 0.0 { brm / bra } else { 0.0 },
        }
    }

    /// Rate view of these exact counters.
    pub fn estimate(&self) -> MetricEstimate {
        MetricEstimate {
            cpi: self.cpi(),
            l1_hit_rate: self.l1_hit_rate(),
            l2_hit_rate: self.l2_hit_rate(),
            mispredict_rate: self.mispredict_rate(),
        }
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

impl AddAssign for SimMetrics {
    fn add_assign(&mut self, o: SimMetrics) {
        self.instructions += o.instructions;
        self.cycles += o.cycles;
        self.l1d_hits += o.l1d_hits;
        self.l1d_misses += o.l1d_misses;
        self.l1i_hits += o.l1i_hits;
        self.l1i_misses += o.l1i_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.branches += o.branches;
        self.mispredicts += o.mispredicts;
        self.loads += o.loads;
        self.stores += o.stores;
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts, {} cycles (CPI {:.3}), L1 {:.2}% L2 {:.2}%, bp-miss {:.2}%",
            self.instructions,
            self.cycles,
            self.cpi(),
            self.l1_hit_rate() * 100.0,
            self.l2_hit_rate() * 100.0,
            self.mispredict_rate() * 100.0
        )
    }
}

/// The three accuracy metrics of the paper's Table II (plus the branch
/// misprediction rate), as rates rather than raw counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricEstimate {
    /// Cycles per instruction.
    pub cpi: f64,
    /// L1 data-cache hit rate, in `[0, 1]`.
    pub l1_hit_rate: f64,
    /// L2 hit rate, in `[0, 1]`.
    pub l2_hit_rate: f64,
    /// Branch misprediction rate, in `[0, 1]`.
    pub mispredict_rate: f64,
}

impl MetricEstimate {
    /// Relative deviation of each metric versus `truth`, as the paper
    /// reports: `|est - true| / true` for CPI; absolute-difference for
    /// hit rates (which are already percentages).
    pub fn deviation_from(&self, truth: &MetricEstimate) -> MetricDeviation {
        let rel = |e: f64, t: f64| if t == 0.0 { 0.0 } else { (e - t).abs() / t };
        MetricDeviation {
            cpi: rel(self.cpi, truth.cpi),
            l1_hit_rate: (self.l1_hit_rate - truth.l1_hit_rate).abs(),
            l2_hit_rate: (self.l2_hit_rate - truth.l2_hit_rate).abs(),
        }
    }
}

impl fmt::Display for MetricEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CPI {:.3}, L1 {:.2}%, L2 {:.2}%",
            self.cpi,
            self.l1_hit_rate * 100.0,
            self.l2_hit_rate * 100.0
        )
    }
}

/// Deviation of an estimate from ground truth (Table II's cell values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDeviation {
    /// Relative CPI error.
    pub cpi: f64,
    /// Absolute L1 hit-rate error.
    pub l1_hit_rate: f64,
    /// Absolute L2 hit-rate error.
    pub l2_hit_rate: f64,
}

impl fmt::Display for MetricDeviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ΔCPI {:.2}%, ΔL1 {:.2}%, ΔL2 {:.2}%",
            self.cpi * 100.0,
            self.l1_hit_rate * 100.0,
            self.l2_hit_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_runs() {
        let m = SimMetrics::default();
        assert_eq!(m.cpi(), 0.0);
        assert_eq!(m.ipc(), 0.0);
        assert_eq!(m.l1_hit_rate(), 1.0);
        assert_eq!(m.l2_hit_rate(), 1.0);
        assert_eq!(m.mispredict_rate(), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SimMetrics { instructions: 10, cycles: 20, ..Default::default() };
        let b = SimMetrics { instructions: 5, cycles: 5, l1d_hits: 3, ..Default::default() };
        a += b;
        assert_eq!(a.instructions, 15);
        assert_eq!(a.cycles, 25);
        assert_eq!(a.l1d_hits, 3);
    }

    #[test]
    fn weighted_estimate_interpolates() {
        let fast = SimMetrics { instructions: 100, cycles: 100, ..Default::default() };
        let slow = SimMetrics { instructions: 100, cycles: 300, ..Default::default() };
        let e = SimMetrics::weighted_estimate([(0.5, fast), (0.5, slow)]);
        assert!((e.cpi - 2.0).abs() < 1e-12);
        // Renormalisation: same answer with unnormalised weights.
        let e2 = SimMetrics::weighted_estimate([(2.0, fast), (2.0, slow)]);
        assert!((e.cpi - e2.cpi).abs() < 1e-12);
    }

    #[test]
    fn deviation_matches_hand_computation() {
        let truth = MetricEstimate {
            cpi: 2.0,
            l1_hit_rate: 0.95,
            l2_hit_rate: 0.80,
            mispredict_rate: 0.05,
        };
        let est = MetricEstimate {
            cpi: 2.1,
            l1_hit_rate: 0.94,
            l2_hit_rate: 0.85,
            mispredict_rate: 0.05,
        };
        let d = est.deviation_from(&truth);
        assert!((d.cpi - 0.05).abs() < 1e-12);
        assert!((d.l1_hit_rate - 0.01).abs() < 1e-12);
        assert!((d.l2_hit_rate - 0.05).abs() < 1e-12);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!SimMetrics::default().to_string().is_empty());
        let e = SimMetrics::default().estimate();
        assert!(!e.to_string().is_empty());
        assert!(!e.deviation_from(&e).to_string().is_empty());
    }
}
