//! The synthetic SPEC2000 suite, calibrated to the paper's
//! per-benchmark facts.
//!
//! Calibration targets taken from the paper (§III-B, §V-A):
//!
//! * coarse-grained phase counts: average ≈ 3; **gzip** 4, **equake** 6,
//!   **fma3d** 5 (plus one more above three — we use **vpr** 4);
//! * position of the last coarse simulation point: average ≈ 17 %, with
//!   **gcc** 86 %, **art** 47 %, **bzip2** 36 % the only ones above 30 %;
//! * **gcc**: 56 outermost iterations with wildly varying sizes, one
//!   iteration covering ≈ 60 % of the run;
//! * **lucas**: smooth coarse-grained PCA curve, chaotic fine-grained one
//!   (high fine-scale noise, well-separated coarse phases);
//! * mean outermost-iteration size around the paper's 444 M instructions
//!   (444 k at this repo's 1000× scale-down).
//!
//! All lengths here are in *scaled* instructions (1 instruction ≈ 1000
//! paper instructions); see `DESIGN.md` for the scaling argument.

use crate::behavior::{BranchPattern, InstMix, MemoryPattern};
use crate::spec::{BenchmarkSpec, BlockSpec, PhaseSpec, ScriptEntry};
use mlpa_isa::rng::SplitMix64;

/// All 26 SPEC2000 benchmark names, integer suite first.
pub const SPEC2000_NAMES: [&str; 26] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf", // SPECint
    "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art", "equake", "facerec", "ammp",
    "lucas", "fma3d", "sixtrack", "apsi", // SPECfp
];

/// Broad behavioural character of a phase; determines how its block
/// families' working sets, branch patterns, and dependence densities are
/// drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// L1-resident data, predictable branches — high IPC.
    CacheFriendly,
    /// Working sets that live in the L2.
    L2Resident,
    /// Working sets far beyond the L2 — memory bound.
    MemoryBound,
    /// Dependent (pointer-chasing) loads over big sets — latency bound.
    PointerChasing,
    /// FP streaming over large arrays (stencil/array codes).
    FpStream,
    /// FP compute over resident data.
    FpCompute,
    /// Integer code with poorly predictable branches.
    BranchNoisy,
}

/// Draw a phase's block families for a [`PhaseKind`].
fn families_for(kind: PhaseKind, rng: &mut SplitMix64) -> Vec<BlockSpec> {
    let n = 4 + rng.range_usize(3); // 4..=6 families
    let fp = matches!(kind, PhaseKind::FpStream | PhaseKind::FpCompute);
    (0..n)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let mut mix = if fp { InstMix::fp() } else { InstMix::int() };
            mix.load = (mix.load + rng.range_f64(-0.04, 0.04)).clamp(0.05, 0.5);
            mix.store = (mix.store + rng.range_f64(-0.03, 0.03)).clamp(0.02, 0.3);

            let mem = match kind {
                PhaseKind::CacheFriendly | PhaseKind::BranchNoisy => {
                    if rng.chance(0.5) {
                        MemoryPattern::Strided {
                            stride: 8 << rng.range_u64(2),
                            working_set: (4 * 1024) << rng.range_u64(2),
                        }
                    } else {
                        MemoryPattern::RandomInSet { working_set: 8 * 1024 }
                    }
                }
                // Resident-class sets are capped so a whole benchmark's
                // footprint (sum of per-slot maxima) stays below the L2
                // capacity. Mixing L2-evicting phases with L2-resident
                // ones would make every phase transition a (scale-
                // amplified) L2 re-warm that real 444 M-instruction
                // iterations amortise away — so the suite keeps each
                // benchmark either all-resident or all-big-footprint.
                PhaseKind::L2Resident => {
                    if rng.chance(0.5) {
                        MemoryPattern::RandomInSet { working_set: (64 * 1024) << rng.range_u64(1) }
                    } else {
                        MemoryPattern::Strided { stride: 32, working_set: 64 * 1024 }
                    }
                }
                PhaseKind::MemoryBound => {
                    if rng.chance(0.6) {
                        MemoryPattern::RandomInSet { working_set: (4 << 20) << rng.range_u64(3) }
                    } else {
                        MemoryPattern::Strided { stride: 64, working_set: 8 << 20 }
                    }
                }
                PhaseKind::PointerChasing => {
                    MemoryPattern::PointerChase { working_set: (2 << 20) << rng.range_u64(3) }
                }
                PhaseKind::FpStream => {
                    MemoryPattern::Strided { stride: 8, working_set: (2 << 20) << rng.range_u64(2) }
                }
                PhaseKind::FpCompute => {
                    MemoryPattern::RandomInSet { working_set: (16 * 1024) << rng.range_u64(2) }
                }
            };

            let branch = match kind {
                PhaseKind::BranchNoisy => {
                    BranchPattern::Biased { p_taken: rng.range_f64(0.35, 0.65) }
                }
                _ => {
                    if rng.chance(0.4) {
                        BranchPattern::Periodic { taken: 1 + rng.range_u64(4) as u16, not_taken: 1 }
                    } else {
                        BranchPattern::Biased { p_taken: rng.range_f64(0.05, 0.3) }
                    }
                }
            };

            // Dependence-density ranges are kept narrow per kind: the
            // CPI spread *within* a kind is what a Kmax=3 phase merge
            // pays for on benchmarks with more than three phases.
            let dep = match kind {
                PhaseKind::PointerChasing => rng.range_f64(0.55, 0.7),
                PhaseKind::CacheFriendly => rng.range_f64(0.25, 0.35),
                _ => rng.range_f64(0.42, 0.55),
            };

            BlockSpec {
                len: 14 + rng.range_u64(20) as u32,
                weight: rng.range_f64(0.5, 2.0),
                drift_dir: sign * rng.range_f64(0.4, 1.0),
                mix,
                mem,
                branch,
                dep_density: dep,
            }
        })
        .collect()
}

/// Build one phase of a benchmark.
fn phase(
    name: &str,
    kind: PhaseKind,
    inner_iter_insts: u64,
    drift: f64,
    noise: f64,
    rng: &mut SplitMix64,
) -> PhaseSpec {
    PhaseSpec {
        name: name.into(),
        blocks: families_for(kind, rng),
        inner_iter_insts,
        drift,
        noise,
        perf_drift: 0.08,
    }
}

/// Script helper: `parts` is a sequence of `(phase, count, insts_each)`
/// runs concatenated in order.
fn script(parts: &[(usize, usize, u64)]) -> Vec<ScriptEntry> {
    parts.iter().flat_map(|&(p, n, sz)| std::iter::repeat_n(ScriptEntry::new(p, sz), n)).collect()
}

/// Script helper: cycle through `order` repeatedly for `total` entries of
/// `insts_each` instructions. First occurrences land at the first cycle.
fn cyclic_script(order: &[usize], total: usize, insts_each: u64) -> Vec<ScriptEntry> {
    (0..total).map(|i| ScriptEntry::new(order[i % order.len()], insts_each)).collect()
}

/// Common assembly of a [`BenchmarkSpec`].
fn assemble(
    name: &str,
    seed: u64,
    phases: Vec<PhaseSpec>,
    script: Vec<ScriptEntry>,
) -> BenchmarkSpec {
    let total: u64 = script.iter().map(|e| e.insts).sum();
    BenchmarkSpec {
        name: name.into(),
        seed,
        // Init/tail ≈ 1.5 % / 0.5 % of the run.
        init_insts: total * 3 / 200,
        tail_insts: total / 200,
        phases,
        script,
    }
}

/// Stable per-benchmark seed derived from the name.
fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0x5EED_2000u64, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b)))
}

/// Default outer-iteration multiplication factor for the suite.
///
/// The paper's benchmarks run hundreds of outermost iterations (e.g.
/// 192 G instructions at a 444 M mean iteration ≈ 430 iterations); the
/// base scripts below are written at ~30–60 iterations for readability
/// and widened by this factor, which multiplies every same-phase run
/// length — preserving every positional fact (phase first-occurrence
/// fractions, coarse-phase counts) while restoring the paper's
/// iteration-count regime. `gcc` is exempt: its 56 iterations are a
/// paper fact, so it grows by iteration *size* instead.
pub const DEFAULT_ITER_FACTOR: usize = 8;

/// Widen a script by `f`: each entry becomes `f` consecutive copies.
fn widen(mut spec: BenchmarkSpec, f: usize) -> BenchmarkSpec {
    if f > 1 {
        spec.script = spec.script.iter().flat_map(|e| std::iter::repeat_n(*e, f)).collect();
        let total: u64 = spec.script.iter().map(|e| e.insts).sum();
        spec.init_insts = total * 3 / 200;
        spec.tail_insts = total / 200;
    }
    spec
}

/// Build a calibrated benchmark by SPEC2000 name at the default
/// iteration factor.
///
/// Returns `None` for unknown names. Lengths are nominal (`scale = 1`);
/// use [`BenchmarkSpec::scaled`] to shrink or grow, or
/// [`benchmark_with_iters`] to control the iteration count directly.
///
/// # Example
///
/// ```
/// use mlpa_workloads::suite::benchmark;
///
/// let gcc = benchmark("gcc").unwrap();
/// assert_eq!(gcc.outer_iters(), 56); // the paper's gcc fact
/// assert!(benchmark("nonesuch").is_none());
/// ```
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    benchmark_with_iters(name, DEFAULT_ITER_FACTOR)
}

/// Build a calibrated benchmark with an explicit iteration factor
/// (`1` = the compact base script; [`DEFAULT_ITER_FACTOR`] = the
/// paper-regime suite). `gcc` keeps its 56 iterations at every factor.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn benchmark_with_iters(name: &str, factor: usize) -> Option<BenchmarkSpec> {
    assert!(factor > 0, "iteration factor must be positive");
    let base = benchmark_base(name)?;
    Some(if name == "gcc" {
        // Scale iteration sizes; count stays 56.
        let mut s = base;
        for e in &mut s.script {
            e.insts *= factor as u64;
        }
        let total: u64 = s.script.iter().map(|e| e.insts).sum();
        s.init_insts = total * 3 / 200;
        s.tail_insts = total / 200;
        s
    } else {
        widen(base, factor)
    })
}

fn benchmark_base(name: &str) -> Option<BenchmarkSpec> {
    use PhaseKind::*;
    let seed = name_seed(name);
    let mut rng = SplitMix64::new(seed);
    let r = &mut rng;
    let spec = match name {
        // ---------------- SPECint ----------------
        "gzip" => {
            // 4 coarse phases (deflate over different data characters).
            let phases = vec![
                phase("scan", L2Resident, 1_400, 0.1, 0.30, r),
                phase("lz", L2Resident, 1_400, 0.1, 0.30, r),
                phase("huff", L2Resident, 1_400, 0.1, 0.30, r),
                phase("emit", BranchNoisy, 1_400, 0.1, 0.30, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1, 2, 3], 48, 500_000))
        }
        "vpr" => {
            let phases = vec![
                phase("place", L2Resident, 1_200, 0.1, 0.30, r),
                phase("anneal", BranchNoisy, 1_200, 0.1, 0.30, r),
                phase("route", L2Resident, 1_200, 0.1, 0.30, r),
                phase("timing", L2Resident, 1_200, 0.1, 0.30, r),
            ];
            // Last phase first occurs at iteration 6 of 40 (~15 %).
            let mut s = script(&[(0, 2, 600_000), (1, 2, 600_000), (2, 2, 600_000)]);
            s.extend(cyclic_script(&[3, 0, 1, 2], 34, 600_000));
            assemble(name, seed, phases, s)
        }
        "gcc" => {
            // 56 wildly-sized iterations; one covers ~60 % of the run and
            // is the earliest instance of its phase, ending near 86 %.
            let phases = vec![
                phase("parse", BranchNoisy, 1_000, 0.1, 0.35, r),
                phase("optimize", L2Resident, 1_600, 0.1, 0.40, r),
            ];
            let mut s = script(&[(0, 14, 930_000)]); // ~26 %
            s.push(ScriptEntry::new(1, 30_000_000)); // ~60 %
            s.extend(cyclic_script(&[0, 1], 41, 170_000)); // ~14 %
            assemble(name, seed, phases, s)
        }
        "mcf" => {
            let phases = vec![
                phase("simplex", PointerChasing, 1_500, 0.1, 0.30, r),
                phase("pricing", MemoryBound, 1_500, 0.1, 0.30, r),
            ];
            let mut s = script(&[(0, 3, 800_000)]);
            s.extend(cyclic_script(&[1, 0], 27, 800_000));
            assemble(name, seed, phases, s)
        }
        "crafty" => {
            let phases = vec![
                phase("search", CacheFriendly, 1_000, 0.1, 0.35, r),
                phase("eval", BranchNoisy, 1_000, 0.1, 0.35, r),
                phase("hash", L2Resident, 1_000, 0.1, 0.35, r),
            ];
            let mut s = script(&[(0, 1, 400_000), (1, 3, 400_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 41, 400_000));
            assemble(name, seed, phases, s)
        }
        "parser" => {
            let phases = vec![
                phase("tokenize", CacheFriendly, 900, 0.1, 0.35, r),
                phase("link", PointerChasing, 900, 0.1, 0.35, r),
                phase("prune", BranchNoisy, 900, 0.1, 0.35, r),
            ];
            let mut s = script(&[(0, 2, 350_000), (1, 6, 350_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 52, 350_000));
            assemble(name, seed, phases, s)
        }
        "eon" => {
            let phases = vec![
                phase("raytrace", CacheFriendly, 1_100, 0.1, 0.25, r),
                phase("shade", FpCompute, 1_100, 0.1, 0.25, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1], 35, 450_000))
        }
        "perlbmk" => {
            let phases = vec![
                phase("interp", BranchNoisy, 1_000, 0.1, 0.35, r),
                phase("regex", L2Resident, 1_000, 0.1, 0.35, r),
                phase("gc", L2Resident, 1_000, 0.1, 0.35, r),
            ];
            let mut s = script(&[(0, 1, 400_000), (1, 9, 400_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 40, 400_000));
            assemble(name, seed, phases, s)
        }
        "gap" => {
            let phases = vec![
                phase("arith", CacheFriendly, 1_100, 0.1, 0.30, r),
                phase("lists", PointerChasing, 1_100, 0.1, 0.30, r),
                phase("groups", MemoryBound, 1_100, 0.1, 0.30, r),
            ];
            let mut s = script(&[(0, 3, 500_000), (1, 3, 500_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 34, 500_000));
            assemble(name, seed, phases, s)
        }
        "vortex" => {
            let phases = vec![
                phase("insert", MemoryBound, 1_200, 0.1, 0.40, r),
                phase("lookup", PointerChasing, 1_200, 0.1, 0.40, r),
                phase("delete", BranchNoisy, 1_200, 0.1, 0.40, r),
            ];
            let mut s = script(&[(0, 2, 450_000), (1, 10, 450_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 43, 450_000));
            assemble(name, seed, phases, s)
        }
        "bzip2" => {
            // Third phase first occurs at iteration 14 of 40 (~36 %).
            let phases = vec![
                phase("sort", L2Resident, 1_300, 0.1, 0.30, r),
                phase("mtf", CacheFriendly, 1_300, 0.1, 0.30, r),
                phase("entropy", BranchNoisy, 1_300, 0.1, 0.30, r),
            ];
            let mut s = script(&[(0, 7, 600_000), (1, 7, 600_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 26, 600_000));
            assemble(name, seed, phases, s)
        }
        "twolf" => {
            let phases = vec![
                phase("anneal", BranchNoisy, 1_000, 0.1, 0.35, r),
                phase("wirelen", L2Resident, 1_000, 0.1, 0.35, r),
            ];
            let mut s = script(&[(0, 4, 440_000)]);
            s.extend(cyclic_script(&[1, 0], 46, 440_000));
            assemble(name, seed, phases, s)
        }
        // ---------------- SPECfp ----------------
        "wupwise" => {
            let phases = vec![
                phase("zgemm", FpCompute, 1_600, 0.1, 0.25, r),
                phase("gammul", FpCompute, 1_600, 0.1, 0.25, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1], 40, 700_000))
        }
        "swim" => {
            let phases = vec![
                phase("calc1", FpStream, 1_800, 0.1, 0.20, r),
                phase("calc2", FpStream, 1_800, 0.1, 0.20, r),
                phase("calc3", MemoryBound, 1_800, 0.1, 0.20, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1, 2], 36, 800_000))
        }
        "mgrid" => {
            let phases = vec![
                phase("resid", FpStream, 1_700, 0.1, 0.22, r),
                phase("psinv", FpStream, 1_700, 0.1, 0.22, r),
                phase("interp", FpStream, 1_700, 0.1, 0.22, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1, 2], 30, 900_000))
        }
        "applu" => {
            let phases = vec![
                phase("jacld", FpStream, 1_600, 0.1, 0.25, r),
                phase("blts", FpStream, 1_600, 0.1, 0.25, r),
                phase("rhs", MemoryBound, 1_600, 0.1, 0.25, r),
            ];
            let mut s = script(&[(0, 1, 750_000), (1, 2, 750_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 33, 750_000));
            assemble(name, seed, phases, s)
        }
        "mesa" => {
            let phases = vec![
                phase("xform", FpCompute, 1_200, 0.1, 0.28, r),
                phase("raster", CacheFriendly, 1_200, 0.1, 0.28, r),
            ];
            let mut s = script(&[(0, 2, 450_000)]);
            s.extend(cyclic_script(&[1, 0], 43, 450_000));
            assemble(name, seed, phases, s)
        }
        "galgel" => {
            let phases = vec![
                phase("assembly", FpCompute, 1_500, 0.1, 0.28, r),
                phase("solve", FpCompute, 1_500, 0.1, 0.28, r),
                phase("spectral", L2Resident, 1_500, 0.1, 0.28, r),
            ];
            let mut s = script(&[(0, 2, 650_000), (1, 3, 650_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 35, 650_000));
            assemble(name, seed, phases, s)
        }
        "art" => {
            // Second phase first occurs at iteration 16 of 34 (~47 %).
            let phases = vec![
                phase("train", MemoryBound, 1_500, 0.1, 0.30, r),
                phase("match", MemoryBound, 1_500, 0.1, 0.30, r),
            ];
            let mut s = script(&[(0, 16, 700_000)]);
            s.extend(cyclic_script(&[1, 0], 18, 700_000));
            assemble(name, seed, phases, s)
        }
        "equake" => {
            // 6 coarse phases.
            let phases = vec![
                phase("mesh", FpStream, 1_400, 0.1, 0.30, r),
                phase("smvp", MemoryBound, 1_400, 0.1, 0.30, r),
                phase("disp", FpStream, 1_400, 0.1, 0.30, r),
                phase("damp", FpStream, 1_400, 0.1, 0.30, r),
                phase("bound", FpStream, 1_400, 0.1, 0.30, r),
                phase("report", MemoryBound, 1_400, 0.1, 0.30, r),
            ];
            let mut s =
                script(&[(0, 1, 550_000), (1, 1, 550_000), (2, 1, 550_000), (3, 1, 550_000)]);
            s.push(ScriptEntry::new(4, 550_000));
            s.extend(script(&[(0, 2, 550_000)]));
            s.push(ScriptEntry::new(5, 550_000));
            s.extend(cyclic_script(&[1, 2, 3, 0, 4, 5], 40, 550_000));
            assemble(name, seed, phases, s)
        }
        "facerec" => {
            let phases = vec![
                phase("gabor", FpCompute, 1_400, 0.1, 0.28, r),
                phase("graph", L2Resident, 1_400, 0.1, 0.28, r),
                phase("search", L2Resident, 1_400, 0.1, 0.28, r),
            ];
            let mut s = script(&[(0, 1, 600_000), (1, 5, 600_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 34, 600_000));
            assemble(name, seed, phases, s)
        }
        "ammp" => {
            let phases = vec![
                phase("nonbond", PointerChasing, 1_500, 0.1, 0.28, r),
                phase("integrate", FpStream, 1_500, 0.1, 0.28, r),
            ];
            let mut s = script(&[(0, 3, 650_000)]);
            s.extend(cyclic_script(&[1, 0], 35, 650_000));
            assemble(name, seed, phases, s)
        }
        "lucas" => {
            // Smooth coarse curve (3 clean phases, early firsts), chaotic
            // fine curve (very high fine-scale noise).
            let phases = vec![
                phase("fft", FpStream, 1_500, 0.1, 0.80, r),
                phase("square", FpStream, 1_500, 0.1, 0.80, r),
                phase("carry", MemoryBound, 1_500, 0.1, 0.80, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1, 2], 44, 600_000))
        }
        "fma3d" => {
            // 5 coarse phases.
            let phases = vec![
                phase("elems", FpStream, 1_400, 0.1, 0.30, r),
                phase("forces", FpStream, 1_400, 0.1, 0.30, r),
                phase("contact", FpStream, 1_400, 0.1, 0.30, r),
                phase("update", FpStream, 1_400, 0.1, 0.30, r),
                phase("output", FpStream, 1_400, 0.1, 0.30, r),
            ];
            let mut s = script(&[(0, 1, 550_000), (1, 2, 550_000)]);
            s.push(ScriptEntry::new(2, 550_000));
            s.extend(script(&[(0, 2, 550_000)]));
            s.push(ScriptEntry::new(3, 550_000));
            s.extend(script(&[(1, 2, 550_000)]));
            s.push(ScriptEntry::new(4, 550_000));
            s.extend(cyclic_script(&[0, 1, 2, 3, 4], 40, 550_000));
            assemble(name, seed, phases, s)
        }
        "sixtrack" => {
            let phases = vec![
                phase("track", FpCompute, 1_700, 0.1, 0.22, r),
                phase("lattice", CacheFriendly, 1_700, 0.1, 0.22, r),
            ];
            assemble(name, seed, phases, cyclic_script(&[0, 1], 42, 700_000))
        }
        "apsi" => {
            let phases = vec![
                phase("advect", FpStream, 1_500, 0.1, 0.25, r),
                phase("diffuse", FpStream, 1_500, 0.1, 0.25, r),
                phase("pressure", MemoryBound, 1_500, 0.1, 0.25, r),
            ];
            let mut s = script(&[(0, 2, 600_000), (1, 2, 600_000)]);
            s.extend(cyclic_script(&[2, 0, 1], 41, 600_000));
            assemble(name, seed, phases, s)
        }
        _ => return None,
    };
    debug_assert!(spec.validate().is_ok(), "suite benchmark {name} invalid");
    Some(spec)
}

/// The full calibrated suite plus convenience accessors.
///
/// # Example
///
/// ```
/// use mlpa_workloads::Suite;
///
/// let suite = Suite::spec2000();
/// assert_eq!(suite.len(), 26);
/// let tiny = suite.scaled(0.01);
/// assert!(tiny.get("gcc").unwrap().nominal_insts()
///     < suite.get("gcc").unwrap().nominal_insts());
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    specs: Vec<BenchmarkSpec>,
}

impl Suite {
    /// The full 26-benchmark SPEC2000-like suite at nominal scale.
    pub fn spec2000() -> Suite {
        Suite {
            specs: SPEC2000_NAMES
                .iter()
                .map(|n| benchmark(n).expect("all SPEC2000 names are defined"))
                .collect(),
        }
    }

    /// A scaled copy of the suite (every benchmark's dynamic length
    /// multiplied by `factor`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Suite {
        Suite { specs: self.specs.iter().map(|s| s.scaled(factor)).collect() }
    }

    /// Restrict the suite to the named benchmarks (preserving this
    /// suite's order). Unknown names are ignored.
    #[must_use]
    pub fn select(&self, names: &[&str]) -> Suite {
        Suite {
            specs: self
                .specs
                .iter()
                .filter(|s| names.contains(&s.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Number of benchmarks.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Look up a benchmark by name.
    pub fn get(&self, name: &str) -> Option<&BenchmarkSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Iterate over the benchmarks.
    pub fn iter(&self) -> std::slice::Iter<'_, BenchmarkSpec> {
        self.specs.iter()
    }
}

impl<'a> IntoIterator for &'a Suite {
    type Item = &'a BenchmarkSpec;
    type IntoIter = std::slice::Iter<'a, BenchmarkSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.specs.iter()
    }
}

impl FromIterator<BenchmarkSpec> for Suite {
    fn from_iter<T: IntoIterator<Item = BenchmarkSpec>>(iter: T) -> Self {
        Suite { specs: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_26_benchmarks_exist_and_validate() {
        for name in SPEC2000_NAMES {
            let spec = benchmark(name).unwrap_or_else(|| panic!("missing {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(benchmark("spec2029").is_none());
    }

    #[test]
    fn gcc_facts() {
        let gcc = benchmark("gcc").unwrap();
        assert_eq!(gcc.outer_iters(), 56, "paper: 56 outermost iterations");
        let total: u64 = gcc.script.iter().map(|e| e.insts).sum();
        let biggest = gcc.script.iter().map(|e| e.insts).max().unwrap();
        let frac = biggest as f64 / total as f64;
        assert!(
            (0.55..0.65).contains(&frac),
            "paper: one iteration covers ~60 % of gcc, got {frac:.2}"
        );
        // That mega-iteration is the earliest instance of its phase.
        let mega_idx = gcc.script.iter().position(|e| e.insts == biggest).unwrap();
        let first_of_phase =
            gcc.script.iter().position(|e| e.phase == gcc.script[mega_idx].phase).unwrap();
        assert_eq!(mega_idx, first_of_phase);
        // The mega iteration *ends* near 86 % of the run.
        let end_pos =
            gcc.iteration_position(mega_idx) + biggest as f64 / gcc.nominal_insts() as f64;
        assert!((0.80..0.90).contains(&end_pos), "gcc mega end at {end_pos:.2}");
    }

    #[test]
    fn coarse_phase_counts_match_paper() {
        assert_eq!(benchmark("gzip").unwrap().distinct_script_phases(), 4);
        assert_eq!(benchmark("equake").unwrap().distinct_script_phases(), 6);
        assert_eq!(benchmark("fma3d").unwrap().distinct_script_phases(), 5);
        assert_eq!(benchmark("vpr").unwrap().distinct_script_phases(), 4);
        // Everyone else is at most 3.
        for name in SPEC2000_NAMES {
            if !["gzip", "equake", "fma3d", "vpr"].contains(&name) {
                let n = benchmark(name).unwrap().distinct_script_phases();
                assert!(n <= 3, "{name} has {n} coarse phases");
            }
        }
    }

    #[test]
    fn last_phase_first_occurrence_positions() {
        let pos_of_last = |name: &str| {
            let s = benchmark(name).unwrap();
            let (_, idx) = *s.first_occurrences().last().unwrap();
            s.iteration_position(idx)
        };
        // art ~47 %, bzip2 ~36 % (positions where the last phase begins).
        let art = pos_of_last("art");
        assert!((0.40..0.52).contains(&art), "art {art:.2}");
        let bzip2 = pos_of_last("bzip2");
        assert!((0.30..0.42).contains(&bzip2), "bzip2 {bzip2:.2}");
        // Suite average ≈ 17 % — use the *end* position of the first
        // instance like the paper does; starting position is close
        // enough for the average check at this granularity.
        let avg: f64 = SPEC2000_NAMES.iter().map(|n| pos_of_last(n)).sum::<f64>() / 26.0;
        assert!((0.08..0.26).contains(&avg), "suite average {avg:.2}");
        // Only gcc, art, bzip2 exceed 30 % (gcc measured by mega end).
        for name in SPEC2000_NAMES {
            if !["gcc", "art", "bzip2"].contains(&name) {
                let p = pos_of_last(name);
                assert!(p < 0.30, "{name} last-phase position {p:.2} >= 0.30");
            }
        }
    }

    #[test]
    fn iteration_sizes_are_coarse_grained() {
        // Geometric mean of per-benchmark mean iteration sizes should be
        // in the neighbourhood of the paper's 444 M (444 k scaled).
        let mut log_sum = 0.0;
        for name in SPEC2000_NAMES {
            let s = benchmark(name).unwrap();
            let mean = s.script.iter().map(|e| e.insts).sum::<u64>() as f64 / s.script.len() as f64;
            log_sum += mean.ln();
        }
        let geo = (log_sum / 26.0).exp();
        assert!((250_000.0..900_000.0).contains(&geo), "geomean iteration size {geo:.0}");
    }

    #[test]
    fn suite_accessors() {
        let suite = Suite::spec2000();
        assert_eq!(suite.len(), 26);
        assert!(!suite.is_empty());
        assert!(suite.get("lucas").is_some());
        assert!(suite.get("nope").is_none());
        let sub = suite.select(&["gcc", "art"]);
        assert_eq!(sub.len(), 2);
        let collected: Suite = suite.iter().take(3).cloned().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!((&suite).into_iter().count(), 26);
    }

    #[test]
    fn scaling_suite_scales_every_member() {
        let suite = Suite::spec2000().scaled(0.1);
        for s in &suite {
            let orig = benchmark(&s.name).unwrap();
            assert!(s.nominal_insts() < orig.nominal_insts() / 5);
        }
    }

    #[test]
    fn specs_are_deterministic() {
        assert_eq!(benchmark("swim"), benchmark("swim"));
    }

    #[test]
    fn int_and_fp_mixes_differ() {
        let gzip = benchmark("gzip").unwrap();
        let swim = benchmark("swim").unwrap();
        let has_fp =
            |s: &BenchmarkSpec| s.phases.iter().flat_map(|p| &p.blocks).any(|b| b.mix.fp_add > 0.0);
        assert!(!has_fp(&gzip), "gzip should be integer-only");
        assert!(has_fp(&swim), "swim should contain FP work");
    }
}
